"""The verify grid: enumerate every schedule of every variant at scope.

Each (variant, seed) cell builds the same small workload the zoo grid
uses — an isotropic noisy quadratic — at *enumerable* scope (2–3
threads, a handful of iterations), then walks every
Mazurkiewicz-trace-distinct schedule with the sleep-set enumerator and
runs the per-schedule checkers on each complete schedule:

* the race/staleness sanitizer over the full operation log, and
* the Lemma 6.1/6.2/6.4 certifiers over the iteration records,
  restricted to the lemmas the variant declares applicable.

A schedule with any error finding or violated applicable certificate is
a **counterexample**; the engine re-executes it through
:class:`repro.sched.replay.PrefixReplayScheduler` and demands identical
findings and final state digest before reporting it (``replay_ok``).
Clean variants must produce zero counterexamples across the whole tree
— a universal certificate at scope; mutant variants
(:mod:`repro.verify.mutants`) must produce at least one, flagged by the
sanitizer — the oracle-agreement check that pins the sanitizer's
recall.

Cells run through :func:`repro.experiments.ensemble.run_ensemble`, so
the grid parallelizes across processes (``--jobs``) and journals for
kill/resume with byte-identical reports either way.
"""

from __future__ import annotations

import functools
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.lemmas import certify_run
from repro.analysis.sanitizer import RaceStalenessSanitizer
from repro.core.algorithm import (
    LEMMAS,
    Algorithm,
    algorithm_names,
    build_zoo_simulation,
    get_algorithm,
)
from repro.core.epoch_sgd import collect_iteration_records
from repro.errors import ConfigurationError, SchedulerError
from repro.experiments.ensemble import run_ensemble
from repro.objectives.noise import GaussianNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.runtime.simulator import Simulator
from repro.sched.base import Scheduler
from repro.sched.replay import PrefixReplayScheduler
from repro.sched.round_robin import RoundRobinScheduler
from repro.verify.enumerator import enumerate_schedules
from repro.verify.mutants import get_mutant, mutant_names
from repro.verify.report import (
    Counterexample,
    VerifyCellOutcome,
    VerifyReport,
    outcome_from_payload,
    outcome_to_payload,
)
from repro.verify.smt import SmtConfig, run_smt_queries

#: The default variant panel: the two fetch&add-family algorithms the
#: acceptance gate names, plus both seeded mutants.
VERIFY_VARIANTS: Tuple[str, ...] = (
    "epoch-sgd",
    "hogwild",
    "mutant-torn-counter",
    "mutant-lost-update",
)


def verify_variant_names() -> Tuple[str, ...]:
    """Everything ``--variants`` accepts: registered algorithms plus
    the seeded mutants."""
    return tuple(sorted(set(algorithm_names()) | set(mutant_names())))


@dataclass(frozen=True)
class VerifyScope:
    """The enumerable workload every verify cell certifies.

    Deliberately tiny: the schedule tree is exponential in
    ``threads × steps``, and exhaustiveness — not statistics — is the
    product here.
    """

    dim: int = 2
    threads: int = 2
    iterations: int = 1
    step_size: float = 0.1
    noise_sigma: float = 0.2
    x0_scale: float = 1.0
    #: Per-schedule step budget.  Generous relative to the nominal
    #: scope because mutants can over-claim iterations (a torn counter
    #: duplicates indices, so more iterations run than T prescribes).
    max_steps: int = 48

    def __post_init__(self) -> None:
        if self.dim < 1:
            raise ConfigurationError(f"dim must be >= 1, got {self.dim}")
        if self.threads < 1:
            raise ConfigurationError(
                f"threads must be >= 1, got {self.threads}"
            )
        if self.iterations < 1:
            raise ConfigurationError(
                f"iterations must be >= 1, got {self.iterations}"
            )
        if self.step_size <= 0:
            raise ConfigurationError(
                f"step_size must be > 0, got {self.step_size}"
            )
        if self.max_steps < 1:
            raise ConfigurationError(
                f"max_steps must be >= 1, got {self.max_steps}"
            )


@dataclass(frozen=True)
class VerifyConfig:
    """One verify run: variants x seeds, plus the SMT query grid."""

    variants: Tuple[str, ...] = VERIFY_VARIANTS
    seeds: Tuple[int, ...] = (1,)
    scope: VerifyScope = field(default_factory=VerifyScope)
    #: Also walk the unreduced tree to measure the POR reduction factor
    #: (doubles the work; the full tree is the expensive half).
    measure_full_tree: bool = True
    #: State-digest memoization in the reduced walk (see the soundness
    #: caveat in :mod:`repro.verify.enumerator`; off for certification).
    memoize: bool = False
    #: Counterexamples kept (and replay-verified) per cell.
    max_counterexamples: int = 3
    smt: SmtConfig = field(default_factory=SmtConfig)
    jobs: int = 1

    def __post_init__(self) -> None:
        if not self.variants:
            raise ConfigurationError("verify needs at least one variant")
        if not self.seeds:
            raise ConfigurationError("verify needs at least one seed")
        unknown = set(self.variants) - set(verify_variant_names())
        if unknown:
            raise ConfigurationError(
                f"unknown variant(s): {', '.join(sorted(unknown))} "
                f"(choose from {', '.join(verify_variant_names())})"
            )
        if self.max_counterexamples < 1:
            raise ConfigurationError(
                f"max_counterexamples must be >= 1, "
                f"got {self.max_counterexamples}"
            )


def verify_fingerprint(config: VerifyConfig) -> str:
    """Stable fingerprint of everything that determines verify results
    (``jobs`` excluded: parallelism never changes results)."""
    from repro.durable.journal import config_fingerprint

    payload = asdict(config)
    payload.pop("jobs", None)
    return config_fingerprint(payload)


def _resolve_variant(name: str) -> Tuple[Algorithm, str, Optional[int]]:
    """``(algorithm, expectation, iterations_override)`` for a variant."""
    if name in mutant_names():
        spec = get_mutant(name)
        return spec.algorithm, "mutant", spec.min_iterations
    return get_algorithm(name), "clean", None


def _check_schedule(
    sim: Simulator, num_threads: int, applicable: Dict[str, bool]
) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """Per-schedule checkers: ``(violation lines, violated lemmas)``.

    Runs the vector-clock sanitizer over the full operation log and the
    lemma certifiers over the iteration records; a line per error
    finding and per violated applicable certificate.
    """
    sanitizer = RaceStalenessSanitizer()
    sanitizer.on_attach(sim)
    sanitizer.drain(sim)
    sanitizer.finish(sim)
    lines = [str(f) for f in sanitizer.findings if f.severity == "error"]
    violated: List[str] = []
    records = collect_iteration_records(sim)
    for certificate in certify_run(records, num_threads=num_threads):
        if not applicable.get(certificate.lemma, False):
            continue
        if not certificate.holds:
            lines.append(str(certificate))
            violated.append(certificate.lemma)
    return tuple(lines), tuple(violated)


def _verify_worker(
    config: VerifyConfig, variant: str, seed: int
) -> VerifyCellOutcome:
    """Run one (variant, seed) enumeration cell (module-level: picklable
    for the pool)."""
    scope = config.scope
    algorithm, expectation, override = _resolve_variant(variant)
    iterations = max(scope.iterations, override or 0)
    applicable = algorithm.lemma_applicability()
    objective = IsotropicQuadratic(
        dim=scope.dim, noise=GaussianNoise(scope.noise_sigma)
    )

    def factory(scheduler: Scheduler) -> Simulator:
        sim, _model, _x0 = build_zoo_simulation(
            algorithm,
            objective,
            scheduler,
            num_threads=scope.threads,
            step_size=scope.step_size,
            iterations=iterations,
            x0=np.full(scope.dim, scope.x0_scale),
            seed=seed,
            record_log=True,
            record_iterations=True,
        )
        return sim

    counterexample_count = 0
    kept: List[Tuple[Tuple[int, ...], Tuple[str, ...], str]] = []
    violated_counts: Dict[str, int] = {lemma: 0 for lemma in LEMMAS}

    def on_schedule(sim: Simulator, schedule: Tuple[int, ...]) -> None:
        nonlocal counterexample_count
        lines, violated = _check_schedule(sim, scope.threads, applicable)
        for lemma in violated:
            violated_counts[lemma] += 1
        if not lines:
            return
        counterexample_count += 1
        if len(kept) < config.max_counterexamples:
            kept.append((schedule, lines, sim.state_digest()))

    result = enumerate_schedules(
        factory,
        max_steps=scope.max_steps,
        por=True,
        memoize=config.memoize,
        on_schedule=on_schedule,
    )
    interleavings = 0
    if config.measure_full_tree:
        full = enumerate_schedules(
            factory, max_steps=scope.max_steps, por=False
        )
        interleavings = full.stats.schedules

    counterexamples = tuple(
        Counterexample(
            schedule=schedule,
            findings=lines,
            replay_ok=_replays_identically(
                factory, scope.threads, applicable, schedule, lines, digest
            ),
        )
        for schedule, lines, digest in kept
    )
    sanitizer_agreement = expectation == "clean" or any(
        any("race-staleness" in line for line in cx.findings)
        for cx in counterexamples
    )
    certificates = tuple(
        (
            lemma,
            (
                f"violated:{violated_counts[lemma]}"
                if violated_counts[lemma]
                else "holds"
            )
            if applicable.get(lemma, False)
            else "n/a",
        )
        for lemma in LEMMAS
    )
    stats = result.stats
    return VerifyCellOutcome(
        variant=variant,
        seed=seed,
        expectation=expectation,
        threads=scope.threads,
        iterations=iterations,
        max_steps=scope.max_steps,
        schedules=stats.schedules,
        interleavings=interleavings,
        nodes=stats.nodes,
        sleep_skips=stats.sleep_skips,
        memo_skips=stats.memo_skips,
        budget_hits=stats.budget_hits,
        reduction_factor=(
            round(interleavings / stats.schedules, 4)
            if interleavings and stats.schedules
            else 0.0
        ),
        counterexample_count=counterexample_count,
        counterexamples=counterexamples,
        sanitizer_agreement=sanitizer_agreement,
        certificates=certificates,
    )


def _replays_identically(
    factory: Callable[[Scheduler], Simulator],
    num_threads: int,
    applicable: Dict[str, bool],
    schedule: Tuple[int, ...],
    expected_lines: Tuple[str, ...],
    expected_digest: str,
) -> bool:
    """Re-execute a counterexample schedule through
    :class:`PrefixReplayScheduler` and demand the identical findings and
    final state digest — the loud-replay guarantee the report relies on."""
    sim = factory(
        PrefixReplayScheduler(
            RoundRobinScheduler(), prefix=schedule, verify=False
        )
    )
    try:
        for _ in schedule:
            sim.step()
    except SchedulerError:
        return False
    if not sim.is_done:
        return False
    if sim.state_digest() != expected_digest:
        return False
    lines, _violated = _check_schedule(sim, num_threads, applicable)
    return lines == expected_lines


def _variant_namespace(variant: str) -> str:
    return f"variant/{variant}"


def report_from_outcomes(
    config: VerifyConfig, outcomes: List[VerifyCellOutcome]
) -> VerifyReport:
    """Attach the (deterministic, parent-process) SMT query results."""
    return VerifyReport(
        outcomes=outcomes, smt_results=run_smt_queries(config.smt)
    )


def partial_verify_report(config: VerifyConfig, journal: Any) -> VerifyReport:
    """Report over only the cells the journal has — the artifact the CLI
    flushes when a verify run is interrupted.  Grid-ordered."""
    outcomes: List[VerifyCellOutcome] = []
    for variant in config.variants:
        done = journal.completed(_variant_namespace(variant))
        for seed in config.seeds:
            if seed in done:
                outcomes.append(outcome_from_payload(done[seed]))
    return report_from_outcomes(config, outcomes)


def run_verify(
    config: VerifyConfig,
    journal: Optional[Any] = None,
    shutdown: Optional[Any] = None,
    metrics: Optional[Any] = None,
    progress: Optional[Any] = None,
) -> VerifyReport:
    """Execute the variant x seed enumeration grid plus the SMT queries.

    Each variant's seed ensemble goes through :func:`run_ensemble`, so
    ``config.jobs`` parallelizes cells across processes with results
    byte-identical to a serial run, journaling for kill/resume.  The
    SMT queries run in the parent (they are cheap and deterministic).
    """
    from repro.obs.registry import live_registry
    from repro.obs.spans import trace_span

    registry = live_registry(metrics)

    def note_cell(seed: int, outcome: VerifyCellOutcome) -> None:
        if registry is not None:
            registry.counter(
                "repro_verify_cells_total", "verify cells finished"
            ).inc()
        if progress is not None:
            progress(seed, outcome)

    outcomes: List[VerifyCellOutcome] = []
    for variant in config.variants:
        with trace_span(
            "verify.cell", variant=variant, seeds=len(config.seeds)
        ):
            outcomes.extend(
                run_ensemble(
                    functools.partial(_verify_worker, config, variant),
                    config.seeds,
                    jobs=config.jobs,
                    journal=journal,
                    namespace=_variant_namespace(variant),
                    encode=outcome_to_payload,
                    decode=outcome_from_payload,
                    shutdown=shutdown,
                    metrics=metrics,
                    progress=note_cell,
                )
            )
    return report_from_outcomes(config, outcomes)
