"""SMT lemma queries — unsat means proved, for all delay sequences.

Mirrors ccac's proof harness: each paper claim becomes a quantifier-free
query whose *negation* is handed to a solver; ``unsat`` means no
counterexample exists at the queried scope, i.e. the claim holds for
**all** delay sequences / adversary behaviors there — a strictly
stronger statement than any per-trace certificate.

Two claims are encoded:

* **Lemma 6.4** — over integer delay variables τ_1..τ_H with the
  execution-feasibility envelope ``1 ≤ τ_t ≤ min(t, τ_max)`` (an
  iteration cannot be overtaken by more iterations than have started,
  nor by more than the contention bound), assert some window sum
  ``S_t = Σ_m 1{τ_{t+m} ≥ m}`` exceeds ``2·√(τ_max·n)`` — squared to
  stay in integers: ``S_t² > 4·τ_max·n``.  The envelope is a superset
  of the delay sequences real executions produce, so ``unsat`` proves
  the lemma for every execution at scope.  (The envelope alone bounds
  ``S_t ≤ τ_max``, hence the query is provable exactly when
  ``τ_max ≤ 4n`` — which covers the paper's regime, where τ is the
  contention among n concurrent threads.)
* **Theorem 5.1** — the fixed-α adversary: a run contracts
  ``x_{k+1} = (1−α)·x_k`` for τ sequential steps while one stale
  gradient (computed at x_0 on the 1-d quadratic) is delayed, then the
  stale update lands: ``x_{τ+1} = x_τ − α·x_0``.  With τ chosen so
  ``2·(1−α)^τ ≤ α``, assert ``|x_{τ+1}| < (α/2)·|x_0|`` — ``unsat``
  proves the adversary keeps the iterate at distance ``Ω(α)``, the
  paper's lower-bound step.  Linear real arithmetic over exact
  rationals.

z3 is an optional extra (``pip install repro[verify]``); when absent
each query falls back to an exact finite-domain engine — for Lemma 6.4
the indicator sum is monotone in every τ_t, so the extremal sequence
``τ_t = min(t, τ_max)`` witnesses the maximum of every S_t and one
evaluation decides the query; for Theorem 5.1 the recurrence is solved
in :class:`fractions.Fraction` arithmetic.  The engine used is recorded
in the result so reports stay honest about what did the proving.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.theory.lower_bound import required_delay

_ENGINES = ("auto", "z3", "finite")


def solver_available() -> bool:
    """Whether the optional z3 dependency is importable."""
    try:
        import z3  # noqa: F401
    except ImportError:
        return False
    return True


@dataclass(frozen=True)
class SmtResult:
    """Outcome of one lemma query."""

    #: Claim identifier ("lemma-6.4" or "theorem-5.1").
    claim: str
    #: Human-readable parameter point, e.g. ``n=2 tau_max=3 horizon=8``.
    params: str
    #: Engine that decided the query: "z3" or "finite".
    engine: str
    #: "proved" (negation unsatisfiable), "refuted" (counterexample
    #: exists at scope) or "skipped" (engine unavailable).
    status: str
    #: Witness / bound details.
    detail: str

    @property
    def proved(self) -> bool:
        return self.status == "proved"

    def __str__(self) -> str:
        return (
            f"{self.claim} [{self.params}] {self.status} "
            f"({self.engine}): {self.detail}"
        )


@dataclass(frozen=True)
class SmtConfig:
    """Scope of the default query grid."""

    engine: str = "auto"
    max_n: int = 3
    max_tau: int = 4
    horizon: int = 8
    alphas: Tuple[str, ...] = ("1/10", "1/5")

    def __post_init__(self) -> None:
        if self.engine not in _ENGINES:
            raise ConfigurationError(
                f"engine must be one of {_ENGINES}, got {self.engine!r}"
            )
        if self.max_n < 1:
            raise ConfigurationError(f"max_n must be >= 1, got {self.max_n}")
        if self.max_tau < 1:
            raise ConfigurationError(
                f"max_tau must be >= 1, got {self.max_tau}"
            )
        if self.horizon < 1:
            raise ConfigurationError(
                f"horizon must be >= 1, got {self.horizon}"
            )
        for alpha in self.alphas:
            value = Fraction(alpha)
            if not 0 < value < 1:
                raise ConfigurationError(
                    f"alphas must lie in (0, 1), got {alpha!r}"
                )


def _resolve_engine(engine: str) -> str:
    if engine == "auto":
        return "z3" if solver_available() else "finite"
    return engine


def _window_sums(delays: List[int], tau_max: int) -> List[int]:
    """``S_t = Σ_{m=1..} 1{τ_{t+m} ≥ m}`` for each t (1-indexed),
    matching :func:`repro.theory.contention.lemma_6_4_sums`."""
    horizon = len(delays)
    sums: List[int] = []
    for t in range(horizon):
        total = 0
        for m in range(1, min(tau_max, horizon - 1 - t) + 1):
            if delays[t + m] >= m:
                total += 1
        sums.append(total)
    return sums


def check_lemma_6_4(
    n: int, tau_max: int, horizon: int, engine: str = "auto"
) -> SmtResult:
    """Decide Lemma 6.4's window bound for *all* delay sequences at
    scope ``(n, τ_max, horizon)``."""
    if n < 1 or tau_max < 1 or horizon < 1:
        raise ConfigurationError(
            f"n, tau_max, horizon must be >= 1, got ({n}, {tau_max}, {horizon})"
        )
    params = f"n={n} tau_max={tau_max} horizon={horizon}"
    chosen = _resolve_engine(engine)
    bound = 2.0 * math.sqrt(float(tau_max) * float(n))
    bound_sq = 4 * tau_max * n
    if chosen == "z3":
        try:
            import z3
        except ImportError:
            return SmtResult(
                claim="lemma-6.4",
                params=params,
                engine="z3",
                status="skipped",
                detail="z3 not installed (pip install 'repro[verify]')",
            )
        taus = [z3.Int(f"tau_{t}") for t in range(1, horizon + 1)]
        solver = z3.Solver()
        for t, tau in enumerate(taus, start=1):
            solver.add(tau >= 1, tau <= min(t, tau_max))
        violations = []
        for t in range(horizon):
            terms = [
                z3.If(taus[t + m] >= m, 1, 0)
                for m in range(1, min(tau_max, horizon - 1 - t) + 1)
            ]
            if not terms:
                continue
            window = z3.Sum(terms)
            violations.append(window * window > bound_sq)
        solver.add(z3.Or(violations) if violations else z3.BoolVal(False))
        verdict = solver.check()
        if verdict == z3.unsat:
            return SmtResult(
                claim="lemma-6.4",
                params=params,
                engine="z3",
                status="proved",
                detail=(
                    f"no delay sequence at scope pushes any window sum "
                    f"past 2*sqrt(tau_max*n) = {bound:.4f}"
                ),
            )
        model = solver.model()
        witness = [model.eval(tau).as_long() for tau in taus]
        return SmtResult(
            claim="lemma-6.4",
            params=params,
            engine="z3",
            status="refuted",
            detail=f"counterexample delays: {witness}",
        )
    # Finite engine: every indicator 1{tau_{t+m} >= m} is monotone
    # nondecreasing in tau_{t+m}, so the componentwise-maximal feasible
    # sequence tau_t = min(t, tau_max) maximizes every window sum
    # simultaneously — one evaluation decides the universally
    # quantified claim exactly.
    extremal = [min(t, tau_max) for t in range(1, horizon + 1)]
    worst = max(_window_sums(extremal, tau_max), default=0)
    if float(worst) <= bound + 1e-9:
        return SmtResult(
            claim="lemma-6.4",
            params=params,
            engine="finite",
            status="proved",
            detail=(
                f"extremal sequence max window sum {worst} <= "
                f"2*sqrt(tau_max*n) = {bound:.4f} (monotone envelope)"
            ),
        )
    return SmtResult(
        claim="lemma-6.4",
        params=params,
        engine="finite",
        status="refuted",
        detail=(
            f"extremal sequence {extremal} reaches window sum {worst} > "
            f"{bound:.4f}"
        ),
    )


def check_theorem_5_1(alpha: str, engine: str = "auto") -> SmtResult:
    """Decide the Theorem 5.1 adversary's progress floor for step size
    ``alpha`` (a rational literal like ``"1/10"``)."""
    rate = Fraction(alpha)
    if not 0 < rate < 1:
        raise ConfigurationError(f"alpha must lie in (0, 1), got {alpha!r}")
    delay = required_delay(float(rate))
    params = f"alpha={alpha} tau={delay}"
    chosen = _resolve_engine(engine)
    if chosen == "z3":
        try:
            import z3
        except ImportError:
            return SmtResult(
                claim="theorem-5.1",
                params=params,
                engine="z3",
                status="skipped",
                detail="z3 not installed (pip install 'repro[verify]')",
            )
        a = z3.RealVal(f"{rate.numerator}/{rate.denominator}")
        xs = [z3.Real(f"x_{k}") for k in range(delay + 2)]
        solver = z3.Solver()
        solver.add(xs[0] > 0)
        for k in range(delay):
            solver.add(xs[k + 1] == (1 - a) * xs[k])
        solver.add(xs[delay + 1] == xs[delay] - a * xs[0])
        # Negation of the claim: the landed stale update leaves the
        # iterate strictly inside the (alpha/2)*x_0 floor.
        solver.add(xs[delay + 1] < (a / 2) * xs[0])
        solver.add(xs[delay + 1] > -(a / 2) * xs[0])
        verdict = solver.check()
        if verdict == z3.unsat:
            return SmtResult(
                claim="theorem-5.1",
                params=params,
                engine="z3",
                status="proved",
                detail=(
                    f"after {delay} contraction steps the landed stale "
                    f"update keeps |x| >= (alpha/2)*x0 for every x0 > 0"
                ),
            )
        return SmtResult(
            claim="theorem-5.1",
            params=params,
            engine="z3",
            status="refuted",
            detail="adversary fails the progress floor at this alpha",
        )
    # Exact rational algebra: x_{tau+1} = ((1-a)^tau - a) * x0, and
    # required_delay guarantees (1-a)^tau <= a/2, so the magnitude is
    # (a - (1-a)^tau) * x0 >= (a/2) * x0, linearly in x0 > 0.
    contraction = (1 - rate) ** delay
    magnitude = abs(contraction - rate)
    floor = rate / 2
    if magnitude >= floor:
        return SmtResult(
            claim="theorem-5.1",
            params=params,
            engine="finite",
            status="proved",
            detail=(
                f"|(1-alpha)^tau - alpha| = {float(magnitude):.6f} >= "
                f"alpha/2 = {float(floor):.6f} (exact rationals)"
            ),
        )
    return SmtResult(
        claim="theorem-5.1",
        params=params,
        engine="finite",
        status="refuted",
        detail=(
            f"|(1-alpha)^tau - alpha| = {float(magnitude):.6f} < "
            f"alpha/2 = {float(floor):.6f}"
        ),
    )


def run_smt_queries(config: Optional[SmtConfig] = None) -> List[SmtResult]:
    """The default query grid: Lemma 6.4 over ``n × τ_max`` and Theorem
    5.1 per configured α, in deterministic order."""
    cfg = config if config is not None else SmtConfig()
    results: List[SmtResult] = []
    for n in range(1, cfg.max_n + 1):
        for tau in range(1, cfg.max_tau + 1):
            results.append(
                check_lemma_6_4(n, tau, cfg.horizon, engine=cfg.engine)
            )
    for alpha in cfg.alphas:
        results.append(check_theorem_5_1(alpha, engine=cfg.engine))
    return results
