"""The Section-5 lower-bound strategy: delayed stale gradients.

The attack that proves Theorem 5.1, generalized to a repeating pattern:

1. Let the *victim* thread read the model and compute a gradient (its
   view is the current model, call it x₀), then freeze it just before it
   applies any update.
2. Let the *runner* thread execute ``delay`` full SGD iterations — the
   model contracts toward the optimum, x_τ = (1−α)^τ·x₀ + noise.
3. Release the victim: it merges its *stale* gradient (computed at x₀)
   into the model, undoing up to an α-fraction of ‖x₀‖ worth of progress.
4. Repeat.

With a fixed learning rate α and delay τ ≥ log(α/2)/log(1−α) this
forces an Ω(τ) slowdown relative to the sequential rate (Theorem 5.1);
the bench ``bench_e2_lower_bound`` sweeps τ and verifies the linear
shape.  The attack reads the programs' published ``phase`` and
``iterations_done`` annotations (see :mod:`repro.sched.adaptive`).
"""

from __future__ import annotations

from typing import Optional

from repro.sched.adaptive import AdaptiveAdversary


class StaleGradientAttack(AdaptiveAdversary):
    """Adaptive two-thread delay adversary (generalizes to many runners).

    Args:
        victim: Thread id whose updates are delayed (holds stale
            gradients).  Default 1.
        runner: Thread id allowed to make progress meanwhile.  Default 0.
            Other threads, if any, are treated as additional runners.
        delay: Number of full runner iterations executed while the victim
            is frozen — the τ of Theorem 5.1.
        rounds: How many freeze/release cycles to play; ``None`` repeats
            until the threads finish.
        freeze_phase: The published phase at which the victim is frozen.
            ``"update"`` (default) freezes after all local observations —
            the fully adaptive attack, which also defeats staleness-aware
            damping (the victim has already read the counter, so its
            staleness estimate is stale too).  Freezing at ``"observe"``
            models a weaker adversary that the staleness-aware mitigation
            *can* detect (the counter read happens after the delay).
    """

    _WAIT_VICTIM_READY = "wait_victim_ready"
    _RUN_RUNNER = "run_runner"
    _RELEASE_VICTIM = "release_victim"

    def __init__(
        self,
        victim: int = 1,
        runner: int = 0,
        delay: int = 8,
        rounds: Optional[int] = None,
        freeze_phase: str = "update",
    ) -> None:
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self.victim = victim
        self.runner = runner
        self.delay = delay
        self.rounds_remaining = rounds
        self.freeze_phase = freeze_phase
        self._state = self._WAIT_VICTIM_READY
        self._runner_target: Optional[int] = None

    def _victim_runnable(self, sim) -> bool:
        return self.victim in sim.runnable_ids

    def _pick_runner(self, sim) -> int:
        ids = self._runnable(sim)
        # Prefer runners that can actually make progress; a blocked
        # runner (spinlock waiter) burns steps without ever finishing an
        # iteration, which would stall the attack's delay count.
        candidates = [
            i for i in ids if i != self.victim and not self.blocked(sim, i)
        ]
        if self.runner in candidates:
            return self.runner
        if candidates:
            return candidates[0]
        others = [i for i in ids if i != self.victim]
        return others[0] if others else ids[0]

    def select(self, sim) -> int:
        ids = self._runnable(sim)
        # Degenerate cases: the attack needs both parties to exist and
        # the victim to be runnable — otherwise schedule whoever remains.
        total = len(sim.threads)
        if self.victim >= total or self.runner >= total:
            return ids[0]
        if not self._victim_runnable(sim):
            return self._pick_runner(sim)
        only_victim = ids == [self.victim]

        if self.rounds_remaining is not None and self.rounds_remaining <= 0:
            # Attack budget exhausted: behave like round-robin.
            return ids[sim.now % len(ids)]

        if self._state == self._WAIT_VICTIM_READY:
            if self.phase(sim, self.victim) == self.freeze_phase:
                # Victim now holds a stale gradient; freeze it.
                self._state = self._RUN_RUNNER
                self._runner_target = (
                    self.iterations_done(sim, self.runner) + self.delay
                )
            else:
                return self.victim

        if self._state == self._RUN_RUNNER:
            assert self._runner_target is not None
            # If every candidate runner published ``blocked`` (e.g. they
            # spin on a lock the frozen victim holds), no amount of runner
            # scheduling completes an iteration — release the victim
            # instead of livelocking.  The attack degenerates against
            # lock-consistent algorithms, which is itself a result.
            runners = [i for i in ids if i != self.victim]
            runners_blocked = bool(runners) and all(
                self.blocked(sim, i) for i in runners
            )
            if (
                not only_victim
                and not runners_blocked
                and self.iterations_done(sim, self.runner) < self._runner_target
            ):
                return self._pick_runner(sim)
            self._state = self._RELEASE_VICTIM

        # _RELEASE_VICTIM: let the victim flush its stale update fully
        # (drive it through to the end of the current iteration).
        if self.phase(sim, self.victim) not in ("start", "done"):
            return self.victim
        # Victim left the iteration: the stale merge is complete.
        self._state = self._WAIT_VICTIM_READY
        if self.rounds_remaining is not None:
            self.rounds_remaining -= 1
        return self.select(sim)
