"""Schedule recording and replay.

Any execution in this model is fully determined by (programs, seeds,
schedule); the first two are already deterministic, so capturing the
schedule — the sequence of thread ids the scheduler picked — makes any
run exactly reproducible, shareable as a plain list of ints, and
*minimizable* (shrink a failing schedule by hand or with a fuzzer and
replay it).  :class:`RecordingScheduler` wraps any scheduler and captures
its decisions; :class:`ReplayScheduler` plays a captured schedule back.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import SchedulerError
from repro.sched.base import Scheduler


class RecordingScheduler(Scheduler):
    """Wrap ``inner`` and record every decision in :attr:`schedule`."""

    def __init__(self, inner: Scheduler) -> None:
        self.inner = inner
        self.schedule: List[int] = []

    def on_spawn(self, sim, thread) -> None:
        self.inner.on_spawn(sim, thread)

    def on_step(self, sim, record) -> None:
        self.inner.on_step(sim, record)

    def select(self, sim) -> int:
        choice = self.inner.select(sim)
        self.schedule.append(int(choice))
        return choice


class ReplayScheduler(Scheduler):
    """Play back a recorded schedule, decision for decision.

    Args:
        schedule: The thread-id sequence to replay.
        strict: When True (default), running out of schedule or hitting a
            non-runnable choice raises :class:`SchedulerError` — replay
            divergence means the run being replayed differs from the run
            that was recorded, which should never pass silently.  With
            ``strict=False`` the scheduler falls back to the first
            runnable thread instead (useful while shrinking schedules).
    """

    def __init__(self, schedule: Sequence[int], strict: bool = True) -> None:
        self._schedule = [int(s) for s in schedule]
        self._cursor = 0
        self.strict = strict

    @property
    def remaining(self) -> int:
        """Decisions left in the schedule."""
        return len(self._schedule) - self._cursor

    def select(self, sim) -> int:
        runnable = self._runnable(sim)
        if self._cursor >= len(self._schedule):
            if self.strict:
                raise SchedulerError(
                    "replay schedule exhausted but the simulation wants "
                    f"another step (played {self._cursor} decisions)"
                )
            return runnable[0]
        choice = self._schedule[self._cursor]
        self._cursor += 1
        if choice not in runnable:
            if self.strict:
                raise SchedulerError(
                    f"replay divergence at decision {self._cursor - 1}: "
                    f"recorded thread {choice} is not runnable "
                    f"(runnable: {runnable})"
                )
            return runnable[0]
        return choice
