"""Schedule recording and replay.

Any execution in this model is fully determined by (programs, seeds,
schedule); the first two are already deterministic, so capturing the
schedule — the sequence of thread ids the scheduler picked — makes any
run exactly reproducible, shareable as a plain list of ints, and
*minimizable* (shrink a failing schedule by hand or with a fuzzer and
replay it).  :class:`RecordingScheduler` wraps any scheduler and captures
its decisions; :class:`ReplayScheduler` plays a captured schedule back.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import ReplayDivergenceError
from repro.runtime.policy import live_hook
from repro.sched.base import Scheduler


class RecordingScheduler(Scheduler):
    """Wrap ``inner`` and record every decision in :attr:`schedule`."""

    def __init__(self, inner: Scheduler) -> None:
        self.inner = inner
        self.schedule: List[int] = []

    def on_spawn(self, sim, thread) -> None:
        self.inner.on_spawn(sim, thread)

    def on_step(self, sim, record) -> None:
        self.inner.on_step(sim, record)

    def select(self, sim) -> int:
        choice = self.inner.select(sim)
        self.schedule.append(int(choice))
        return choice


class PrefixReplayScheduler(Scheduler):
    """Play a recorded decision prefix, then hand control to ``inner``.

    The restore-by-replay path of :class:`repro.durable.checkpoint.
    Checkpoint` drives a fresh simulation through the first ``len(prefix)``
    decisions of a recorded run and then lets the run's real scheduler
    continue.  In ``verify`` mode (the default) ``inner`` is consulted on
    every prefix step and must agree with the recording: that both
    *certifies* determinism (a disagreement means the replayed run is not
    the recorded run, raised as :class:`ReplayDivergenceError`) and advances the
    inner scheduler's internal state — RNG draws, adaptive histories,
    fault-injection budgets — to exactly what it was at the cut, so the
    post-prefix continuation is byte-identical to the uninterrupted run.
    With ``verify=False`` the prefix is forced without consulting
    ``inner`` (only sound for stateless schedulers).

    Decisions made so far (prefix and beyond) accumulate in
    :attr:`decisions`, so a restored run can itself be checkpointed again.
    """

    def __init__(
        self, inner: Scheduler, prefix: Sequence[int], verify: bool = True
    ) -> None:
        self.inner = inner
        self._prefix = [int(s) for s in prefix]
        self._cursor = 0
        self.verify = verify
        self.decisions: List[int] = []
        # Delegate hooks only when the inner scheduler actually has live
        # ones, so wrapping a benign scheduler keeps the engine's elided
        # fast path (defining the methods unconditionally would make the
        # hooks look live and force per-step StepRecord construction).
        spawn_hook = live_hook(inner, "on_spawn")
        if spawn_hook is not None:
            self.on_spawn = spawn_hook  # type: ignore[method-assign]
        step_hook = live_hook(inner, "on_step")
        if step_hook is not None:
            self.on_step = step_hook  # type: ignore[method-assign]

    @property
    def in_prefix(self) -> bool:
        """Whether the next decision still comes from the recording."""
        return self._cursor < len(self._prefix)

    @property
    def remaining(self) -> int:
        """Prefix decisions left to replay."""
        return len(self._prefix) - self._cursor

    def select(self, sim) -> int:
        if self._cursor < len(self._prefix):
            recorded = self._prefix[self._cursor]
            self._cursor += 1
            if self.verify:
                choice = int(self.inner.select(sim))
                if choice != recorded:
                    raise ReplayDivergenceError(
                        f"replay divergence at decision {self._cursor - 1}: "
                        f"inner scheduler picked thread {choice}, recording "
                        f"says {recorded} — the replayed run is not the "
                        "recorded run",
                        step_index=self._cursor - 1,
                        expected=recorded,
                        actual=choice,
                    )
            self.decisions.append(recorded)
            return recorded
        choice = int(self.inner.select(sim))
        self.decisions.append(choice)
        return choice


class ReplayScheduler(Scheduler):
    """Play back a recorded schedule, decision for decision.

    Args:
        schedule: The thread-id sequence to replay.
        strict: When True (default), running out of schedule or hitting a
            non-runnable choice raises :class:`ReplayDivergenceError` — replay
            divergence means the run being replayed differs from the run
            that was recorded, which should never pass silently.  With
            ``strict=False`` the scheduler falls back to the first
            runnable thread instead (useful while shrinking schedules).
    """

    def __init__(self, schedule: Sequence[int], strict: bool = True) -> None:
        self._schedule = [int(s) for s in schedule]
        self._cursor = 0
        self.strict = strict

    @property
    def remaining(self) -> int:
        """Decisions left in the schedule."""
        return len(self._schedule) - self._cursor

    def select(self, sim) -> int:
        runnable = self._runnable(sim)
        if self._cursor >= len(self._schedule):
            if self.strict:
                raise ReplayDivergenceError(
                    "replay schedule exhausted but the simulation wants "
                    f"another step (played {self._cursor} decisions)",
                    step_index=self._cursor,
                    expected=-1,
                    actual=runnable[0],
                )
            return runnable[0]
        choice = self._schedule[self._cursor]
        self._cursor += 1
        if choice not in runnable:
            if self.strict:
                raise ReplayDivergenceError(
                    f"replay divergence at decision {self._cursor - 1}: "
                    f"recorded thread {choice} is not runnable "
                    f"(runnable: {runnable})",
                    step_index=self._cursor - 1,
                    expected=choice,
                    actual=-1,
                )
            return runnable[0]
        return choice
