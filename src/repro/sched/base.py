"""Scheduler protocol.

A scheduler is anything with ``select(sim) -> thread_id``.  The simulator
hands it the *entire* simulation state — this is deliberate: the paper's
adversary is strong and adaptive, so hiding information from schedulers
would only weaken the model.  Benign schedulers simply choose not to look.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, List

from repro.errors import NoRunnableThreadError
from repro.runtime.policy import ENGINE_NOOP_ATTR

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.events import StepRecord
    from repro.runtime.simulator import Simulator
    from repro.runtime.thread import SimThread


class Scheduler(abc.ABC):
    """Base class for all schedulers.

    Subclasses implement :meth:`select`; the optional hooks
    :meth:`on_spawn` and :meth:`on_step` let stateful schedulers track the
    execution without re-deriving it from the trace.
    """

    @abc.abstractmethod
    def select(self, sim: "Simulator") -> int:
        """Return the id of the runnable thread to step next."""

    def on_spawn(self, sim: "Simulator", thread: "SimThread") -> None:
        """Called after a thread is spawned.  Default: no-op."""

    def on_step(self, sim: "Simulator", record: "StepRecord") -> None:
        """Called after each executed step.  Default: no-op."""

    # Mark the default hooks so the engine can skip schedulers that never
    # overrode them (and elide StepRecord construction entirely — see
    # repro.runtime.policy.live_hook).  Wrapper schedulers that *forward*
    # hooks (replay, crash) override these methods, so they stay live.
    setattr(on_spawn, ENGINE_NOOP_ATTR, True)
    setattr(on_step, ENGINE_NOOP_ATTR, True)

    @staticmethod
    def _runnable(sim: "Simulator") -> List[int]:
        """Runnable thread ids, raising if there are none (a scheduler is
        never consulted on a finished simulation, so this is defensive)."""
        ids = sim.runnable_ids
        if not ids:
            raise NoRunnableThreadError("scheduler consulted with no runnable thread")
        return ids
