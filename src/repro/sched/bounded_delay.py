"""Random scheduling with a hard per-thread staleness bound.

Behaves like :class:`~repro.sched.random_sched.RandomScheduler`, except
that no runnable thread is ever left unscheduled for more than
``delay_bound`` consecutive steps: once a thread's staleness reaches the
bound it is scheduled immediately.  This gives experiments a *dial* for
the maximum delay τ_max — the quantity every bound in the paper is
parameterized by — while keeping the schedule otherwise stochastic.

With ``bias`` > 0 the scheduler deliberately starves a victim subset of
threads as long as the bound allows, pushing realized interval contention
toward the worst case the bound permits (useful for stress-testing the
Theorem 6.5 precondition).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.runtime.rng import RngStream
from repro.sched.base import Scheduler


class BoundedDelayScheduler(Scheduler):
    """Random interleaving with guaranteed maximum staleness.

    Args:
        delay_bound: Maximum number of consecutive steps a runnable thread
            may be passed over.  Must be >= 1.
        seed: Seed for the private random stream.
        victims: Optional thread ids to starve as aggressively as the
            bound allows.
        bias: Probability (0..1) of applying the starvation policy at each
            step when ``victims`` is set.
    """

    def __init__(
        self,
        delay_bound: int,
        seed: int = 0,
        victims: Optional[Sequence[int]] = None,
        bias: float = 1.0,
    ) -> None:
        if delay_bound < 1:
            raise ValueError(f"delay_bound must be >= 1, got {delay_bound}")
        self.delay_bound = delay_bound
        self._rng = RngStream.root(seed)
        self._victims = set(victims or ())
        self._bias = bias
        self._staleness: Dict[int, int] = {}

    def on_spawn(self, sim, thread) -> None:
        self._staleness[thread.thread_id] = 0

    def select(self, sim) -> int:
        ids = self._runnable(sim)
        # Hard bound first: any thread at the staleness limit must run;
        # serve the *most* overdue so that infeasibly tight bounds
        # (delay_bound < n - 1) degrade to round-robin rather than
        # starving high thread ids.
        overdue = [i for i in ids if self._staleness.get(i, 0) >= self.delay_bound - 1]
        if overdue:
            choice = max(overdue, key=lambda i: (self._staleness.get(i, 0), -i))
        elif (
            self._victims
            and self._bias > 0
            and (self._bias >= 1.0 or self._rng.uniform() < self._bias)
        ):
            non_victims = [i for i in ids if i not in self._victims]
            pool = non_victims or ids
            choice = int(pool[self._rng.integers(0, len(pool))])
        else:
            choice = int(ids[self._rng.integers(0, len(ids))])

        for i in ids:
            self._staleness[i] = 0 if i == choice else self._staleness.get(i, 0) + 1
        return choice
