"""Fully serialized execution.

Runs the lowest-id runnable thread to completion before touching the
next.  Under this scheduler a lock-free SGD run degenerates to sequential
SGD (every view is consistent, every delay is zero), which is exactly the
baseline the paper compares against.
"""

from __future__ import annotations

from repro.sched.base import Scheduler


class SequentialScheduler(Scheduler):
    """Thread 0 runs to completion, then thread 1, and so on."""

    def select(self, sim) -> int:
        return self._runnable(sim)[0]
