"""Uniform (or weighted) random interleaving.

The standard *stochastic* scheduling model used by prior work (e.g.
De Sa et al., NIPS'15): at every step a runnable thread is drawn at
random, optionally with per-thread weights to model heterogeneous speeds.
Deterministic given its seed.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.runtime.rng import RngStream
from repro.sched.base import Scheduler


class RandomScheduler(Scheduler):
    """Pick a runnable thread at random each step.

    Args:
        seed: Seed for the scheduler's private random stream.
        weights: Optional map thread_id -> relative speed.  Threads absent
            from the map get weight 1.  Weights model slow/fast cores: a
            thread with weight 0.1 takes steps ~10x less often, inflating
            the delays its updates suffer.
    """

    def __init__(self, seed: int = 0, weights: Optional[Dict[int, float]] = None):
        self._rng = RngStream.root(seed)
        self._weights = dict(weights) if weights else {}

    def select(self, sim) -> int:
        ids = self._runnable(sim)
        if not self._weights:
            return int(ids[self._rng.integers(0, len(ids))])
        raw = np.array([self._weights.get(i, 1.0) for i in ids], dtype=float)
        total = raw.sum()
        if total <= 0:
            return int(ids[self._rng.integers(0, len(ids))])
        return int(self._rng.choice(ids, p=raw / total))
