"""Schedulers — the adversaries of the asynchronous shared-memory model.

A scheduler decides, one shared-memory step at a time, which thread's
pending atomic primitive executes next.  The hierarchy covers the spectrum
the paper reasons about:

* benign interleavings: :class:`SequentialScheduler`,
  :class:`RoundRobinScheduler`, :class:`RandomScheduler`;
* delay-controlled interleavings with an explicit τ_max knob:
  :class:`BoundedDelayScheduler`, :class:`PriorityDelayScheduler`;
* crash faults: :class:`CrashScheduler` (the model allows up to n−1);
* strong *adaptive* adversaries that inspect algorithm state including
  local coins: :class:`AdaptiveAdversary`, :class:`GreedyAscentAdversary`
  and the Section-5 lower-bound strategy :class:`StaleGradientAttack`.
"""

from repro.sched.base import Scheduler
from repro.sched.sequential import SequentialScheduler
from repro.sched.round_robin import RoundRobinScheduler
from repro.sched.random_sched import RandomScheduler
from repro.sched.bounded_delay import BoundedDelayScheduler
from repro.sched.crash import CrashScheduler
from repro.sched.adaptive import AdaptiveAdversary, GreedyAscentAdversary
from repro.sched.stale_attack import StaleGradientAttack
from repro.sched.priority_delay import PriorityDelayScheduler
from repro.sched.replay import (
    PrefixReplayScheduler,
    RecordingScheduler,
    ReplayScheduler,
)
from repro.sched.contention_max import ContentionMaximizer
from repro.sched.registry import (
    build_scheduler,
    register_scheduler,
    scheduler_names,
)

__all__ = [
    "Scheduler",
    "SequentialScheduler",
    "RoundRobinScheduler",
    "RandomScheduler",
    "BoundedDelayScheduler",
    "CrashScheduler",
    "AdaptiveAdversary",
    "GreedyAscentAdversary",
    "StaleGradientAttack",
    "PriorityDelayScheduler",
    "RecordingScheduler",
    "ReplayScheduler",
    "PrefixReplayScheduler",
    "ContentionMaximizer",
    "build_scheduler",
    "register_scheduler",
    "scheduler_names",
]
