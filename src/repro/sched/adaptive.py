"""Strong adaptive adversaries.

The paper's scheduler is *strong* and *adaptive*: it designs schedules
"with full knowledge of the algorithm and random coin flips".  In this
library, programs publish their local state — drawn samples, computed
gradients, current phase — through ``ctx.annotate``, and adaptive
adversaries read those annotations plus the shared memory itself before
every scheduling decision.

Annotation contract of the SGD programs (:mod:`repro.core`):

``phase``
    ``"start"`` — about to fetch&add the iteration counter;
    ``"read"`` — scanning the model entries into its view;
    ``"update"`` — gradient computed, applying per-entry fetch&adds;
    ``"done"`` — program finished.
``iterations_done``
    Number of iterations this thread has completed.
``pending_gradient``
    The stochastic gradient about to be applied (the revealed coins).
``view``
    The inconsistent view the gradient was computed at.
``sample``
    The raw random sample/coin used by the gradient oracle.
``blocked``
    ``True`` while the thread's next step cannot make progress (e.g. a
    spinlock waiter whose CAS just failed).  Phase-parking adversaries
    use it to avoid livelocking lock-based programs.

:class:`GreedyAscentAdversary` is a concrete worst-case-seeking adversary:
knowing the optimum x*, it always schedules the pending primitive that
(greedily) pushes the shared model furthest from x*.
"""

from __future__ import annotations

from typing import Optional

from repro.sched.base import Scheduler
from repro.shm.array import AtomicArray
from repro.shm.ops import FetchAdd, GuardedFetchAdd

import numpy as np


class AdaptiveAdversary(Scheduler):
    """Base class bundling the state-inspection helpers.

    Subclasses implement :meth:`select` using :meth:`phase`,
    :meth:`iterations_done`, :meth:`pending_gradient` and direct memory
    peeks; none of these consume logical time (the adversary observes for
    free, as in the model).
    """

    @staticmethod
    def phase(sim, thread_id: int) -> str:
        """The published phase of a thread (``""`` if never annotated)."""
        return sim.annotations(thread_id).get("phase", "")

    @staticmethod
    def iterations_done(sim, thread_id: int) -> int:
        """Completed-iteration count published by a thread."""
        return int(sim.annotations(thread_id).get("iterations_done", 0))

    @staticmethod
    def pending_gradient(sim, thread_id: int) -> Optional[np.ndarray]:
        """The gradient a thread is currently applying, if any."""
        return sim.annotations(thread_id).get("pending_gradient")

    @staticmethod
    def blocked(sim, thread_id: int) -> bool:
        """Whether a thread published that it cannot make progress."""
        return bool(sim.annotations(thread_id).get("blocked", False))


class GreedyAscentAdversary(AdaptiveAdversary):
    """Schedule whichever pending primitive most increases ‖X − x*‖².

    A concrete instantiation of the strong adversary: it inspects every
    runnable thread's pending operation and, for pending model updates,
    computes the exact effect on the squared distance to the optimum
    (2·(X[i] − x*[i])·δ + δ²).  Ties and non-update steps fall back to
    the round-robin order, so the adversary still keeps the execution
    moving (it must schedule *something* each step).

    Args:
        model: The shared model array X.
        x_star: The optimum the algorithm is trying to reach.
    """

    def __init__(self, model: AtomicArray, x_star: np.ndarray) -> None:
        self.model = model
        self.x_star = np.asarray(x_star, dtype=float)
        self._rr_last = -1

    def _distance_effect(self, sim, thread_id: int) -> float:
        op = sim.threads[thread_id].pending_op
        if isinstance(op, (FetchAdd, GuardedFetchAdd)) and self.model.contains_address(
            op.address
        ):
            index = self.model.index_of_address(op.address)
            current = sim.memory.peek(op.address)
            gap = current - self.x_star[index]
            return 2.0 * gap * op.delta + op.delta * op.delta
        return 0.0

    def select(self, sim) -> int:
        ids = self._runnable(sim)
        effects = [(self._distance_effect(sim, i), i) for i in ids]
        best_effect = max(e for e, _ in effects)
        if best_effect > 0.0:
            for effect, thread_id in effects:
                if effect == best_effect:
                    return thread_id
        # No harmful update available: round-robin to keep making steps.
        for candidate in ids:
            if candidate > self._rr_last:
                self._rr_last = candidate
                return candidate
        self._rr_last = ids[0]
        return ids[0]
