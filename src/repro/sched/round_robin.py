"""Fair round-robin interleaving.

Cycles through runnable threads one step each — the most benign genuinely
concurrent schedule.  Under round-robin with n threads the interval
contention of an SGD iteration is Θ(n), the floor the paper's τ_avg ≤ 2n
bound (Gibson & Gramoli) is calibrated against.
"""

from __future__ import annotations

from repro.errors import NoRunnableThreadError
from repro.runtime.thread import ThreadState
from repro.sched.base import Scheduler


class RoundRobinScheduler(Scheduler):
    """Step each runnable thread in turn, skipping finished/crashed ones."""

    def __init__(self) -> None:
        self._last = -1

    def select(self, sim) -> int:
        # Circular scan from the last pick: equivalent to "smallest
        # runnable id greater than _last, else smallest runnable id", but
        # without materializing the runnable-id list every step — with all
        # threads runnable (the common case) this is O(1).
        threads = sim.threads
        n = len(threads)
        start = self._last + 1
        for offset in range(n):
            candidate = (start + offset) % n
            if threads[candidate].state is ThreadState.RUNNABLE:
                self._last = candidate
                return candidate
        raise NoRunnableThreadError("scheduler consulted with no runnable thread")
