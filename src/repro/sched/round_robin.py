"""Fair round-robin interleaving.

Cycles through runnable threads one step each — the most benign genuinely
concurrent schedule.  Under round-robin with n threads the interval
contention of an SGD iteration is Θ(n), the floor the paper's τ_avg ≤ 2n
bound (Gibson & Gramoli) is calibrated against.
"""

from __future__ import annotations

from repro.sched.base import Scheduler


class RoundRobinScheduler(Scheduler):
    """Step each runnable thread in turn, skipping finished/crashed ones."""

    def __init__(self) -> None:
        self._last = -1

    def select(self, sim) -> int:
        ids = self._runnable(sim)
        for candidate in ids:
            if candidate > self._last:
                self._last = candidate
                return candidate
        self._last = ids[0]
        return ids[0]
