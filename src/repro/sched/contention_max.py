"""An adversary that maximizes interval contention.

The Gibson–Gramoli bound τ_avg ≤ 2n and the paper's Lemma 6.2 structure
hold for *every* schedule; to test them where it hurts, this scheduler
keeps as many SGD iterations concurrently in flight as possible: it
drives every thread *into* an iteration and parks it at its update
phase; once all runnable threads are parked it releases exactly one —
the longest-parked — to finish its iteration and start (and park) the
next, before releasing the next-oldest.  The releases are staggered, so
every iteration's lifetime straddles both the cohort it parked with and
the iterations started by the releases it waits through — pushing ρ(θ)
toward its ceiling, unlike a burst release (which aligns cohorts and
yields only ρ ≈ n−1).

Under this adversary the measured τ_avg climbs well above a random
schedule's and toward the 2n ceiling, which is what the E4 acceptance
note calls "the adversarial traces should approach it".
"""

from __future__ import annotations

from typing import List

from repro.sched.adaptive import AdaptiveAdversary


class ContentionMaximizer(AdaptiveAdversary):
    """Park all threads mid-update; release one (FIFO) at a time.

    Uses only the published phase annotations, so it works against any
    program following the phase protocol (Algorithm 1, Hogwild,
    momentum, staleness-aware).
    """

    def __init__(self) -> None:
        self._park_order: List[int] = []  # FIFO of parked thread ids
        self._releasing: int = -1  # thread currently being released
        self._release_left_update = False  # it flushed and moved on
        self._rr_last = -1

    def _round_robin(self, candidates: List[int]) -> int:
        for candidate in candidates:
            if candidate > self._rr_last:
                self._rr_last = candidate
                return candidate
        self._rr_last = candidates[0]
        return candidates[0]

    def select(self, sim) -> int:
        ids = self._runnable(sim)
        parked = [i for i in ids if self.phase(sim, i) == "update"]
        # Maintain FIFO parking order.
        for i in parked:
            if i not in self._park_order:
                self._park_order.append(i)
        self._park_order = [i for i in self._park_order if i in parked]

        if self._releasing >= 0:
            if self._releasing not in ids:
                self._releasing = -1  # finished its program
            else:
                phase = self.phase(sim, self._releasing)
                if phase != "update":
                    self._release_left_update = True
                if phase == "update" and self._release_left_update:
                    # Flushed and re-parked at its next iteration: done.
                    self._releasing = -1
                else:
                    # Still flushing the old update or advancing through
                    # the next iteration's claim/read/compute.
                    return self._releasing

        # Threads that published ``blocked`` (e.g. spinlock waiters) can
        # burn steps but cannot reach their update phase while the lock
        # holder is parked — treat them like parked threads so the
        # release logic below still fires instead of livelocking.
        advancing = [
            i for i in ids if i not in parked and not self.blocked(sim, i)
        ]
        if advancing:
            # Keep funneling everyone else toward their update phase.
            return self._round_robin(advancing)

        # Everyone runnable is parked: release the longest-parked one to
        # flush its update and run ahead into its next iteration.
        oldest = self._park_order.pop(0) if self._park_order else ids[0]
        self._releasing = oldest
        self._release_left_update = False
        return oldest
