"""A generic delay dial: hold a victim's updates for a fixed time.

Whenever a victim thread is about to apply its gradient (published phase
``"update"``), this scheduler parks it for exactly ``delay`` steps while
the other threads proceed, then lets the stale update through.  Unlike
:class:`~repro.sched.stale_attack.StaleGradientAttack` (which counts
runner *iterations*), the hold here is counted in raw shared-memory
steps, giving experiments direct control over the per-update staleness —
and hence over the realized τ_max that enters every bound.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.runtime.rng import RngStream
from repro.sched.adaptive import AdaptiveAdversary


class PriorityDelayScheduler(AdaptiveAdversary):
    """Starve victims' update phases for a fixed number of steps.

    Args:
        victims: Thread ids whose updates get delayed.
        delay: Steps each victim is parked once it enters its update
            phase.
        seed: Seed for the random choice among non-victim threads.
    """

    def __init__(self, victims: Sequence[int], delay: int, seed: int = 0) -> None:
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self.victims = set(victims)
        self.delay = delay
        self._rng = RngStream.root(seed)
        self._held_since: Dict[int, int] = {}

    def _is_held(self, sim, thread_id: int) -> bool:
        if thread_id not in self.victims:
            return False
        if self.phase(sim, thread_id) != "update":
            self._held_since.pop(thread_id, None)
            return False
        start = self._held_since.setdefault(thread_id, sim.now)
        return sim.now - start < self.delay

    def select(self, sim) -> int:
        ids = self._runnable(sim)
        free = [i for i in ids if not self._is_held(sim, i)]
        pool = free or ids  # never deadlock: if everyone is held, release
        choice = int(pool[self._rng.integers(0, len(pool))])
        if choice in self.victims and self.phase(sim, choice) == "update":
            # The victim takes one update step; if more update steps
            # remain it will be re-held from "now" only if it re-enters
            # the phase — keep the original hold origin so the whole
            # update batch goes through once released.
            pass
        return choice
