"""Crash-injecting scheduler wrapper.

The asynchronous shared-memory model lets the adversary crash up to
``n - 1`` threads.  :class:`CrashScheduler` wraps any inner scheduler and
fires configured crashes either at absolute times or after a thread has
taken a given number of steps — e.g. to kill a thread mid-update and
check that the survivors still converge (Algorithm 1 is lock-free, so
they must).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.sched.base import Scheduler


@dataclass(frozen=True)
class CrashPlan:
    """One scheduled crash.

    Attributes:
        thread_id: Victim thread.
        at_time: Crash as soon as logical time reaches this value
            (use ``after_steps`` instead for step-count triggers).
        after_steps: Crash once the victim has executed this many of its
            own steps; ``-1`` disables the trigger.
    """

    thread_id: int
    at_time: int = -1
    after_steps: int = -1


class CrashScheduler(Scheduler):
    """Delegate scheduling to ``inner``, injecting crashes per ``plans``.

    Crashes are injected at selection points (before choosing the next
    thread), which in the model is exactly when the adversary acts.
    """

    def __init__(self, inner: Scheduler, plans: List[CrashPlan]) -> None:
        self.inner = inner
        self._pending = list(plans)

    def on_spawn(self, sim, thread) -> None:
        self.inner.on_spawn(sim, thread)

    def on_step(self, sim, record) -> None:
        self.inner.on_step(sim, record)

    def _fire_due(self, sim) -> None:
        still_pending = []
        for plan in self._pending:
            thread = sim.threads[plan.thread_id]
            due_time = plan.at_time >= 0 and sim.now >= plan.at_time
            due_steps = plan.after_steps >= 0 and thread.steps_taken >= plan.after_steps
            if (due_time or due_steps) and thread.is_runnable:
                # Respect the n-1 crash budget: skip rather than error if
                # the plan would kill the last thread.
                runnable = sim.runnable_ids
                if len(runnable) > 1:
                    sim.crash(plan.thread_id)
                    continue
            if thread.is_runnable:
                still_pending.append(plan)
        self._pending = still_pending

    def select(self, sim) -> int:
        self._fire_due(sim)
        return self.inner.select(sim)
