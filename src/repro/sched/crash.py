"""Crash-injecting scheduler wrapper.

The asynchronous shared-memory model lets the adversary crash up to
``n - 1`` threads.  :class:`CrashScheduler` wraps any inner scheduler and
fires configured crashes either at absolute times or after a thread has
taken a given number of steps — e.g. to kill a thread mid-update and
check that the survivors still converge (Algorithm 1 is lock-free, so
they must).

Plans that cannot fire are never silently forgotten: a plan whose firing
would exhaust the ``n - 1`` crash budget is skipped with a
:class:`CrashBudgetWarning`, a plan whose victim already crashed or
finished is retired immediately (it is not re-examined on every
``select``), and both kinds are reported through
:attr:`CrashScheduler.unfired_plans`.

For richer fault models — probabilistic/adaptive crashes, stalls, torn
updates — see :mod:`repro.faults`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import List, Tuple

from repro.runtime.policy import live_hook
from repro.sched.base import Scheduler


class CrashBudgetWarning(RuntimeWarning):
    """A due crash plan was skipped because firing it would have
    exhausted the model's ``n - 1`` crash budget."""


@dataclass(frozen=True)
class CrashPlan:
    """One scheduled crash.

    Attributes:
        thread_id: Victim thread.
        at_time: Crash as soon as logical time reaches this value
            (use ``after_steps`` instead for step-count triggers).
        after_steps: Crash once the victim has executed this many of its
            own steps; ``-1`` disables the trigger.
    """

    thread_id: int
    at_time: int = -1
    after_steps: int = -1


class CrashScheduler(Scheduler):
    """Delegate scheduling to ``inner``, injecting crashes per ``plans``.

    Crashes are injected at selection points (before choosing the next
    thread), which in the model is exactly when the adversary acts.

    The inner scheduler's ``on_spawn``/``on_step`` hooks are forwarded
    only when the inner actually defines them: benign inners keep the
    engine's elided ``run_fast`` path (no live ``on_step`` means no
    per-step :class:`~repro.runtime.events.StepRecord` construction).
    """

    def __init__(self, inner: Scheduler, plans: List[CrashPlan]) -> None:
        self.inner = inner
        self._pending = list(plans)
        self._unfired: List[Tuple[CrashPlan, str]] = []
        # Alias the inner's hooks onto this instance only if they are
        # live; otherwise the base class's no-op (marked for elision)
        # stays visible and run_fast keeps its fast path.
        spawn_hook = live_hook(inner, "on_spawn")
        if spawn_hook is not None:
            self.on_spawn = spawn_hook
        step_hook = live_hook(inner, "on_step")
        if step_hook is not None:
            self.on_step = step_hook

    @property
    def pending_plans(self) -> List[CrashPlan]:
        """Plans that have not fired and may still become due."""
        return list(self._pending)

    @property
    def unfired_plans(self) -> List[CrashPlan]:
        """Plans retired without firing (budget-skipped or dead victim)."""
        return [plan for plan, _reason in self._unfired]

    @property
    def unfired(self) -> Tuple[Tuple[CrashPlan, str], ...]:
        """Retired plans with the reason each one never fired."""
        return tuple(self._unfired)

    def _fire_due(self, sim) -> None:
        still_pending = []
        for plan in self._pending:
            thread = sim.threads[plan.thread_id]
            if not thread.is_runnable:
                # The victim crashed or finished before the trigger: the
                # plan can never fire, so retire it now instead of
                # re-examining it on every future select.
                self._unfired.append((plan, f"victim-{thread.state.value}"))
                continue
            due_time = plan.at_time >= 0 and sim.now >= plan.at_time
            due_steps = (
                plan.after_steps >= 0 and thread.steps_taken >= plan.after_steps
            )
            if not (due_time or due_steps):
                still_pending.append(plan)
                continue
            # Respect the n-1 crash budget: keeping at least one runnable
            # thread also guarantees the simulator-level budget holds.
            if sim.runnable_count > 1:
                sim.crash(plan.thread_id)
            else:
                warnings.warn(
                    f"{plan} skipped: firing would leave no runnable "
                    f"thread (n-1 crash budget)",
                    CrashBudgetWarning,
                    stacklevel=3,
                )
                self._unfired.append((plan, "crash-budget"))
        self._pending = still_pending

    def select(self, sim) -> int:
        if self._pending:
            self._fire_due(sim)
        return self.inner.select(sim)
