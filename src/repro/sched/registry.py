"""Name-keyed scheduler registry — one factory for every adversary kind.

The sanitize presets, the chaos campaign and the algorithm-zoo grid all
need to build schedulers from a *name* that travels through configs,
journal fingerprints and CLI flags.  Before this module each of them
carried its own name→class map; now there is a single registry, so a
kind string means the same adversary everywhere and new schedulers are
exposed to every grid by registering them once.

Construction is seed-disciplined: :func:`build_scheduler` always accepts
a ``seed`` and passes it only to schedulers that actually consume
randomness — deterministic adversaries (round-robin, contention-max,
stale-attack) ignore it, so fingerprints stay stable across registry
growth.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.errors import ConfigurationError
from repro.sched.base import Scheduler
from repro.sched.bounded_delay import BoundedDelayScheduler
from repro.sched.contention_max import ContentionMaximizer
from repro.sched.priority_delay import PriorityDelayScheduler
from repro.sched.random_sched import RandomScheduler
from repro.sched.round_robin import RoundRobinScheduler
from repro.sched.sequential import SequentialScheduler
from repro.sched.stale_attack import StaleGradientAttack

#: A factory takes ``(seed, **params)`` and returns a fresh scheduler.
SchedulerFactory = Callable[..., Scheduler]

_FACTORIES: Dict[str, SchedulerFactory] = {}


def register_scheduler(name: str, factory: SchedulerFactory) -> None:
    """Register ``factory`` under ``name`` (unique; grids key on it)."""
    if name in _FACTORIES:
        raise ConfigurationError(f"scheduler kind {name!r} already registered")
    _FACTORIES[name] = factory


def scheduler_names() -> Tuple[str, ...]:
    """Registered kinds, sorted (stable across registration order)."""
    return tuple(sorted(_FACTORIES))


def build_scheduler(kind: str, seed: int = 0, **params) -> Scheduler:
    """Instantiate the scheduler registered under ``kind``.

    ``seed`` feeds the scheduler's private random stream where one
    exists; ``params`` override the kind's default knobs (e.g.
    ``delay_bound`` for ``bounded-delay``).
    """
    factory = _FACTORIES.get(kind)
    if factory is None:
        raise ConfigurationError(
            f"unknown scheduler kind: {kind!r} "
            f"(choose from {', '.join(scheduler_names())})"
        )
    return factory(seed, **params)


register_scheduler("sequential", lambda seed, **p: SequentialScheduler())
register_scheduler("round-robin", lambda seed, **p: RoundRobinScheduler())
register_scheduler(
    "random", lambda seed, **p: RandomScheduler(seed=seed, **p)
)
register_scheduler(
    "bounded-delay",
    lambda seed, delay_bound=8, **p: BoundedDelayScheduler(
        delay_bound=delay_bound, seed=seed, **p
    ),
)
register_scheduler(
    "stale-attack",
    lambda seed, victim=1, runner=0, delay=8, **p: StaleGradientAttack(
        victim=victim, runner=runner, delay=delay, **p
    ),
)
register_scheduler(
    "contention-max", lambda seed, **p: ContentionMaximizer()
)
register_scheduler(
    "priority-delay",
    lambda seed, victims=(1,), delay=12, **p: PriorityDelayScheduler(
        victims, delay, seed=seed, **p
    ),
)
