"""ℓ2-regularized logistic regression.

A classification workload showing the framework beyond quadratics: with
labels y_i ∈ {−1, +1},

    f(x) = (1/m)·Σ log(1 + exp(−y_i·a_iᵀx)) + (λ/2)·‖x‖².

The regularizer makes f λ-strongly convex; the per-sample gradient is
σ(−y_i·a_iᵀx)·(−y_i·a_i) + λx with σ the logistic sigmoid.  The optimum
has no closed form, so it is computed once at construction by Newton's
method (the objective is smooth and strongly convex, so this converges
quadratically) — the success-region metrics need x*.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, ConvergenceError
from repro.objectives.base import Objective, Sample
from repro.runtime.rng import RngStream


def _sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(z, dtype=float)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


class LogisticRegression(Objective):
    """Binary logistic regression with ℓ2 regularization.

    Args:
        design: Data matrix A (m, d).
        labels: Labels in {−1, +1}, length m.
        regularization: λ > 0 (strong-convexity constant).

    Constants:

    * ``strong_convexity`` = λ (the data term is convex, the regularizer
      λ-strongly convex).
    * ``lipschitz_expected`` = (1/4)·mean‖a_i‖² + λ, since the per-sample
      gradient map has Jacobian σ'(·)·a_i a_iᵀ + λI with σ' ≤ 1/4.
    * ``second_moment_bound(r)``: the data term is bounded by ‖a_i‖
      (|σ| ≤ 1), the regularizer by λ·(r + ‖x*‖).
    """

    def __init__(
        self, design: np.ndarray, labels: np.ndarray, regularization: float = 0.1
    ) -> None:
        design = np.asarray(design, dtype=float)
        labels = np.asarray(labels, dtype=float)
        if design.ndim != 2:
            raise ConfigurationError(f"design must be 2-D, got shape {design.shape}")
        if labels.shape != (design.shape[0],):
            raise ConfigurationError(
                f"labels must have shape ({design.shape[0]},), got {labels.shape}"
            )
        if not np.all(np.isin(labels, (-1.0, 1.0))):
            raise ConfigurationError("labels must be -1 or +1")
        if regularization <= 0:
            raise ConfigurationError(f"regularization must be > 0, got {regularization}")
        self.design = design
        self.labels = labels
        self.regularization = regularization
        self.num_points, self.dim = design.shape
        self._row_sq_norms = np.einsum("ij,ij->i", design, design)
        self._x_star = self._solve_newton()

    def _solve_newton(self, tol: float = 1e-12, max_iter: int = 100) -> np.ndarray:
        x = np.zeros(self.dim)
        for _ in range(max_iter):
            grad = self.gradient(x)
            if np.linalg.norm(grad) < tol:
                return x
            margins = self.labels * (self.design @ x)
            s = _sigmoid(-margins)
            weights = s * (1.0 - s)
            hessian = (
                self.design.T * weights
            ) @ self.design / self.num_points + self.regularization * np.eye(self.dim)
            x = x - np.linalg.solve(hessian, grad)
        if np.linalg.norm(self.gradient(x)) > 1e-6:
            raise ConvergenceError("Newton solve for the logistic optimum failed")
        return x

    def value(self, x: np.ndarray) -> float:
        x = np.asarray(x, dtype=float)
        margins = self.labels * (self.design @ x)
        losses = np.logaddexp(0.0, -margins)
        return float(losses.mean()) + 0.5 * self.regularization * float(x @ x)

    def gradient(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        margins = self.labels * (self.design @ x)
        s = _sigmoid(-margins)
        data_grad = -(self.design.T @ (s * self.labels)) / self.num_points
        return data_grad + self.regularization * x

    @property
    def x_star(self) -> np.ndarray:
        return self._x_star

    def draw_sample(self, rng: RngStream) -> Sample:
        return int(rng.integers(0, self.num_points))

    def grad_at_sample(self, x: np.ndarray, sample: Sample) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        row = self.design[sample]
        label = self.labels[sample]
        margin = label * float(row @ x)
        s = float(_sigmoid(np.array([-margin]))[0])
        return -s * label * row + self.regularization * x

    @property
    def strong_convexity(self) -> float:
        return self.regularization

    @property
    def lipschitz_expected(self) -> float:
        return 0.25 * float(self._row_sq_norms.mean()) + self.regularization

    def second_moment_bound(self, radius: float) -> float:
        x_star_norm = float(np.linalg.norm(self._x_star))
        data_norms = np.sqrt(self._row_sq_norms)
        reg_norm = self.regularization * (radius + x_star_norm)
        return float(((data_norms + reg_norm) ** 2).mean())
