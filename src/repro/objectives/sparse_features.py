"""Least squares over sparse features — the practical Hogwild workload.

Section 8 ("Why is Asynchronous SGD Fast in Practice?") explains the
empirical speed of lock-free SGD partly by sparsity: "gradients are
often sparse, meaning that d is low" — each sample touches only a few
coordinates, so concurrent iterations rarely interfere.  This objective
makes that dial explicit: a least-squares problem whose design matrix
has exactly ``k`` non-zero entries per row, so every stochastic gradient
is k-sparse.  ``density = k/d`` sweeps from the Hogwild sweet spot
(k ≪ d) to the fully dense case; the E12 experiment measures the view
error ‖x_t − v_t‖ shrinking with it.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.objectives.least_squares import LeastSquares
from repro.runtime.rng import RngStream


def make_sparse_regression(
    num_points: int,
    dim: int,
    nonzeros_per_row: int,
    noise_sigma: float = 0.1,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Generate y = A·x_true + noise with exactly ``nonzeros_per_row``
    non-zero entries per row of A (positions uniform, values Gaussian).

    Guarantees every coordinate is hit by at least one row (re-seeding
    rows until coverage holds), so the least-squares problem stays
    strongly convex.

    Returns:
        (design A, targets y, ground truth x_true).
    """
    if not 1 <= nonzeros_per_row <= dim:
        raise ConfigurationError(
            f"nonzeros_per_row must be in [1, {dim}], got {nonzeros_per_row}"
        )
    if num_points < dim:
        raise ConfigurationError(
            f"need num_points >= dim for identifiability, got {num_points}"
        )
    root = RngStream.root(seed)
    pos_rng, val_rng, truth_rng, noise_rng = root.spawn(4)

    for _attempt in range(50):
        design = np.zeros((num_points, dim))
        for i in range(num_points):
            columns = pos_rng.generator.choice(
                dim, size=nonzeros_per_row, replace=False
            )
            design[i, columns] = val_rng.normal(0.0, 1.0, size=nonzeros_per_row)
        if np.all(np.count_nonzero(design, axis=0) > 0):
            covariance = design.T @ design / num_points
            if np.linalg.eigvalsh(covariance)[0] > 1e-6:
                break
    else:  # pragma: no cover - probabilistically unreachable
        raise ConfigurationError(
            "could not generate a full-rank sparse design; increase "
            "num_points or nonzeros_per_row"
        )

    x_true = truth_rng.normal(0.0, 1.0, size=dim)
    targets = design @ x_true + noise_rng.normal(0.0, noise_sigma, num_points)
    return design, targets, x_true


class SparseFeatureLeastSquares(LeastSquares):
    """Least squares whose per-sample gradients are exactly k-sparse.

    A thin specialization of :class:`LeastSquares` that records the
    design sparsity and exposes the density dial the Section-8 argument
    is about.

    Args:
        design: Sparse data matrix (``nonzeros_per_row`` non-zeros/row).
        targets: Targets y.
    """

    def __init__(self, design: np.ndarray, targets: np.ndarray) -> None:
        super().__init__(design, targets)
        self._row_nonzeros = int(np.count_nonzero(design, axis=1).max())

    @property
    def gradient_sparsity(self) -> int:
        """Maximum non-zero entries of any stochastic gradient (= max
        non-zeros of any design row)."""
        return self._row_nonzeros

    @property
    def density(self) -> float:
        """gradient_sparsity / d — the Section-8 sparsity dial."""
        return self._row_nonzeros / self.dim
