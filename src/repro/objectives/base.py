"""The objective/oracle interface.

The paper's assumptions (Section 3) are stated for an abstract stochastic
gradient oracle g̃ with E[g̃(x)] = ∇f(x).  We model the oracle the way the
analysis does: a *random function* — first a sample ω is drawn (a data
point index, a noise vector, a coordinate), then the gradient is the
deterministic map ``grad_at_sample(x, ω)``.  This split matters for the
expected-Lipschitz condition (Eq. 3), which couples g̃(x) and g̃(y) at the
*same* sample, and it is also what lets the strong adaptive adversary see
"the results of the threads' local coins": the sample is drawn (and
published) before the gradient is applied.
"""

from __future__ import annotations

import abc
from typing import Any, Tuple

import numpy as np

from repro.runtime.rng import RngStream

#: Opaque oracle sample (data index, noise vector, coordinate, ...).
Sample = Any


class Objective(abc.ABC):
    """A convex objective with a stochastic gradient oracle.

    Subclasses provide the function, the oracle and the analytic
    constants.  All vectors are 1-D numpy arrays of length :attr:`dim`.
    """

    #: Model dimension d.
    dim: int

    # ------------------------------------------------------------------
    # The function itself
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def value(self, x: np.ndarray) -> float:
        """f(x)."""

    @abc.abstractmethod
    def gradient(self, x: np.ndarray) -> np.ndarray:
        """The true gradient ∇f(x)."""

    @property
    @abc.abstractmethod
    def x_star(self) -> np.ndarray:
        """The minimizer x* of f."""

    # ------------------------------------------------------------------
    # The stochastic oracle
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def draw_sample(self, rng: RngStream) -> Sample:
        """Draw the oracle's random sample ω (the 'coin')."""

    @abc.abstractmethod
    def grad_at_sample(self, x: np.ndarray, sample: Sample) -> np.ndarray:
        """g̃_ω(x): the stochastic gradient at ``x`` for a fixed sample.

        Must be unbiased over :meth:`draw_sample`:
        E_ω[g̃_ω(x)] = ∇f(x).
        """

    def stochastic_gradient(
        self, x: np.ndarray, rng: RngStream
    ) -> Tuple[np.ndarray, Sample]:
        """Draw a sample and evaluate the oracle; returns (g̃, ω)."""
        sample = self.draw_sample(rng)
        return self.grad_at_sample(x, sample), sample

    # ------------------------------------------------------------------
    # Analytic constants (the inputs to every bound in the paper)
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def strong_convexity(self) -> float:
        """c > 0 with (x−y)ᵀ(∇f(x)−∇f(y)) ≥ c‖x−y‖² (Eq. 2)."""

    @property
    @abc.abstractmethod
    def lipschitz_expected(self) -> float:
        """L with E_ω‖g̃_ω(x) − g̃_ω(y)‖ ≤ L‖x−y‖ (Eq. 3)."""

    @abc.abstractmethod
    def second_moment_bound(self, radius: float) -> float:
        """M² with E‖g̃(x)‖² ≤ M² for all ‖x − x*‖ ≤ ``radius`` (Eq. 4).

        The paper assumes a global M²; for most objectives that only
        exists over a bounded region of operation, so callers pass the
        radius their run will stay inside (typically a small multiple of
        ‖x₀ − x*‖).
        """

    # ------------------------------------------------------------------
    # Conveniences shared by all objectives
    # ------------------------------------------------------------------
    def distance_to_opt(self, x: np.ndarray) -> float:
        """‖x − x*‖."""
        return float(np.linalg.norm(np.asarray(x, dtype=float) - self.x_star))

    def in_success_region(self, x: np.ndarray, epsilon: float) -> bool:
        """Whether x lies in S = {x : ‖x − x*‖² ≤ ε}."""
        return self.distance_to_opt(x) ** 2 <= epsilon

    def suboptimality(self, x: np.ndarray) -> float:
        """f(x) − f(x*)."""
        return self.value(x) - self.value(self.x_star)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(dim={self.dim})"
