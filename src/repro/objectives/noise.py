"""Additive noise models for gradient oracles.

Several objectives build their oracle as "true gradient plus zero-mean
noise" — exactly the Section-5 construction g̃(x) = x − ũ with ũ Gaussian.
The noise model is the sample ω: it is drawn first, published to the
adversary, and then added to the deterministic gradient.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.runtime.rng import RngStream


class NoiseModel(abc.ABC):
    """A distribution over zero-mean perturbation vectors."""

    @abc.abstractmethod
    def draw(self, rng: RngStream, dim: int) -> np.ndarray:
        """Sample one noise vector of length ``dim``."""

    @abc.abstractmethod
    def second_moment(self, dim: int) -> float:
        """E‖ũ‖² for vectors of length ``dim``."""


class GaussianNoise(NoiseModel):
    """I.i.d. N(0, σ²) per coordinate.

    Args:
        sigma: Per-coordinate standard deviation σ.
    """

    def __init__(self, sigma: float) -> None:
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        self.sigma = sigma

    def draw(self, rng: RngStream, dim: int) -> np.ndarray:
        return rng.normal(0.0, self.sigma, size=dim)

    def second_moment(self, dim: int) -> float:
        return dim * self.sigma**2

    def __repr__(self) -> str:
        return f"GaussianNoise(sigma={self.sigma})"


class ZeroNoise(NoiseModel):
    """The degenerate noiseless oracle (σ = 0): g̃ = ∇f exactly.

    Used by the Theorem 5.1 analysis's "suppose for simplicity σ = 0"
    step and by tests that need deterministic gradients.
    """

    def draw(self, rng: RngStream, dim: int) -> np.ndarray:
        return np.zeros(dim)

    def second_moment(self, dim: int) -> float:
        return 0.0

    def __repr__(self) -> str:
        return "ZeroNoise()"
