"""Least-squares and ridge regression — the paper's motivating workload.

The introduction's running example: given data points with loss
L_i(x) = ½(a_iᵀx − y_i)², minimize the average loss
f(x) = (1/m)·Σ L_i(x).  The oracle samples a data point uniformly and
returns its gradient, so E[g̃(x)] = ∇f(x) exactly as in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.objectives.base import Objective, Sample
from repro.runtime.rng import RngStream


class LeastSquares(Objective):
    """f(x) = (1/2m)·‖Ax − y‖², oracle g̃(x) = a_i(a_iᵀx − y_i), i ~ U[m].

    Args:
        design: Data matrix A of shape (m, d); rows are the data points.
        targets: Target vector y of length m.

    The analytic constants are exact:

    * ``strong_convexity`` = λ_min(AᵀA/m) — requires A to have full
      column rank.
    * ``lipschitz_expected`` = (1/m)·Σ‖a_i‖² — since for a fixed sample i,
      g̃_i(x) − g̃_i(y) = a_i a_iᵀ (x−y), whose norm is at most
      ‖a_i‖²·‖x−y‖, averaged over i.
    * ``second_moment_bound(r)`` — sup over the operating ball of
      (1/m)·Σ ‖a_i‖²·(a_iᵀ(x−x*) + r_i*)² with r_i* the optimal
      residuals, bounded via Cauchy–Schwarz per point.
    """

    def __init__(self, design: np.ndarray, targets: np.ndarray) -> None:
        design = np.asarray(design, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if design.ndim != 2:
            raise ConfigurationError(f"design must be 2-D, got shape {design.shape}")
        if targets.shape != (design.shape[0],):
            raise ConfigurationError(
                f"targets must have shape ({design.shape[0]},), got {targets.shape}"
            )
        m, d = design.shape
        if m < d:
            raise ConfigurationError(
                f"need at least d={d} data points for strong convexity, got {m}"
            )
        self.design = design
        self.targets = targets
        self.num_points = m
        self.dim = d

        covariance = design.T @ design / m
        eigenvalues = np.linalg.eigvalsh(covariance)
        if eigenvalues[0] <= 1e-12:
            raise ConfigurationError(
                "design matrix is column-rank-deficient; the objective is "
                "not strongly convex (add ridge regularization instead)"
            )
        self._c = float(eigenvalues[0])
        self._row_sq_norms = np.einsum("ij,ij->i", design, design)
        self._lipschitz = float(self._row_sq_norms.mean())
        self._x_star = np.linalg.solve(covariance * m, design.T @ targets)
        self._opt_residuals = design @ self._x_star - targets

    def value(self, x: np.ndarray) -> float:
        residuals = self.design @ np.asarray(x, dtype=float) - self.targets
        return 0.5 * float(residuals @ residuals) / self.num_points

    def gradient(self, x: np.ndarray) -> np.ndarray:
        residuals = self.design @ np.asarray(x, dtype=float) - self.targets
        return self.design.T @ residuals / self.num_points

    @property
    def x_star(self) -> np.ndarray:
        return self._x_star

    def draw_sample(self, rng: RngStream) -> Sample:
        return int(rng.integers(0, self.num_points))

    def grad_at_sample(self, x: np.ndarray, sample: Sample) -> np.ndarray:
        row = self.design[sample]
        residual = float(row @ np.asarray(x, dtype=float) - self.targets[sample])
        return row * residual

    @property
    def strong_convexity(self) -> float:
        return self._c

    @property
    def lipschitz_expected(self) -> float:
        return self._lipschitz

    def second_moment_bound(self, radius: float) -> float:
        # ‖g̃_i(x)‖² = ‖a_i‖²·(a_iᵀ(x−x*) + r_i*)²
        #           ≤ ‖a_i‖²·(‖a_i‖·radius + |r_i*|)²   on the ball.
        per_point = self._row_sq_norms * (
            np.sqrt(self._row_sq_norms) * radius + np.abs(self._opt_residuals)
        ) ** 2
        return float(per_point.mean())


class RidgeRegression(Objective):
    """f(x) = (1/2m)·‖Ax − y‖² + (λ/2)·‖x‖².

    The oracle samples a point and returns its regularized gradient
    a_i(a_iᵀx − y_i) + λx, keeping unbiasedness.  Regularization makes
    the problem λ-strongly convex even for rank-deficient designs.

    Args:
        design: Data matrix A (m, d).
        targets: Target vector y (m,).
        regularization: λ > 0.
    """

    def __init__(
        self, design: np.ndarray, targets: np.ndarray, regularization: float = 0.1
    ) -> None:
        design = np.asarray(design, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if design.ndim != 2:
            raise ConfigurationError(f"design must be 2-D, got shape {design.shape}")
        if targets.shape != (design.shape[0],):
            raise ConfigurationError(
                f"targets must have shape ({design.shape[0]},), got {targets.shape}"
            )
        if regularization <= 0:
            raise ConfigurationError(
                f"regularization must be > 0, got {regularization}"
            )
        m, d = design.shape
        self.design = design
        self.targets = targets
        self.regularization = regularization
        self.num_points = m
        self.dim = d

        covariance = design.T @ design / m
        eigenvalues = np.linalg.eigvalsh(covariance)
        self._c = float(eigenvalues[0]) + regularization
        self._row_sq_norms = np.einsum("ij,ij->i", design, design)
        self._lipschitz = float(self._row_sq_norms.mean()) + regularization
        self._x_star = np.linalg.solve(
            covariance + regularization * np.eye(d), design.T @ targets / m
        )
        self._opt_residuals = design @ self._x_star - targets

    def value(self, x: np.ndarray) -> float:
        x = np.asarray(x, dtype=float)
        residuals = self.design @ x - self.targets
        return (
            0.5 * float(residuals @ residuals) / self.num_points
            + 0.5 * self.regularization * float(x @ x)
        )

    def gradient(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        residuals = self.design @ x - self.targets
        return self.design.T @ residuals / self.num_points + self.regularization * x

    @property
    def x_star(self) -> np.ndarray:
        return self._x_star

    def draw_sample(self, rng: RngStream) -> Sample:
        return int(rng.integers(0, self.num_points))

    def grad_at_sample(self, x: np.ndarray, sample: Sample) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        row = self.design[sample]
        residual = float(row @ x - self.targets[sample])
        return row * residual + self.regularization * x

    @property
    def strong_convexity(self) -> float:
        return self._c

    @property
    def lipschitz_expected(self) -> float:
        return self._lipschitz

    def second_moment_bound(self, radius: float) -> float:
        x_star_norm = float(np.linalg.norm(self._x_star))
        data_part = self._row_sq_norms * (
            np.sqrt(self._row_sq_norms) * radius + np.abs(self._opt_residuals)
        ) ** 2
        reg_part = self.regularization * (radius + x_star_norm)
        # (‖a‖ + ‖b‖)² bound on ‖data + reg‖².
        return float(((np.sqrt(data_part) + reg_part) ** 2).mean())
