"""A separable objective whose oracle emits 1-sparse gradients.

Prior work (De Sa et al., NIPS'15 — the paper's Theorem 3.1/6.3 source)
required every stochastic gradient to have a *single non-zero entry*;
this paper's analysis removes that assumption.  To compare the two
regimes empirically we need a workload that satisfies it:

    f(x) = Σ_j (c_j/2)·(x_j − x*_j)²

with the oracle picking a coordinate j uniformly and returning
d·c_j·(x_j − x*_j)·e_j (+ optional scalar noise on that coordinate).
The d· factor keeps the oracle unbiased: E[g̃(x)] = ∇f(x).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.objectives.base import Objective, Sample
from repro.runtime.rng import RngStream


class SeparableQuadratic(Objective):
    """Coordinate-separable quadratic with a 1-sparse gradient oracle.

    Args:
        curvatures: Per-coordinate curvatures c_j > 0, length d.
        x_star: Optimum; defaults to the origin.
        noise_sigma: Std-dev of scalar noise added to the selected
            coordinate's gradient entry (0 disables noise).

    Constants (exact):

    * ``strong_convexity`` = min_j c_j.
    * ``lipschitz_expected``: for a fixed coordinate j the oracle map is
      d·c_j along e_j, so E_j‖g̃_j(x) − g̃_j(y)‖ = Σ_j c_j·|x_j − y_j|
      ≤ √(Σ c_j²)·‖x−y‖; we report L = √(Σ_j c_j²).
    * ``second_moment_bound(r)`` = d·max_j c_j²·r² + d·σ² — one
      coordinate contributes (d·c_j·δ_j − noise)², averaged over j.
    """

    def __init__(
        self,
        curvatures: np.ndarray,
        x_star: Optional[np.ndarray] = None,
        noise_sigma: float = 0.0,
    ) -> None:
        curvatures = np.asarray(curvatures, dtype=float)
        if curvatures.ndim != 1 or curvatures.size < 1:
            raise ConfigurationError("curvatures must be a non-empty 1-D array")
        if np.any(curvatures <= 0):
            raise ConfigurationError("all curvatures must be > 0")
        if noise_sigma < 0:
            raise ConfigurationError(f"noise_sigma must be >= 0, got {noise_sigma}")
        self.curvatures = curvatures
        self.dim = curvatures.size
        self._x_star = (
            np.zeros(self.dim) if x_star is None else np.asarray(x_star, dtype=float)
        )
        if self._x_star.shape != (self.dim,):
            raise ConfigurationError(
                f"x_star must have shape ({self.dim},), got {self._x_star.shape}"
            )
        self.noise_sigma = noise_sigma

    def value(self, x: np.ndarray) -> float:
        diff = np.asarray(x, dtype=float) - self._x_star
        return 0.5 * float(self.curvatures @ (diff * diff))

    def gradient(self, x: np.ndarray) -> np.ndarray:
        return self.curvatures * (np.asarray(x, dtype=float) - self._x_star)

    @property
    def x_star(self) -> np.ndarray:
        return self._x_star

    def draw_sample(self, rng: RngStream) -> Sample:
        coordinate = int(rng.integers(0, self.dim))
        noise = float(rng.normal(0.0, self.noise_sigma)) if self.noise_sigma else 0.0
        return (coordinate, noise)

    def grad_at_sample(self, x: np.ndarray, sample: Sample) -> np.ndarray:
        coordinate, noise = sample
        x = np.asarray(x, dtype=float)
        gradient = np.zeros(self.dim)
        gradient[coordinate] = (
            self.dim
            * self.curvatures[coordinate]
            * (x[coordinate] - self._x_star[coordinate])
            - noise
        )
        return gradient

    @property
    def strong_convexity(self) -> float:
        return float(self.curvatures.min())

    @property
    def lipschitz_expected(self) -> float:
        return float(np.sqrt((self.curvatures**2).sum()))

    def second_moment_bound(self, radius: float) -> float:
        max_curvature = float(self.curvatures.max())
        return (
            self.dim * (max_curvature * radius) ** 2
            + self.dim * self.noise_sigma**2
        )

    @property
    def gradient_sparsity(self) -> int:
        """Maximum number of non-zero entries any oracle output can have
        (always 1 — the NIPS'15 assumption this workload certifies)."""
        return 1
