"""Quadratic objectives with additive-noise oracles.

:class:`IsotropicQuadratic` generalizes the paper's Section-5 warm-up
f(x) = ½x² with oracle g̃(x) = x − ũ to d dimensions and arbitrary
curvature; :class:`Quadratic` allows a full PSD curvature matrix, giving
controllable conditioning.  Both oracles are "true gradient plus noise",
so their analytic constants are exact — which makes them the reference
workloads for checking measured behaviour against the bounds.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.objectives.base import Objective, Sample
from repro.objectives.noise import GaussianNoise, NoiseModel
from repro.runtime.rng import RngStream


class IsotropicQuadratic(Objective):
    """f(x) = (c/2)·‖x − x*‖² with oracle g̃(x) = c(x − x*) − ũ.

    The Section-5 lower-bound instance is ``IsotropicQuadratic(dim=1,
    curvature=1.0, noise=GaussianNoise(sigma))``.

    Args:
        dim: Model dimension d.
        curvature: The strong-convexity constant c (also the Lipschitz
            constant, since the Hessian is c·I).
        x_star: Optimum; defaults to the origin.
        noise: Additive zero-mean oracle noise ũ; default N(0, 1) per
            coordinate.

    Constants: ``strong_convexity = curvature``,
    ``lipschitz_expected = curvature`` (the noise cancels in
    g̃_ω(x) − g̃_ω(y)), and ``second_moment_bound(r) = c²r² + E‖ũ‖²``.
    """

    def __init__(
        self,
        dim: int,
        curvature: float = 1.0,
        x_star: Optional[np.ndarray] = None,
        noise: Optional[NoiseModel] = None,
    ) -> None:
        if dim < 1:
            raise ConfigurationError(f"dim must be >= 1, got {dim}")
        if curvature <= 0:
            raise ConfigurationError(f"curvature must be > 0, got {curvature}")
        self.dim = dim
        self.curvature = curvature
        self._x_star = (
            np.zeros(dim) if x_star is None else np.asarray(x_star, dtype=float)
        )
        if self._x_star.shape != (dim,):
            raise ConfigurationError(
                f"x_star must have shape ({dim},), got {self._x_star.shape}"
            )
        self.noise = noise if noise is not None else GaussianNoise(1.0)

    def value(self, x: np.ndarray) -> float:
        diff = np.asarray(x, dtype=float) - self._x_star
        return 0.5 * self.curvature * float(diff @ diff)

    def gradient(self, x: np.ndarray) -> np.ndarray:
        return self.curvature * (np.asarray(x, dtype=float) - self._x_star)

    @property
    def x_star(self) -> np.ndarray:
        return self._x_star

    def draw_sample(self, rng: RngStream) -> Sample:
        return self.noise.draw(rng, self.dim)

    def grad_at_sample(self, x: np.ndarray, sample: Sample) -> np.ndarray:
        return self.gradient(x) - sample

    @property
    def strong_convexity(self) -> float:
        return self.curvature

    @property
    def lipschitz_expected(self) -> float:
        return self.curvature

    def second_moment_bound(self, radius: float) -> float:
        return (self.curvature * radius) ** 2 + self.noise.second_moment(self.dim)


class Quadratic(Objective):
    """f(x) = ½·(x − x*)ᵀ A (x − x*) for a symmetric PSD matrix A.

    The oracle adds zero-mean noise to the exact gradient:
    g̃(x) = A(x − x*) − ũ.

    Args:
        matrix: Symmetric positive-definite curvature matrix A (d×d).
        x_star: Optimum; defaults to the origin.
        noise: Additive oracle noise; default N(0, 1) per coordinate.

    Constants: ``strong_convexity = λ_min(A)``,
    ``lipschitz_expected = λ_max(A)``,
    ``second_moment_bound(r) = (λ_max r)² + E‖ũ‖²``.
    """

    def __init__(
        self,
        matrix: np.ndarray,
        x_star: Optional[np.ndarray] = None,
        noise: Optional[NoiseModel] = None,
    ) -> None:
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ConfigurationError(f"matrix must be square, got {matrix.shape}")
        if not np.allclose(matrix, matrix.T, atol=1e-10):
            raise ConfigurationError("matrix must be symmetric")
        eigenvalues = np.linalg.eigvalsh(matrix)
        if eigenvalues[0] <= 0:
            raise ConfigurationError(
                f"matrix must be positive definite (min eigenvalue "
                f"{eigenvalues[0]:.3g})"
            )
        self.matrix = matrix
        self.dim = matrix.shape[0]
        self._lambda_min = float(eigenvalues[0])
        self._lambda_max = float(eigenvalues[-1])
        self._x_star = (
            np.zeros(self.dim) if x_star is None else np.asarray(x_star, dtype=float)
        )
        if self._x_star.shape != (self.dim,):
            raise ConfigurationError(
                f"x_star must have shape ({self.dim},), got {self._x_star.shape}"
            )
        self.noise = noise if noise is not None else GaussianNoise(1.0)

    def value(self, x: np.ndarray) -> float:
        diff = np.asarray(x, dtype=float) - self._x_star
        return 0.5 * float(diff @ self.matrix @ diff)

    def gradient(self, x: np.ndarray) -> np.ndarray:
        return self.matrix @ (np.asarray(x, dtype=float) - self._x_star)

    @property
    def x_star(self) -> np.ndarray:
        return self._x_star

    @property
    def condition_number(self) -> float:
        """λ_max / λ_min of the curvature matrix."""
        return self._lambda_max / self._lambda_min

    def draw_sample(self, rng: RngStream) -> Sample:
        return self.noise.draw(rng, self.dim)

    def grad_at_sample(self, x: np.ndarray, sample: Sample) -> np.ndarray:
        return self.gradient(x) - sample

    @property
    def strong_convexity(self) -> float:
        return self._lambda_min

    @property
    def lipschitz_expected(self) -> float:
        return self._lambda_max

    def second_moment_bound(self, radius: float) -> float:
        return (self._lambda_max * radius) ** 2 + self.noise.second_moment(self.dim)
