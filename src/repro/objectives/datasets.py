"""Synthetic dataset generators.

The paper's workloads are "a large set of m data points" for regression
and classification.  No proprietary data is needed — these generators
produce controlled synthetic datasets with known ground truth and
adjustable conditioning, which is what the experiments need to check
bounds whose constants depend on the data spectrum.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.runtime.rng import RngStream


def _design_with_condition(
    rng: RngStream, num_points: int, dim: int, condition_number: float
) -> np.ndarray:
    """Gaussian design whose column covariance has the given condition
    number (singular values interpolated geometrically)."""
    raw = rng.normal(0.0, 1.0, size=(num_points, dim))
    if dim == 1 or condition_number == 1.0:
        return raw
    # Rescale singular directions to impose the spectrum.
    u, s, vt = np.linalg.svd(raw, full_matrices=False)
    target = np.geomspace(1.0, 1.0 / np.sqrt(condition_number), num=dim)
    target *= s[0] / target[0] if target[0] else 1.0
    return u @ np.diag(target * (s.mean() / target.mean())) @ vt


def make_regression(
    num_points: int,
    dim: int,
    noise_sigma: float = 0.1,
    condition_number: float = 1.0,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Generate a linear-regression dataset y = A·x_true + noise.

    Args:
        num_points: Number of data points m (must be >= dim).
        dim: Feature dimension d.
        noise_sigma: Std-dev of label noise.
        condition_number: Condition number of the design's covariance
            (1.0 = isotropic; larger = harder problem).
        seed: Root seed.

    Returns:
        (design A, targets y, ground truth x_true).
    """
    if num_points < dim:
        raise ConfigurationError(
            f"need num_points >= dim for identifiability, got {num_points} < {dim}"
        )
    if condition_number < 1.0:
        raise ConfigurationError(
            f"condition_number must be >= 1, got {condition_number}"
        )
    root = RngStream.root(seed)
    design_rng, truth_rng, noise_rng = root.spawn(3)
    design = _design_with_condition(design_rng, num_points, dim, condition_number)
    x_true = truth_rng.normal(0.0, 1.0, size=dim)
    noise = noise_rng.normal(0.0, noise_sigma, size=num_points)
    targets = design @ x_true + noise
    return design, targets, x_true


def make_classification(
    num_points: int,
    dim: int,
    margin: float = 1.0,
    flip_fraction: float = 0.05,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Generate a binary classification dataset with labels in {−1, +1}.

    Points are Gaussian; labels follow sign(a·x_true) with ``margin``
    scaling the separator and ``flip_fraction`` of labels flipped to make
    the problem non-separable (so the logistic optimum is finite even
    without regularization).

    Returns:
        (design A, labels y, ground truth separator x_true).
    """
    if not 0.0 <= flip_fraction < 0.5:
        raise ConfigurationError(
            f"flip_fraction must be in [0, 0.5), got {flip_fraction}"
        )
    root = RngStream.root(seed)
    design_rng, truth_rng, flip_rng = root.spawn(3)
    design = design_rng.normal(0.0, 1.0, size=(num_points, dim))
    x_true = truth_rng.normal(0.0, 1.0, size=dim)
    norm = np.linalg.norm(x_true)
    if norm > 0:
        x_true = x_true * (margin / norm)
    labels = np.sign(design @ x_true)
    labels[labels == 0] = 1.0
    flips = flip_rng.uniform(size=num_points) < flip_fraction
    labels[flips] *= -1.0
    return design, labels, x_true
