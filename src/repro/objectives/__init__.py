"""Objective functions and stochastic gradient oracles.

Each :class:`~repro.objectives.base.Objective` bundles a convex function
``f`` with a stochastic gradient oracle and the analytic constants the
paper's bounds consume:

* ``c`` — strong convexity (Eq. 2),
* ``L`` — expected Lipschitz constant of the oracle (Eq. 3),
* ``M²`` — a bound on the oracle's second moment over the region of
  operation (Eq. 4).

Included objectives: the Section-5 scalar quadratic (and its isotropic
d-dimensional generalization), least-squares / ridge regression over a
dataset, ℓ2-regularized logistic regression, and a separable objective
with 1-sparse gradients matching the NIPS'15 single-nonzero-entry
assumption that this paper eliminates.
"""

from repro.objectives.base import Objective
from repro.objectives.noise import GaussianNoise, NoiseModel, ZeroNoise
from repro.objectives.quadratic import IsotropicQuadratic, Quadratic
from repro.objectives.least_squares import LeastSquares, RidgeRegression
from repro.objectives.logistic import LogisticRegression
from repro.objectives.sparse import SeparableQuadratic
from repro.objectives.sparse_features import (
    SparseFeatureLeastSquares,
    make_sparse_regression,
)
from repro.objectives.datasets import make_classification, make_regression

__all__ = [
    "Objective",
    "NoiseModel",
    "GaussianNoise",
    "ZeroNoise",
    "Quadratic",
    "IsotropicQuadratic",
    "LeastSquares",
    "RidgeRegression",
    "LogisticRegression",
    "SeparableQuadratic",
    "SparseFeatureLeastSquares",
    "make_sparse_regression",
    "make_regression",
    "make_classification",
]
