#!/usr/bin/env python3
"""Tour of the extension algorithms around the paper's discussion section.

Four vignettes, one per remark the paper makes but does not develop:

1. **Staleness-aware SGD** (related work): damping updates by observed
   staleness beats a weak adversary — and falls to the adaptive one,
   just as the paper's "our lower bound applies to these works as well"
   asserts.
2. **Momentum** (Section 8): asynchrony begets momentum — the implicit
   β fitted from lock-free trajectories grows with the thread count.
3. **Consistent snapshots** (implicit design choice): making every view
   a true snapshot removes the inconsistency the analysis battles, at a
   step cost that grows with contention.
4. **Classic averaged-iterate analysis** (Section 3's contrast): the
   regret-style guarantee for the averaged iterate, next to its measured
   value.

Usage::

    python examples/extensions_tour.py
"""

import numpy as np

import repro
from repro.core.averaged import classic_average_bound, run_averaged_sgd
from repro.core.snapshot_sgd import run_snapshot_sgd
from repro.core.staleness_aware import StalenessAwareSGDProgram
from repro.metrics.trace import (
    iterations_to_stay_below,
    parallel_speedup,
)


def staleness_vignette() -> None:
    print("== 1. staleness-aware damping vs weak and adaptive adversaries ==")
    objective = repro.IsotropicQuadratic(dim=1, noise=repro.ZeroNoise())
    x0 = np.array([10.0])
    target = 1e-3 * 10.0
    alpha, tau = 0.1, 100

    def attacked(freeze_phase):
        def factory(model, counter, thread_index):
            return StalenessAwareSGDProgram(
                model, counter, objective, alpha, 1200
            )

        result = repro.run_lock_free_sgd(
            objective,
            repro.StaleGradientAttack(victim=1, runner=0, delay=tau,
                                      freeze_phase=freeze_phase),
            num_threads=2, step_size=alpha, iterations=1200, x0=x0, seed=0,
            program_factory=factory,
        )
        return iterations_to_stay_below(result.distances, target)

    weak = attacked("observe")
    adaptive = attacked("update")
    print(f"  weak adversary (freezes before the staleness read): "
          f"converged in {weak} iterations")
    print(f"  adaptive adversary (freezes after it):              "
          f"converged in {adaptive} iterations")
    print("  -> the mitigation only helps against adversaries that cannot "
          "see the algorithm's phases\n")


def momentum_vignette() -> None:
    print("== 2. asynchrony begets momentum ==")
    objective = repro.IsotropicQuadratic(dim=2, noise=repro.ZeroNoise())
    x0 = np.array([5.0, -5.0])
    alpha = 0.12
    for n in (1, 4, 16):
        result = repro.run_lock_free_sgd(
            objective, repro.RoundRobinScheduler(), num_threads=n,
            step_size=alpha, iterations=250, x0=x0, seed=0,
        )
        beta = repro.fit_implicit_momentum(
            result.distances, objective, alpha, len(result.distances) - 1,
            x0, betas=np.linspace(0, 0.95, 20), seeds=1,
        )
        print(f"  n={n:2d} threads -> fitted implicit momentum beta = {beta:.2f}")
    print()


def snapshot_vignette() -> None:
    print("== 3. the price of consistent views ==")
    objective = repro.IsotropicQuadratic(dim=3, noise=repro.GaussianNoise(0.3))
    x0 = np.full(3, 2.0)
    for n in (1, 8):
        lock_free = repro.run_lock_free_sgd(
            objective, repro.RandomScheduler(seed=1), num_threads=n,
            step_size=0.05, iterations=200, x0=x0, seed=1,
        )
        snapshot = run_snapshot_sgd(
            objective, repro.RandomScheduler(seed=1), num_threads=n,
            step_size=0.05, iterations=200, x0=x0, seed=1,
        )
        ratio = (snapshot.sim_steps / snapshot.iterations) / (
            lock_free.sim_steps / lock_free.iterations
        )
        print(
            f"  n={n}: snapshot views cost {ratio:.1f}x the steps/iteration "
            f"({snapshot.scan_retries} scan retries)"
        )
    # And the flip side of lock-freedom: ideal parallel speedup.
    result = repro.run_lock_free_sgd(
        objective, repro.RoundRobinScheduler(), num_threads=8,
        step_size=0.05, iterations=400, x0=x0, seed=2,
    )
    speedup = parallel_speedup(
        result.sim_steps, list(result.thread_steps.values())
    )
    print(f"  ideal wall-clock speedup of the lock-free run at n=8: "
          f"~{speedup:.1f}x (Section 8's parallelism dividend)\n")


def averaged_vignette() -> None:
    print("== 4. the classic averaged-iterate guarantee (Section 3) ==")
    objective = repro.IsotropicQuadratic(dim=2, noise=repro.GaussianNoise(0.5))
    x0 = np.array([2.0, -2.0])
    iterations = 400
    bound = classic_average_bound(
        objective.strong_convexity,
        objective.second_moment_bound(2 * objective.distance_to_opt(x0)),
        iterations,
    )
    measured = np.mean(
        [
            run_averaged_sgd(objective, iterations, x0=x0, seed=s)
            .average_suboptimality
            for s in range(10)
        ]
    )
    print(f"  E[f(x̄_T)] - f* measured: {measured:.4f}")
    print(f"  classic bound 2M²/(c(T+1)): {bound:.4f}")
    print("  -> holds; note it speaks about the averaged iterate's value, "
          "not hitting probabilities — hence the paper's martingales")


def main() -> None:
    staleness_vignette()
    momentum_vignette()
    snapshot_vignette()
    averaged_vignette()


if __name__ == "__main__":
    main()
