#!/usr/bin/env python3
"""The Theorem 5.1 attack, live — and how Algorithm 2 survives it.

Part 1 replays Section 5's construction: two threads minimizing
f(x) = ½x² with a fixed learning rate, while the adversary freezes one
thread's gradient for τ iterations before letting it land.  The measured
slowdown is compared to the paper's Ω(τ) prediction for a sweep of τ.

Part 2 runs the *same* adversary against Algorithm 2 (FullSGD), whose
halving step size shrinks the damage each stale update can do — the
mitigation the paper proves necessary (Section 8).

Usage::

    python examples/adversarial_delays.py
"""

import math

import numpy as np

import repro
from repro.metrics.trace import iterations_to_stay_below
from repro.theory.lower_bound import required_delay, slowdown_factor


def main() -> None:
    alpha = 0.1
    objective = repro.IsotropicQuadratic(dim=1, noise=repro.ZeroNoise())
    x0 = np.array([10.0])
    target = 1e-4 * float(x0[0])

    print(f"fixed learning rate alpha = {alpha}")
    print(
        f"Theorem 5.1: the adversary needs delay tau >= "
        f"{required_delay(alpha)} before a stale gradient dominates\n"
    )

    baseline = repro.run_sequential_sgd(
        objective, alpha=alpha, iterations=3000, x0=x0, seed=0
    )
    baseline_time = iterations_to_stay_below(baseline.distances, target)
    print(f"sequential baseline: stays below {target:g} after "
          f"{baseline_time} iterations")

    table = repro.Table(
        ["tau", "attacked iters", "measured slowdown", "predicted Omega(tau)"],
        title="\nPart 1 — stale-gradient attack on fixed-alpha SGD",
    )
    for tau in (30, 60, 100, 150):
        attacked = repro.run_lock_free_sgd(
            objective,
            repro.StaleGradientAttack(victim=1, runner=0, delay=tau),
            num_threads=2,
            step_size=alpha,
            iterations=3000,
            x0=x0,
            seed=0,
        )
        attacked_time = iterations_to_stay_below(attacked.distances, target)
        table.add_row(
            [
                tau,
                attacked_time if attacked_time is not None else "never",
                (attacked_time / baseline_time)
                if attacked_time is not None
                else float("nan"),
                slowdown_factor(alpha, tau),
            ]
        )
    print(table.render())

    print("\nPart 2 — the same adversary vs Algorithm 2 (halving alpha)")
    noisy = repro.IsotropicQuadratic(dim=1, noise=repro.GaussianNoise(0.2))
    epsilon = 0.01
    driver = repro.FullSGD(
        noisy,
        num_threads=2,
        epsilon=epsilon,
        alpha0=alpha,
        iterations_per_epoch=400,
        x0=x0,
    )
    out = driver.run(
        repro.StaleGradientAttack(victim=1, runner=0, delay=100), seed=1
    )
    print(f"epochs: {out.num_epochs}  (step sizes: "
          f"{[f'{a:.3g}' for a in out.step_sizes]})")
    print(f"guard-rejected stale updates: {out.rejected_updates}")
    print(
        f"final ||r - x*|| = {out.distance:.4f} vs target sqrt(eps) = "
        f"{math.sqrt(epsilon):.4f} -> "
        + ("TARGET MET" if out.achieved_target else "missed (single run)")
    )


if __name__ == "__main__":
    main()
