#!/usr/bin/env python3
"""Regenerate Figure 1 from a live execution.

The paper's Figure 1 is a schematic: per-iteration update rows, applied
updates in red, pending in black, and the inconsistent view v_t obtained
by summing the applied entries column-wise.  Here the same picture is
rendered (in ASCII: ``#`` applied, ``o`` pending) from an actual
Algorithm-1 trace, at three freeze points, together with the
accumulator x_t and one thread's actually-read view at the final freeze
point.

Usage::

    python examples/figure1_views.py
"""

import numpy as np

import repro


def main() -> None:
    dim, threads = 6, 3
    objective = repro.IsotropicQuadratic(
        dim=dim, noise=repro.GaussianNoise(1.0)
    )
    x0 = np.linspace(1.0, 2.0, dim)
    result = repro.run_lock_free_sgd(
        objective,
        repro.RandomScheduler(seed=42),
        num_threads=threads,
        step_size=0.05,
        iterations=14,
        x0=x0,
        seed=42,
    )

    for fraction in (0.33, 0.66, 1.0):
        at_time = int(result.sim_steps * fraction)
        print(f"\n----- frozen at {int(fraction * 100)}% of the execution -----")
        print(repro.render_update_matrix(result.records, dim, at_time=at_time))

    # The Section 6.1 bookkeeping at the end of the run: x_t vs views.
    print("\naccumulator x_t (all updates in first-update order):")
    from repro.core.results import accumulator_trajectory

    trajectory = accumulator_trajectory(x0, result.records)
    for t in (0, len(result.records) // 2, len(result.records)):
        print(f"  x_{t} = {np.round(trajectory[t], 3)}")

    last = result.records[-1]
    print(
        f"\nlast iteration (thread {last.thread_id}) computed its gradient "
        f"at the inconsistent view\n  v = {np.round(last.view, 3)}"
    )
    matches = np.any(
        np.all(np.isclose(trajectory, last.view, atol=1e-12), axis=1)
    )
    print(
        "that view "
        + (
            "coincides with some x_t"
            if matches
            else "matches NO accumulator state x_t — the inconsistency "
            "Figure 1 illustrates"
        )
    )


if __name__ == "__main__":
    main()
