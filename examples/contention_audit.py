#!/usr/bin/env python3
"""Contention audit: measure ρ(θ), τ_max, τ_avg and check the lemmas live.

Runs the same workload under a ladder of schedulers — round-robin,
random, delay-bounded, and an aggressive priority-delay adversary — and
for each trace measures the Section-6.1 quantities and verifies the
combinatorial structure the paper's upper bound stands on:

* τ_avg ≤ 2n (Gibson–Gramoli);
* Lemma 6.2 — fewer than n bad iterations per Kn-start window;
* Lemma 6.4 — indicator sums ≤ 2√(τ_max·n).

Usage::

    python examples/contention_audit.py
"""

import numpy as np

import repro
from repro.theory.contention import (
    delay_sequence,
    lemma_6_2_violations,
    lemma_6_4_bound,
)


def main() -> None:
    num_threads = 4
    objective = repro.IsotropicQuadratic(
        dim=3, noise=repro.GaussianNoise(0.4)
    )
    x0 = np.full(3, 2.0)

    schedulers = [
        ("round-robin", repro.RoundRobinScheduler()),
        ("random", repro.RandomScheduler(seed=3)),
        ("bounded-delay(32), starving t0",
         repro.BoundedDelayScheduler(32, seed=3, victims=[0])),
        ("priority-delay(80) on t0",
         repro.PriorityDelayScheduler(victims=[0], delay=80, seed=3)),
    ]

    table = repro.Table(
        [
            "scheduler",
            "tau_max",
            "tau_avg",
            "2n",
            "L6.2 ok",
            "L6.4 max sum",
            "L6.4 bound",
        ],
        title=f"contention audit: n={num_threads}, 500 iterations each",
    )
    for name, scheduler in schedulers:
        result = repro.run_lock_free_sgd(
            objective,
            scheduler,
            num_threads=num_threads,
            step_size=0.02,
            iterations=500,
            x0=x0,
            seed=3,
        )
        records = result.records
        violations = lemma_6_2_violations(records, 2, num_threads)
        max_sum, bound = lemma_6_4_bound(records)
        table.add_row(
            [
                name,
                repro.tau_max(records),
                repro.tau_avg(records),
                2 * num_threads,
                not violations,
                max_sum,
                bound,
            ]
        )
    print(table.render())

    # Show a delay-sequence excerpt under the adversary for intuition.
    result = repro.run_lock_free_sgd(
        objective,
        repro.PriorityDelayScheduler(victims=[0], delay=80, seed=3),
        num_threads=num_threads,
        step_size=0.02,
        iterations=60,
        x0=x0,
        seed=3,
    )
    delays = delay_sequence(result.records)
    print(
        "\nper-iteration delays tau_t under priority-delay(80) "
        "(victim's stale updates show up as spikes):"
    )
    print("  " + " ".join(str(int(d)) for d in delays))


if __name__ == "__main__":
    main()
