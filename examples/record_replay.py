#!/usr/bin/env python3
"""Deterministic debugging: record a schedule, replay it exactly.

In this model an execution is fully determined by (programs, seeds,
schedule).  Wrap any scheduler in a :class:`RecordingScheduler` to
capture its decisions as a plain list of ints, then hand that list to a
:class:`ReplayScheduler` to reproduce the run bit-for-bit — or to a
teammate, a bug report, or a shrinker.  Strict replay also *detects*
divergence: if the code under replay no longer behaves as recorded, the
replay fails loudly instead of silently computing something else.

Usage::

    python examples/record_replay.py
"""

import numpy as np

import repro
from repro.sched.replay import RecordingScheduler, ReplayScheduler


def main() -> None:
    objective = repro.IsotropicQuadratic(
        dim=2, noise=repro.GaussianNoise(0.4)
    )
    x0 = np.array([2.5, -2.5])

    def run(scheduler):
        return repro.run_lock_free_sgd(
            objective, scheduler, num_threads=3, step_size=0.05,
            iterations=80, x0=x0, seed=7,
        )

    print("== record ==")
    recorder = RecordingScheduler(repro.RandomScheduler(seed=99))
    original = run(recorder)
    print(f"captured {len(recorder.schedule)} scheduling decisions")
    print(f"final model: {np.round(original.x_final, 6)}")
    print(f"schedule head: {recorder.schedule[:24]} ...")

    print("\n== replay ==")
    replayed = run(ReplayScheduler(recorder.schedule))
    print(f"final model: {np.round(replayed.x_final, 6)}")
    identical = np.array_equal(original.x_final, replayed.x_final)
    print(f"bit-identical to the recorded run: {identical}")

    print("\n== divergence detection ==")
    corrupted = list(recorder.schedule)
    midpoint = len(corrupted) // 2
    corrupted[midpoint:] = [0] * (len(corrupted) - midpoint)
    try:
        run(ReplayScheduler(corrupted, strict=True))
        print("corrupted schedule replayed silently (unexpected!)")
    except repro.SimulationError as error:
        print(f"strict replay refused the corrupted schedule:\n  {error}")

    print("\n== shrinking with lenient replay ==")
    truncated = recorder.schedule[: len(recorder.schedule) // 4]
    result = run(ReplayScheduler(truncated, strict=False))
    print(
        f"first quarter of the schedule replayed, remainder filled "
        f"greedily: run still completed {result.iterations} iterations"
    )


if __name__ == "__main__":
    main()
