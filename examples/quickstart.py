#!/usr/bin/env python3
"""Quickstart: minimize a quadratic sequentially and lock-free.

Runs the classic SGD iteration on a noisy quadratic, then the paper's
lock-free Algorithm 1 with four threads under a random interleaving, and
compares hitting times, measured contention, and the Corollary 6.7
failure bound evaluated at the measured τ_max.

Usage::

    python examples/quickstart.py
"""

import numpy as np

import repro


def main() -> None:
    dim = 4
    epsilon = 0.5  # success region: ||x - x*||^2 <= 0.5
    x0 = np.array([3.0, -3.0, 3.0, -3.0])
    objective = repro.IsotropicQuadratic(
        dim=dim, curvature=1.0, noise=repro.GaussianNoise(0.5)
    )

    print("== Sequential SGD (Equation 1) ==")
    sequential = repro.run_sequential_sgd(
        objective, alpha=0.05, iterations=600, x0=x0, seed=1, epsilon=epsilon
    )
    print(f"hit success region at iteration: {sequential.hit_time}")
    print(f"final distance to x*:            {sequential.final_distance:.4f}")

    print("\n== Lock-free SGD (Algorithm 1), 4 threads, random adversary ==")
    lock_free = repro.run_lock_free_sgd(
        objective,
        scheduler=repro.RandomScheduler(seed=2),
        num_threads=4,
        step_size=0.05,
        iterations=600,
        x0=x0,
        seed=2,
        epsilon=epsilon,
    )
    print(f"hit success region at iteration: {lock_free.hit_time}")
    print(f"final distance to x*:            {lock_free.final_distance:.4f}")
    print(f"shared-memory steps consumed:    {lock_free.sim_steps}")
    print(f"iterations per thread:           {lock_free.thread_iterations}")

    measured_tau_max = repro.tau_max(lock_free.records)
    measured_tau_avg = repro.tau_avg(lock_free.records)
    print(f"measured tau_max:                {measured_tau_max}")
    print(f"measured tau_avg:                {measured_tau_avg:.2f} (<= 2n = 8)")

    radius = 2.0 * objective.distance_to_opt(x0)
    bound = repro.corollary_6_7_failure_bound(
        iterations=600,
        epsilon=epsilon,
        strong_convexity=objective.strong_convexity,
        second_moment=objective.second_moment_bound(radius),
        lipschitz=objective.lipschitz_expected,
        tau_max=measured_tau_max,
        num_threads=4,
        dim=dim,
        x0_distance=objective.distance_to_opt(x0),
    )
    print(f"Corollary 6.7 failure bound:     P(F_600) <= {bound:.4f}")
    print(
        "this run "
        + ("succeeded" if lock_free.succeeded else "failed")
        + " -> consistent with the bound"
    )


if __name__ == "__main__":
    main()
