#!/usr/bin/env python3
"""Data-parallel linear regression: lock-free vs locked vs mini-batch.

The paper's motivating workload (Section 1): m data points, per-point
loss L_i(x) = ½(a_iᵀx − y_i)², n threads sharing the model.  This example
runs the same least-squares problem through three parallelization
strategies and reports iterations, shared-memory steps and final error:

* **lock-free** (Algorithm 1 / Hogwild) — no synchronization at all;
* **locked** (Langford et al.) — a global CAS spinlock per iteration,
  showing the coarse-grained-locking step overhead the paper recalls;
* **mini-batch** — fully synchronous averaging (n gradients per model
  update).

Usage::

    python examples/linear_regression.py
"""

import numpy as np

import repro
from repro.core.locked import LockedSGDProgram
from repro.shm.register import AtomicRegister


def main() -> None:
    design, targets, x_true = repro.make_regression(
        num_points=80, dim=5, noise_sigma=0.1, condition_number=3.0, seed=7
    )
    objective = repro.LeastSquares(design, targets)
    print(f"dataset: {design.shape[0]} points, d={design.shape[1]}")
    print(f"||x_true - x*_least_squares|| = "
          f"{np.linalg.norm(x_true - objective.x_star):.4f}")

    num_threads = 4
    iterations = 3000
    alpha = 0.01
    x0 = np.zeros(objective.dim)
    table = repro.Table(
        ["strategy", "iterations", "shm steps", "final ||x - x*||"],
        title=f"\nleast squares with n={num_threads} threads, alpha={alpha}",
    )

    # 1. Lock-free (Algorithm 1).
    lock_free = repro.run_lock_free_sgd(
        objective,
        repro.RandomScheduler(seed=1),
        num_threads=num_threads,
        step_size=alpha,
        iterations=iterations,
        x0=x0,
        seed=1,
    )
    table.add_row(
        ["lock-free (Hogwild)", lock_free.iterations, lock_free.sim_steps,
         objective.distance_to_opt(lock_free.x_final)]
    )

    # 2. Coarse-grained lock.
    lock_state = {}

    def locked_factory(model, counter, thread_index):
        if "lock" not in lock_state:
            memory = model.memory
            lock_state["lock"] = AtomicRegister(
                memory, memory.allocate(1, name="lock")
            )
        return LockedSGDProgram(
            model=model, counter=counter, lock=lock_state["lock"],
            objective=objective, step_size=alpha, max_iterations=iterations,
        )

    locked = repro.run_lock_free_sgd(
        objective,
        repro.RandomScheduler(seed=1),
        num_threads=num_threads,
        step_size=alpha,
        iterations=iterations,
        x0=x0,
        seed=1,
        program_factory=locked_factory,
    )
    table.add_row(
        ["coarse lock (Langford)", locked.iterations, locked.sim_steps,
         objective.distance_to_opt(locked.x_final)]
    )

    # 3. Synchronous mini-batch: same oracle budget (iterations draws).
    minibatch = repro.run_minibatch_sgd(
        objective,
        alpha=alpha * num_threads,  # bigger batch tolerates a bigger step
        rounds=iterations // num_threads,
        batch_size=num_threads,
        x0=x0,
        seed=1,
    )
    table.add_row(
        ["mini-batch (synchronous)", minibatch.iterations, "n/a (barriers)",
         objective.distance_to_opt(minibatch.x_final)]
    )

    print(table.render())
    overhead = locked.sim_steps / lock_free.sim_steps
    print(
        f"\ncoarse-grained locking spent {overhead:.2f}x the shared-memory "
        f"steps of the lock-free run for the same iteration budget"
    )
    print(f"measured tau_max (lock-free run): {repro.tau_max(lock_free.records)}")


if __name__ == "__main__":
    main()
