"""E7 — regenerate the Corollary 7.1 table: FullSGD reaches √ε.

Runs Algorithm 2 over a sweep of targets ε under benign and adversarial
schedulers; mean final distance ≤ √ε and the epoch-count formula gate
the bench.
"""

from conftest import pick_config, run_experiment

from repro.experiments import e7_full_sgd


def test_e7_full_sgd(benchmark, record_experiment):
    config = pick_config(e7_full_sgd.E7Config)
    run_experiment(benchmark, e7_full_sgd, config, record_experiment)
