"""E6 — regenerate the bound-comparison figure: Cor 6.7 vs Thm 6.3.

Sweeps τ, locating the crossover where the new √(τ·n) bound beats the
prior linear-in-τ bound (predicted at τ* = 4nd), plus a simulation spot
check that the larger Eq. 12 step size converges faster.
"""

from conftest import pick_config, run_experiment

from repro.experiments import e6_bound_comparison


def test_e6_bound_comparison(benchmark, record_experiment):
    config = pick_config(e6_bound_comparison.E6Config)
    run_experiment(
        benchmark, e6_bound_comparison, config, record_experiment, logy=True
    )
