"""E5 — regenerate the Theorem 6.5 / Corollary 6.7 tables.

(a) measured lock-free P(F_T) under a delay adversary vs the Cor 6.7
bound; (b) hitting-time slowdown vs τ_max overlaid on the √(τ_max·n)
prediction and the prior-art linear curve.  Both acceptance criteria
gate the bench.
"""

from conftest import pick_config, run_experiment

from repro.experiments import e5_upper_bound


def test_e5_upper_bound(benchmark, record_experiment):
    config = pick_config(e5_upper_bound.E5Config)
    run_experiment(benchmark, e5_upper_bound, config, record_experiment)
