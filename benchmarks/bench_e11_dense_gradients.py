"""E11 — regenerate the dense-vs-sparse-oracle table.

The paper's departure (2) from prior work: the analysis no longer needs
single-non-zero-entry gradients.  Both a 1-sparse workload and a dense
least-squares workload run under the Eq. (12) machinery and must respect
the Corollary 6.7 bound.
"""

from conftest import pick_config, run_experiment

from repro.experiments import e11_dense_gradients


def test_e11_dense_gradients(benchmark, record_experiment):
    config = pick_config(e11_dense_gradients.E11Config)
    run_experiment(benchmark, e11_dense_gradients, config, record_experiment)
