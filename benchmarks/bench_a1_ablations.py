"""A1 — ablation table for the design choices DESIGN.md calls out.

fetch&add vs write, halving vs fixed step size, epoch isolation on/off —
each run under the adversary that exposes it.
"""

from conftest import pick_config, run_experiment

from repro.experiments import a1_ablations


def test_a1_ablations(benchmark, record_experiment):
    config = pick_config(a1_ablations.A1Config)
    run_experiment(benchmark, a1_ablations, config, record_experiment)
