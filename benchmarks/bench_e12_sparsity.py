"""E12 — regenerate the sparsity table from Section 8's discussion.

Gradient density (non-zeros per sample) vs the measured view error
‖x_t − v_t‖ and concurrent-update collision rate: the sparsity argument
for "why asynchronous SGD is fast in practice", quantified.
"""

from conftest import pick_config, run_experiment

from repro.experiments import e12_sparsity


def test_e12_sparsity(benchmark, record_experiment):
    config = pick_config(e12_sparsity.E12Config)
    run_experiment(benchmark, e12_sparsity, config, record_experiment)
