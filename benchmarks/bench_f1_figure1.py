"""F1 — regenerate Figure 1: the applied/pending update matrix.

Freezes a live Algorithm-1 execution mid-run and renders each
iteration's per-component update status; the presence of both applied
and pending updates (and exact agreement with the recorded fetch&add
times) gates the bench.
"""

from conftest import pick_config, run_experiment

from repro.experiments import f1_figure


def test_f1_figure1(benchmark, record_experiment):
    config = pick_config(f1_figure.F1Config)
    run_experiment(benchmark, f1_figure, config, record_experiment)
