"""E1 — regenerate the Theorem 3.1 table: sequential P(F_T) vs bound.

Prints/persists the per-horizon failure-probability table and the
measured-vs-bound curves; the acceptance criterion (measured never
statistically above the bound) gates the bench.
"""

from conftest import pick_config, run_experiment

from repro.experiments import e1_sequential


def test_e1_sequential_bound(benchmark, record_experiment):
    config = pick_config(e1_sequential.E1Config)
    run_experiment(
        benchmark, e1_sequential, config, record_experiment, logy=True
    )
