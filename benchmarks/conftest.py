"""Shared benchmark plumbing.

Each bench runs one experiment driver (quick preset by default; set
``REPRO_BENCH_SCALE=full`` for the EXPERIMENTS.md-scale runs), reports
its wall-clock through pytest-benchmark, prints the experiment's
table/figure, and writes it to ``benchmarks/results/<id>.txt`` so the
regenerated artifacts survive the run.

Monte-Carlo drivers that support process-parallel seed ensembles honor
``REPRO_BENCH_JOBS`` (or the ``--jobs`` pytest option): 1 = serial (the
default), 0 = one worker per CPU.  Results are bitwise identical for any
value — only wall-clock changes.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_JOBS_OVERRIDE = None


def pytest_addoption(parser):
    parser.addoption(
        "--jobs",
        action="store",
        type=int,
        default=None,
        help="worker processes for ensemble-capable benches "
        "(overrides REPRO_BENCH_JOBS; 1 = serial, 0 = one per CPU)",
    )


def pytest_configure(config):
    global _JOBS_OVERRIDE
    _JOBS_OVERRIDE = config.getoption("--jobs", default=None)


def bench_scale() -> str:
    """'quick' (default) or 'full', from REPRO_BENCH_SCALE."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "quick").lower()
    return scale if scale in ("quick", "full") else "quick"


def bench_jobs() -> int:
    """Ensemble worker count: --jobs option, else REPRO_BENCH_JOBS, else 1."""
    if _JOBS_OVERRIDE is not None:
        return _JOBS_OVERRIDE
    try:
        return int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    except ValueError:
        return 1


def pick_config(config_cls):
    """The preset matching the requested scale, with the jobs knob set
    on configs that have one."""
    config = config_cls.full() if bench_scale() == "full" else config_cls.quick()
    if hasattr(config, "jobs"):
        config.jobs = bench_jobs()
    return config


@pytest.fixture
def record_experiment():
    """Save and print an ExperimentResult produced by a bench."""

    def _record(result, logy: bool = False) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = result.render(plot=True, logy=logy)
        (RESULTS_DIR / f"{result.experiment_id}.txt").write_text(text + "\n")
        print()
        print(text)

    return _record


def run_experiment(benchmark, module, config, record, logy=False):
    """Benchmark one driver invocation (single round: these are
    experiments, not microbenchmarks) and persist its artifact."""
    result = benchmark.pedantic(
        lambda: module.run(config), rounds=1, iterations=1
    )
    record(result, logy=logy)
    assert result.passed, f"{result.experiment_id} acceptance criterion failed"
    return result
