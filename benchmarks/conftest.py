"""Shared benchmark plumbing.

Each bench runs one experiment driver (quick preset by default; set
``REPRO_BENCH_SCALE=full`` for the EXPERIMENTS.md-scale runs), reports
its wall-clock through pytest-benchmark, prints the experiment's
table/figure, and writes it to ``benchmarks/results/<id>.txt`` so the
regenerated artifacts survive the run.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_scale() -> str:
    """'quick' (default) or 'full', from REPRO_BENCH_SCALE."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "quick").lower()
    return scale if scale in ("quick", "full") else "quick"


def pick_config(config_cls):
    """The preset matching the requested scale."""
    return config_cls.full() if bench_scale() == "full" else config_cls.quick()


@pytest.fixture
def record_experiment():
    """Save and print an ExperimentResult produced by a bench."""

    def _record(result, logy: bool = False) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = result.render(plot=True, logy=logy)
        (RESULTS_DIR / f"{result.experiment_id}.txt").write_text(text + "\n")
        print()
        print(text)

    return _record


def run_experiment(benchmark, module, config, record, logy=False):
    """Benchmark one driver invocation (single round: these are
    experiments, not microbenchmarks) and persist its artifact."""
    result = benchmark.pedantic(
        lambda: module.run(config), rounds=1, iterations=1
    )
    record(result, logy=logy)
    assert result.passed, f"{result.experiment_id} acceptance criterion failed"
    return result
