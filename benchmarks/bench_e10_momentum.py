"""E10 — regenerate the momentum tables from the Section 8 discussion.

(a) the implicit momentum of asynchronous SGD fitted against thread
count (the "asynchrony begets momentum" shape); (b) the lock-free
explicit-momentum variant converging under asynchrony.
"""

from conftest import pick_config, run_experiment

from repro.experiments import e10_momentum


def test_e10_momentum(benchmark, record_experiment):
    config = pick_config(e10_momentum.E10Config)
    run_experiment(benchmark, e10_momentum, config, record_experiment)
