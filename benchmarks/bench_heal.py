"""Cost of self-healing: detection overhead and rollback price.

Not a paper artifact — this pins what the heal layer costs:

* **detection overhead** — ``run_with_healing`` under the fault-free
  plan vs a plain ``run_fast`` of the same workload.  The delta is the
  chunking + detector-panel + checkpoint-capture tax paid even when
  nothing ever goes wrong.
* **rollback price** — the same workload under the ``nan-poison`` plan,
  where every corruption forces a detect → replay-restore → retry
  round trip.

Both land in ``benchmarks/results/BENCH_heal.json`` (CI uploads it as
an artifact) so the heal-path perf trajectory accumulates across PRs.
"""

import json
import pathlib
import time

import numpy as np

from repro.core.algorithm import build_zoo_simulation, get_algorithm
from repro.experiments.e14_resilience import heal_plan_specs
from repro.heal.rollback import run_with_healing
from repro.objectives.noise import GaussianNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.runtime.policy import TraceConfig
from repro.sched.registry import build_scheduler

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

DIM = 2
THREADS = 4
ITERATIONS = 200
STEP_SIZE = 0.05
SEED = 8000
ALGORITHM = "epoch-sgd"


def _objective() -> IsotropicQuadratic:
    return IsotropicQuadratic(dim=DIM, noise=GaussianNoise(0.2))


def _time_plain() -> dict:
    """Best-of-3 plain fast path — the no-healing baseline."""
    best = 0.0
    steps = 0
    for _ in range(3):
        sim, _model, _x0 = build_zoo_simulation(
            get_algorithm(ALGORITHM),
            _objective(),
            build_scheduler("random", seed=SEED),
            num_threads=THREADS,
            step_size=STEP_SIZE,
            iterations=ITERATIONS,
            x0=np.full(DIM, 2.0),
            seed=SEED,
            record_iterations=False,
            trace_config=TraceConfig.off(),
        )
        start = time.perf_counter()
        steps = sim.run_fast()
        elapsed = time.perf_counter() - start
        best = max(best, steps / elapsed)
    return {"steps": steps, "steps_per_sec": round(best, 1)}


def _time_healed(plan: str) -> dict:
    """Best-of-3 healed run under a named plan."""
    best = 0.0
    result = None
    for _ in range(3):
        start = time.perf_counter()
        result = run_with_healing(
            ALGORITHM,
            _objective(),
            heal_plan_specs()[plan],
            num_threads=THREADS,
            step_size=STEP_SIZE,
            iterations=ITERATIONS,
            x0=np.full(DIM, 2.0),
            seed=SEED,
        )
        elapsed = time.perf_counter() - start
        best = max(best, result.steps / elapsed)
    return {
        "steps": result.steps,
        "steps_per_sec": round(best, 1),
        "rollbacks": result.report.rollbacks,
        "health": result.report.health,
    }


def test_heal_overhead():
    """Healing finishes the workload under both plans; the overhead
    ratios land in BENCH_heal.json."""
    plain = _time_plain()
    fault_free = _time_healed("none")
    poisoned = _time_healed("nan-poison")

    assert plain["steps"] > 0
    assert fault_free["health"] == "healthy"
    assert poisoned["rollbacks"] >= 1, "nan-poison exercised no rollback"

    detection_overhead = plain["steps_per_sec"] / max(
        1e-9, fault_free["steps_per_sec"]
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "benchmark": "heal.steps_per_sec",
        "workload": (
            f"{ALGORITHM}, dim={DIM}, {THREADS} threads, T={ITERATIONS}, "
            "random adversary, chunked run_fast (check_interval=64)"
        ),
        "plain_run_fast": plain,
        "healed_fault_free": fault_free,
        "healed_nan_poison": poisoned,
        "detection_overhead_x": round(detection_overhead, 2),
        "unix_time": int(time.time()),
    }
    out = RESULTS_DIR / "BENCH_heal.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"\nplain: {plain['steps_per_sec']:,.0f} steps/s | "
        f"healed(fault-free): {fault_free['steps_per_sec']:,.0f} steps/s "
        f"({detection_overhead:.2f}x overhead) | "
        f"healed(nan-poison): {poisoned['steps_per_sec']:,.0f} steps/s, "
        f"{poisoned['rollbacks']} rollback(s)"
    )
