"""Regression bench: the null metrics backend must be free.

The observability layer's contract (DESIGN.md §13) is that an
uninstrumented run pays nothing: ``Simulator.run_fast`` keeps its elided
hot loop, per-step work is never metered, and attaching the
:data:`~repro.obs.registry.NULL` backend (or nothing at all) leaves
the steps/sec of the default EpochSGD + round-robin workload within
noise of the pre-obs baseline.

This bench pins that contract.  Three variants run interleaved (each
side takes its best over several rounds, so a noisy-neighbor window
penalizes all alike):

* ``bare``  — no ``attach_metrics`` call at all (the seed baseline);
* ``null``  — ``attach_metrics(NULL)`` (what library code passes when
  the CLI gave no ``--metrics``);
* ``live``  — a real :class:`~repro.obs.registry.MetricsRegistry`
  (bulk counters only; allowed a little slack but still cheap).

The measured numbers land in ``benchmarks/results/
BENCH_obs_overhead.json`` so the overhead trajectory accumulates
across PRs alongside BENCH_micro_substrate.json.
"""

import json
import pathlib
import time

import numpy as np

from repro.core.epoch_sgd import EpochSGDProgram
from repro.obs.registry import NULL, MetricsRegistry
from repro.objectives.noise import GaussianNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.runtime.policy import TraceConfig
from repro.runtime.simulator import Simulator
from repro.sched.round_robin import RoundRobinScheduler
from repro.shm.array import AtomicArray
from repro.shm.counter import AtomicCounter
from repro.shm.memory import SharedMemory

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Null-backend steps/sec must stay within this factor of the bare
#: baseline.  Generous to absorb CI jitter: the real bound is ~1.0 (the
#: hot loop is byte-identical; only setup differs by one attach call).
NULL_TOLERANCE = 0.85

#: A live registry meters nothing per step (bulk increments at run
#: exit), so even instrumented runs must stay close to bare.
LIVE_TOLERANCE = 0.70


def _workload() -> Simulator:
    """The BENCH_micro_substrate workload: 4 EpochSGD threads, dim=4,
    round-robin, tracing elided — run_fast's best case."""
    objective = IsotropicQuadratic(dim=4, noise=GaussianNoise(0.3))
    trace_config = TraceConfig.off()
    memory = SharedMemory(record_log=trace_config.record_log)
    model = AtomicArray.allocate(memory, objective.dim, name="model")
    model.load(np.full(objective.dim, 2.0))
    counter = AtomicCounter.allocate(memory, name="iteration_counter")
    sim = Simulator(
        memory, RoundRobinScheduler(), seed=1, trace_config=trace_config
    )
    for thread_index in range(4):
        sim.spawn(
            EpochSGDProgram(
                model=model,
                counter=counter,
                objective=objective,
                step_size=0.02,
                max_iterations=400,
                record_iterations=trace_config.record_iterations,
            ),
            name=f"worker-{thread_index}",
        )
    return sim


def _time_run(metrics) -> float:
    """One timed run_fast execution; returns steps/sec.  ``metrics`` is
    ``None`` (no attach at all), NULL, or a live registry."""
    sim = _workload()
    if metrics is not None:
        sim.attach_metrics(metrics)
    start = time.perf_counter()
    sim.run_fast()
    elapsed = time.perf_counter() - start
    return sim.now / elapsed


def test_null_metrics_backend_is_free():
    """run_fast steps/sec with the null backend stays within noise of
    the uninstrumented baseline; results land in BENCH_obs_overhead.json.
    """
    bare = 0.0
    null = 0.0
    live = 0.0
    for _ in range(5):
        bare = max(bare, _time_run(None))
        null = max(null, _time_run(NULL))
        live = max(live, _time_run(MetricsRegistry()))
    null_ratio = null / bare
    live_ratio = live / bare

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "benchmark": "obs_overhead.steps_per_sec",
        "workload": "EpochSGD x4 threads, dim=4, round-robin, T=400",
        "bare_steps_per_sec": round(bare, 1),
        "null_steps_per_sec": round(null, 1),
        "live_steps_per_sec": round(live, 1),
        "null_ratio": round(null_ratio, 3),
        "live_ratio": round(live_ratio, 3),
        "unix_time": int(time.time()),
    }
    out = RESULTS_DIR / "BENCH_obs_overhead.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"\nbare={bare:,.0f} steps/s  null={null:,.0f} steps/s "
        f"({null_ratio:.2f}x)  live={live:,.0f} steps/s ({live_ratio:.2f}x)"
    )
    assert null_ratio >= NULL_TOLERANCE, (
        f"null metrics backend must be within noise of uninstrumented "
        f"baseline: {null:,.0f} vs {bare:,.0f} steps/s "
        f"({null_ratio:.2f} < {NULL_TOLERANCE})"
    )
    assert live_ratio >= LIVE_TOLERANCE, (
        f"live registry (bulk counters only) costs too much: "
        f"{live:,.0f} vs {bare:,.0f} steps/s "
        f"({live_ratio:.2f} < {LIVE_TOLERANCE})"
    )
