"""E3 — regenerate the Lemma 6.2 table: good/bad iterations per window.

Classifies every Kn-start window of traces collected under the scheduler
gauntlet; zero windows with ≥ n bad completing iterations gate the bench.
"""

from conftest import pick_config, run_experiment

from repro.experiments import e3_good_bad


def test_e3_good_bad(benchmark, record_experiment):
    config = pick_config(e3_good_bad.E3Config)
    run_experiment(benchmark, e3_good_bad, config, record_experiment)
