"""E4 — regenerate the Lemma 6.4 table: indicator sums vs 2√(τ_max·n).

Measures Σ_m 1{τ_{t+m} ≥ m} on real delay sequences (benign and
adversarial); the bound holding on every trace gates the bench.
"""

from conftest import pick_config, run_experiment

from repro.experiments import e4_indicator_sum


def test_e4_indicator_sum(benchmark, record_experiment):
    config = pick_config(e4_indicator_sum.E4Config)
    run_experiment(benchmark, e4_indicator_sum, config, record_experiment)
