"""E8 — regenerate the Section 8 regime map and the τ_avg ≤ 2n table.

Sweeps the (α, τ) grid checking the lower-bound and upper-bound
preconditions never hold simultaneously, and measures average interval
contention against the Gibson–Gramoli 2n limit across schedulers.
"""

from conftest import pick_config, run_experiment

from repro.experiments import e8_tradeoff


def test_e8_tradeoff(benchmark, record_experiment):
    config = pick_config(e8_tradeoff.E8Config)
    run_experiment(benchmark, e8_tradeoff, config, record_experiment)
