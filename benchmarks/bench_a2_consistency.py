"""A2 — regenerate the price-of-consistency ablation table.

Consistent double-collect snapshot views vs Algorithm 1's inconsistent
entry-wise reads: steps per iteration, scan retries/fallbacks and final
accuracy across thread counts.
"""

from conftest import pick_config, run_experiment

from repro.experiments import a2_consistency


def test_a2_consistency(benchmark, record_experiment):
    config = pick_config(a2_consistency.A2Config)
    run_experiment(benchmark, a2_consistency, config, record_experiment)
