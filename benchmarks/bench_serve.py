"""Serving cost: request latency and cache hit vs miss throughput.

Not a paper artifact — this pins what the service shell adds on top of
the simulation cores:

* **request latency** — loadgen p50/p99 over a mixed submit/poll run
  against a live server (real child-process workers);
* **cache economics** — cold submissions (full compute) vs warm
  resubmissions (certified cache hits served without compute), the
  ratio being the whole point of fingerprint-keyed memoization;
* **endpoint overhead** — raw ``/healthz`` round trips per second, the
  floor the HTTP layer itself sets.

Lands in ``benchmarks/results/BENCH_serve.json`` (CI uploads it as an
artifact) so the serving-path perf trajectory accumulates across PRs.
"""

import asyncio
import json
import pathlib
import time

from repro.obs.registry import MetricsRegistry
from repro.serve.loadgen import LoadGenerator, LoadPlan, http_request
from repro.serve.server import JobServer
from repro.serve.supervisor import JobSupervisor, ServerPolicy

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

SPEC = {
    "kind": "chaos",
    "params": {"specs": ["none"], "seeds": 2, "iterations": 200},
}
COLD_JOBS = 3
WARM_HITS = 30
HEALTH_PINGS = 50


async def _bench(tmp_path: pathlib.Path) -> dict:
    metrics = MetricsRegistry()
    supervisor = JobSupervisor(
        ServerPolicy(workers=2, max_queue=16),
        workdir=tmp_path,
        metrics=metrics,
    )
    server = JobServer(supervisor, metrics=metrics)
    await server.start()
    try:
        # Mixed-load latency: distinct submits + duplicate flood + polls.
        generator = LoadGenerator(
            "127.0.0.1",
            server.port,
            LoadPlan(
                spec=SPEC, requests=COLD_JOBS, duplicates=4,
                malformed=0, slow_loris=0,
            ),
        )
        start = time.perf_counter()
        load = await generator.run_async()
        cold_elapsed = time.perf_counter() - start

        # Warm path: every submission is now a certified cache hit.
        start = time.perf_counter()
        warm_latencies = []
        for _ in range(WARM_HITS):
            t0 = time.perf_counter()
            status, _h, _d = await http_request(
                "127.0.0.1", server.port, "POST", "/jobs", body=SPEC
            )
            warm_latencies.append(time.perf_counter() - t0)
            assert status == 200
        warm_elapsed = time.perf_counter() - start

        start = time.perf_counter()
        for _ in range(HEALTH_PINGS):
            await http_request("127.0.0.1", server.port, "GET", "/healthz")
        health_elapsed = time.perf_counter() - start

        stats = supervisor.cache.stats()
        warm_latencies.sort()
        return {
            "benchmark": "serve.latency_and_cache",
            "workload": (
                f"chaos specs=['none'] seeds=2 T=200; {COLD_JOBS} cold + "
                f"{WARM_HITS} warm submissions, 2 workers"
            ),
            "mixed_load": {
                "requests": len(load.latencies),
                "latency_p50_s": round(load.percentile(0.50), 6),
                "latency_p99_s": round(load.percentile(0.99), 6),
                "jobs_done": load.jobs_done,
                "wall_s": round(cold_elapsed, 3),
            },
            "cache": {
                "cold_jobs_per_sec": round(COLD_JOBS / cold_elapsed, 2),
                "warm_hits_per_sec": round(WARM_HITS / warm_elapsed, 1),
                "warm_p50_s": round(
                    warm_latencies[len(warm_latencies) // 2], 6
                ),
                "warm_p99_s": round(warm_latencies[-1], 6),
                "hit_speedup_x": round(
                    (cold_elapsed / COLD_JOBS) / (warm_elapsed / WARM_HITS), 1
                ),
                "stats": stats,
            },
            "healthz_per_sec": round(HEALTH_PINGS / health_elapsed, 1),
            "loadgen_ok": load.ok,
        }
    finally:
        await server.stop()
        await asyncio.get_event_loop().run_in_executor(
            None, supervisor.drain
        )


def test_serve_latency_and_cache_throughput(tmp_path):
    """The server stays structured under the bench load; latency and
    cache hit/miss throughput land in BENCH_serve.json."""
    payload = asyncio.run(_bench(tmp_path))

    assert payload["loadgen_ok"], "bench load produced anomalies"
    assert payload["mixed_load"]["jobs_done"] == COLD_JOBS
    assert payload["cache"]["stats"]["hits"] >= WARM_HITS
    assert payload["cache"]["hit_speedup_x"] > 1.0

    payload["unix_time"] = int(time.time())
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_serve.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"\nmixed p50={payload['mixed_load']['latency_p50_s'] * 1e3:.1f}ms "
        f"p99={payload['mixed_load']['latency_p99_s'] * 1e3:.1f}ms | "
        f"warm hits {payload['cache']['warm_hits_per_sec']:,.0f}/s "
        f"({payload['cache']['hit_speedup_x']:.0f}x over cold) | "
        f"healthz {payload['healthz_per_sec']:,.0f}/s"
    )
