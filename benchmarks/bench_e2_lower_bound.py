"""E2 — regenerate the Theorem 5.1 figure: slowdown vs adversarial delay.

Sweeps the stale-gradient attack's delay τ and overlays the measured
slowdown on the predicted Ω(τ) line; linear shape and 2× agreement gate
the bench.
"""

from conftest import pick_config, run_experiment

from repro.experiments import e2_lower_bound


def test_e2_lower_bound(benchmark, record_experiment):
    config = pick_config(e2_lower_bound.E2Config)
    run_experiment(benchmark, e2_lower_bound, config, record_experiment)
