"""E9 — regenerate the staleness-aware-mitigation table.

Measures the related-work assertion "our lower bound applies to these
works as well": staleness-aware damping beats the weak adversary but the
fully adaptive adversary (freezing after the staleness observation)
restores the Ω(τ) slowdown.
"""

from conftest import pick_config, run_experiment

from repro.experiments import e9_staleness_aware


def test_e9_staleness_aware(benchmark, record_experiment):
    config = pick_config(e9_staleness_aware.E9Config)
    run_experiment(benchmark, e9_staleness_aware, config, record_experiment)
