"""Enumeration throughput and POR effectiveness of the verify tier.

Not a paper artifact — this pins the cost of exhaustive certification:
for each measured variant the full interleaving tree and the sleep-set
reduced walk are enumerated at the standard verify scope, recording
schedules/sec (re-execution backtracking makes nodes the unit of work,
so both rates are reported) and the reduction factor the pruning buys.
A separate pass measures what state-digest memoization adds on top of
the sleep sets.  Results land in ``benchmarks/results/BENCH_verify.json``
so the enumeration-perf trajectory accumulates across PRs.
"""

import json
import pathlib
import time

import numpy as np

from repro.objectives.noise import GaussianNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.core.algorithm import build_zoo_simulation
from repro.verify.engine import VerifyScope, _resolve_variant
from repro.verify.enumerator import enumerate_schedules

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

VARIANTS = ("epoch-sgd", "hogwild", "mutant-torn-counter")
SCOPE = VerifyScope(threads=2, iterations=1)
SEED = 1


def _factory_for(variant: str):
    algorithm, _expectation, override = _resolve_variant(variant)
    iterations = max(SCOPE.iterations, override or 0)
    objective = IsotropicQuadratic(
        dim=SCOPE.dim, noise=GaussianNoise(SCOPE.noise_sigma)
    )

    def factory(scheduler):
        sim, _model, _x0 = build_zoo_simulation(
            algorithm,
            objective,
            scheduler,
            num_threads=SCOPE.threads,
            step_size=SCOPE.step_size,
            iterations=iterations,
            x0=np.full(SCOPE.dim, SCOPE.x0_scale),
            seed=SEED,
            record_log=True,
            record_iterations=True,
        )
        return sim

    return factory


def _time_enumeration(factory, por, memoize=False):
    """Best-of-3 enumeration rate for one (variant, mode) pair."""
    best = None
    stats = None
    for _ in range(3):
        start = time.perf_counter()
        result = enumerate_schedules(
            factory, max_steps=SCOPE.max_steps, por=por, memoize=memoize
        )
        elapsed = time.perf_counter() - start
        stats = result.stats
        if best is None or elapsed < best:
            best = elapsed
    return {
        "schedules": stats.schedules,
        "nodes": stats.nodes,
        "steps": stats.steps,
        "sleep_skips": stats.sleep_skips,
        "memo_skips": stats.memo_skips,
        "schedules_per_sec": round(stats.schedules / best, 1),
        "nodes_per_sec": round(stats.nodes / best, 1),
        "seconds": round(best, 4),
    }


def test_verify_enumeration_throughput():
    """Every measured variant enumerates exhaustively at scope; the
    rates and POR reduction factors land in BENCH_verify.json."""
    variants = {}
    for variant in VARIANTS:
        factory = _factory_for(variant)
        por = _time_enumeration(factory, por=True)
        full = _time_enumeration(factory, por=False)
        memo = _time_enumeration(factory, por=True, memoize=True)
        assert por["schedules"] > 0, f"{variant} enumerated no schedules"
        reduction = round(full["schedules"] / por["schedules"], 2)
        assert reduction >= 2.0, (
            f"{variant}: POR reduction {reduction}x below the 2x floor"
        )
        variants[variant] = {
            "por": por,
            "full": full,
            "por_memo": memo,
            "reduction_factor": reduction,
        }

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "benchmark": "verify.enumeration",
        "workload": (
            f"dim={SCOPE.dim}, {SCOPE.threads} threads, "
            f"T={SCOPE.iterations}, max_steps={SCOPE.max_steps}, "
            "re-execution DFS (one fresh sim per node)"
        ),
        "variants": variants,
        "unix_time": int(time.time()),
    }
    out = RESULTS_DIR / "BENCH_verify.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    lines = [
        (
            f"{name}: {data['por']['schedules']} schedules "
            f"({data['por']['schedules_per_sec']:,.0f}/s) vs "
            f"{data['full']['schedules']} full — {data['reduction_factor']}x"
        )
        for name, data in variants.items()
    ]
    print("\n" + "\n".join(lines))
