"""Throughput of every registered zoo algorithm on the fast path.

Not a paper artifact — this pins the cost of the ``Algorithm`` seam:
each registered variant runs its standard workload through
``Simulator.run_fast()`` (tracing elided, no iteration records) and the
measured steps/sec land in ``benchmarks/results/BENCH_zoo.json`` so the
per-variant perf trajectory accumulates across PRs (CI uploads the file
as an artifact).  Relative numbers are the interesting part: locked
spends steps spinning, leashed re-CASes, so their steps/sec buys fewer
iterations — the report records both rates.
"""

import json
import pathlib
import time

import numpy as np

from repro.core.algorithm import algorithm_names, build_zoo_simulation, get_algorithm
from repro.objectives.noise import GaussianNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.runtime.policy import TraceConfig
from repro.sched.round_robin import RoundRobinScheduler

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

DIM = 4
THREADS = 4
ITERATIONS = 400
STEP_SIZE = 0.05
SEED = 11


def _time_algorithm(name: str) -> dict:
    """Best-of-3 fast-path rate for one algorithm's standard workload."""
    best_steps_per_sec = 0.0
    steps = 0
    for _ in range(3):
        objective = IsotropicQuadratic(dim=DIM, noise=GaussianNoise(0.2))
        sim, _model, _x0 = build_zoo_simulation(
            get_algorithm(name),
            objective,
            RoundRobinScheduler(),
            num_threads=THREADS,
            step_size=STEP_SIZE,
            iterations=ITERATIONS,
            x0=np.full(DIM, 2.0),
            seed=SEED,
            record_iterations=False,
            trace_config=TraceConfig.off(),
        )
        start = time.perf_counter()
        steps = sim.run_fast()
        elapsed = time.perf_counter() - start
        best_steps_per_sec = max(best_steps_per_sec, steps / elapsed)
    return {
        "steps": steps,
        "steps_per_sec": round(best_steps_per_sec, 1),
        "iterations_per_sec": round(
            best_steps_per_sec * ITERATIONS / max(1, steps), 1
        ),
    }


def test_zoo_throughput():
    """Every registered algorithm completes its fast-path workload; the
    per-variant rates land in BENCH_zoo.json."""
    rates = {name: _time_algorithm(name) for name in algorithm_names()}
    for name, rate in rates.items():
        assert rate["steps"] > 0, f"{name} took no steps"

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "benchmark": "zoo.steps_per_sec",
        "workload": (
            f"dim={DIM}, {THREADS} threads, T={ITERATIONS}, round-robin, "
            "run_fast (tracing elided, no iteration records)"
        ),
        "algorithms": rates,
        "unix_time": int(time.time()),
    }
    out = RESULTS_DIR / "BENCH_zoo.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    lines = [
        f"{name}: {rate['steps_per_sec']:,.0f} steps/s ({rate['steps']} steps)"
        for name, rate in rates.items()
    ]
    print("\n" + "\n".join(lines))
