"""Micro-benchmarks of the substrate itself.

Not a paper artifact — these track the throughput of the simulator's hot
paths (atomic ops, scheduler rounds, whole SGD iterations) so substrate
regressions show up in the bench suite.  These use pytest-benchmark's
normal repeated-rounds mode, unlike the single-shot experiment benches.

``test_steps_per_sec_tracing_elided_vs_full`` additionally records the
two-tier engine's headline number — steps/sec on the default EpochSGD +
round-robin workload with full tracing vs tracing elided — into
``benchmarks/results/BENCH_micro_substrate.json`` so the perf trajectory
accumulates across PRs (CI uploads the file as an artifact).
"""

import json
import pathlib
import time

import numpy as np

from repro.core.epoch_sgd import EpochSGDProgram, run_lock_free_sgd
from repro.objectives.noise import GaussianNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.runtime.policy import TraceConfig
from repro.runtime.program import FunctionProgram
from repro.runtime.simulator import Simulator
from repro.sched.random_sched import RandomScheduler
from repro.sched.round_robin import RoundRobinScheduler
from repro.shm.array import AtomicArray
from repro.shm.counter import AtomicCounter
from repro.shm.memory import SharedMemory
from repro.shm.ops import FetchAdd, Read

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def test_memory_fetch_add_throughput(benchmark):
    memory = SharedMemory(record_log=False)
    base = memory.allocate(1)
    op = FetchAdd(base, 1.0)

    def run():
        for _ in range(1000):
            memory.execute(op)

    benchmark(run)


def test_memory_read_throughput_with_log(benchmark):
    memory = SharedMemory(record_log=True)
    base = memory.allocate(1)
    op = Read(base)

    def run():
        for _ in range(1000):
            memory.execute(op)
        memory.log.clear()

    benchmark(run)


def test_simulator_step_throughput(benchmark):
    def run():
        memory = SharedMemory(record_log=False)
        counter = AtomicCounter.allocate(memory)
        sim = Simulator(memory, RoundRobinScheduler())

        def loop(ctx):
            for _ in range(500):
                yield counter.increment_op()

        for _ in range(4):
            sim.spawn(FunctionProgram(loop))
        sim.run()
        return sim.now

    assert benchmark(run) == 2000


def test_lock_free_sgd_iteration_throughput(benchmark):
    objective = IsotropicQuadratic(dim=4, noise=GaussianNoise(0.3))
    x0 = np.full(4, 2.0)

    def run():
        return run_lock_free_sgd(
            objective, RandomScheduler(seed=1), num_threads=4,
            step_size=0.02, iterations=200, x0=x0, seed=1,
        ).iterations

    assert benchmark(run) == 200


def _epoch_sgd_simulator(trace_config: TraceConfig) -> Simulator:
    """The default Algorithm-1 workload: 4 EpochSGD threads over a
    4-dim quadratic under round-robin scheduling."""
    objective = IsotropicQuadratic(dim=4, noise=GaussianNoise(0.3))
    memory = SharedMemory(record_log=trace_config.record_log)
    model = AtomicArray.allocate(memory, objective.dim, name="model")
    model.load(np.full(objective.dim, 2.0))
    counter = AtomicCounter.allocate(memory, name="iteration_counter")
    sim = Simulator(
        memory, RoundRobinScheduler(), seed=1, trace_config=trace_config
    )
    for thread_index in range(4):
        sim.spawn(
            EpochSGDProgram(
                model=model,
                counter=counter,
                objective=objective,
                step_size=0.02,
                max_iterations=400,
                record_iterations=trace_config.record_iterations,
            ),
            name=f"worker-{thread_index}",
        )
    return sim


def _time_run(trace_config: TraceConfig) -> float:
    """One timed execution of the workload; returns steps/sec."""
    sim = _epoch_sgd_simulator(trace_config)
    start = time.perf_counter()
    sim.run_fast()
    elapsed = time.perf_counter() - start
    return sim.now / elapsed


def test_steps_per_sec_tracing_elided_vs_full():
    """Two-tier engine headline: eliding tracing on the default EpochSGD +
    round-robin workload must be >= 2x full tracing, and the measured
    steps/sec land in BENCH_micro_substrate.json for the perf trajectory.

    Traced and elided runs are interleaved (and each side takes its best)
    so a transient noisy-neighbor window penalizes both sides alike
    instead of skewing the ratio.
    """
    traced = 0.0
    elided = 0.0
    for _ in range(5):
        traced = max(traced, _time_run(TraceConfig.full()))
        elided = max(elided, _time_run(TraceConfig.off()))
    speedup = elided / traced

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "benchmark": "micro_substrate.steps_per_sec",
        "workload": "EpochSGD x4 threads, dim=4, round-robin, T=400",
        "traced_steps_per_sec": round(traced, 1),
        "elided_steps_per_sec": round(elided, 1),
        "speedup": round(speedup, 2),
        "unix_time": int(time.time()),
    }
    out = RESULTS_DIR / "BENCH_micro_substrate.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\ntraced={traced:,.0f} steps/s  elided={elided:,.0f} steps/s  "
          f"speedup={speedup:.2f}x")
    assert speedup >= 2.0, (
        f"elided tracing must be >= 2x full tracing, got {speedup:.2f}x "
        f"({traced:,.0f} vs {elided:,.0f} steps/s)"
    )
