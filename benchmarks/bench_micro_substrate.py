"""Micro-benchmarks of the substrate itself.

Not a paper artifact — these track the throughput of the simulator's hot
paths (atomic ops, scheduler rounds, whole SGD iterations) so substrate
regressions show up in the bench suite.  These use pytest-benchmark's
normal repeated-rounds mode, unlike the single-shot experiment benches.
"""

import numpy as np

from repro.core.epoch_sgd import run_lock_free_sgd
from repro.objectives.noise import GaussianNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.runtime.program import FunctionProgram
from repro.runtime.simulator import Simulator
from repro.sched.random_sched import RandomScheduler
from repro.sched.round_robin import RoundRobinScheduler
from repro.shm.counter import AtomicCounter
from repro.shm.memory import SharedMemory
from repro.shm.ops import FetchAdd, Read


def test_memory_fetch_add_throughput(benchmark):
    memory = SharedMemory(record_log=False)
    base = memory.allocate(1)
    op = FetchAdd(base, 1.0)

    def run():
        for _ in range(1000):
            memory.execute(op)

    benchmark(run)


def test_memory_read_throughput_with_log(benchmark):
    memory = SharedMemory(record_log=True)
    base = memory.allocate(1)
    op = Read(base)

    def run():
        for _ in range(1000):
            memory.execute(op)
        memory.log.clear()

    benchmark(run)


def test_simulator_step_throughput(benchmark):
    def run():
        memory = SharedMemory(record_log=False)
        counter = AtomicCounter.allocate(memory)
        sim = Simulator(memory, RoundRobinScheduler())

        def loop(ctx):
            for _ in range(500):
                yield counter.increment_op()

        for _ in range(4):
            sim.spawn(FunctionProgram(loop))
        sim.run()
        return sim.now

    assert benchmark(run) == 2000


def test_lock_free_sgd_iteration_throughput(benchmark):
    objective = IsotropicQuadratic(dim=4, noise=GaussianNoise(0.3))
    x0 = np.full(4, 2.0)

    def run():
        return run_lock_free_sgd(
            objective, RandomScheduler(seed=1), num_threads=4,
            step_size=0.02, iterations=200, x0=x0, seed=1,
        ).iterations

    assert benchmark(run) == 200
