"""Integration tests across subsystems.

These exercise the full pipeline (objective -> programs -> simulator ->
scheduler -> records -> contention/convergence analysis) the way the
examples and benchmarks do.
"""


import numpy as np

from repro.core.epoch_sgd import run_lock_free_sgd
from repro.core.full_sgd import FullSGD
from repro.objectives.datasets import make_regression
from repro.objectives.least_squares import LeastSquares
from repro.objectives.logistic import LogisticRegression
from repro.objectives.datasets import make_classification
from repro.objectives.noise import GaussianNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.objectives.sparse import SeparableQuadratic
from repro.sched.crash import CrashPlan, CrashScheduler
from repro.sched.random_sched import RandomScheduler
from repro.sched.round_robin import RoundRobinScheduler
from repro.theory.bounds import corollary_6_7_failure_bound
from repro.theory.contention import tau_avg, tau_max


class TestWorkloads:
    def test_least_squares_lock_free_recovers_solution(self):
        design, targets, _ = make_regression(50, 3, noise_sigma=0.05, seed=1)
        objective = LeastSquares(design, targets)
        result = run_lock_free_sgd(
            objective, RandomScheduler(seed=2), num_threads=4,
            step_size=0.01, iterations=4000,
            x0=np.zeros(3), seed=2,
        )
        assert objective.distance_to_opt(result.x_final) < 0.4

    def test_logistic_lock_free_decreases_loss(self):
        design, labels, _ = make_classification(60, 3, seed=4)
        objective = LogisticRegression(design, labels, regularization=0.2)
        x0 = np.zeros(3)
        result = run_lock_free_sgd(
            objective, RandomScheduler(seed=5), num_threads=3,
            step_size=0.05, iterations=2000, x0=x0, seed=5,
        )
        assert objective.value(result.x_final) < objective.value(x0)
        assert objective.distance_to_opt(result.x_final) < 0.5

    def test_sparse_oracle_first_update_order_is_total(self):
        objective = SeparableQuadratic(np.ones(4))
        result = run_lock_free_sgd(
            objective, RandomScheduler(seed=6), num_threads=4,
            step_size=0.05, iterations=200, x0=np.ones(4), seed=6,
        )
        orders = [r.order_time for r in result.records]
        assert len(set(orders)) == len(orders)


class TestDeterminism:
    def test_identical_seeds_identical_everything(self, quadratic_noisy,
                                                  x0_small):
        def run_once():
            return run_lock_free_sgd(
                quadratic_noisy, RandomScheduler(seed=9), num_threads=4,
                step_size=0.05, iterations=150, x0=x0_small, seed=9,
            )

        a, b = run_once(), run_once()
        np.testing.assert_array_equal(a.x_final, b.x_final)
        np.testing.assert_array_equal(a.distances, b.distances)
        assert a.sim_steps == b.sim_steps
        assert [r.sample is not None for r in a.records] == [
            r.sample is not None for r in b.records
        ]

    def test_different_scheduler_seed_changes_interleaving(
        self, quadratic_noisy, x0_small
    ):
        a = run_lock_free_sgd(
            quadratic_noisy, RandomScheduler(seed=1), num_threads=4,
            step_size=0.05, iterations=150, x0=x0_small, seed=9,
        )
        b = run_lock_free_sgd(
            quadratic_noisy, RandomScheduler(seed=2), num_threads=4,
            step_size=0.05, iterations=150, x0=x0_small, seed=9,
        )
        assert not np.array_equal(a.x_final, b.x_final)


class TestCrashTolerance:
    def test_lock_free_progress_despite_crashes(self, quadratic_noisy,
                                                x0_small):
        """Algorithm 1 is lock-free: crash n-1 threads mid-update and the
        survivor still completes the whole iteration budget."""
        scheduler = CrashScheduler(
            RandomScheduler(seed=3),
            [
                CrashPlan(thread_id=1, after_steps=7),
                CrashPlan(thread_id=2, after_steps=11),
                CrashPlan(thread_id=3, after_steps=13),
            ],
        )
        result = run_lock_free_sgd(
            quadratic_noisy, scheduler, num_threads=4, step_size=0.05,
            iterations=120, x0=x0_small, seed=3, epsilon=0.25,
        )
        # The crashed threads abandoned claimed iterations, so fewer than
        # T complete, but the run must quiesce and still converge.
        assert result.iterations >= 120 - 3
        assert result.succeeded

    def test_crashed_mid_update_leaves_partial_but_valid_memory(
        self, quadratic_clean, x0_small
    ):
        """A thread crashed between component fetch&adds leaves a torn
        update — legal in the model; memory history stays consistent."""
        scheduler = CrashScheduler(
            RandomScheduler(seed=4), [CrashPlan(thread_id=0, after_steps=9)]
        )
        result = run_lock_free_sgd(
            quadratic_clean, scheduler, num_threads=2, step_size=0.05,
            iterations=40, x0=x0_small, seed=4, record_memory_log=True,
        )
        assert result.iterations <= 40


class TestAnalysisPipeline:
    def test_bound_inputs_from_measured_contention(self, quadratic_noisy,
                                                   x0_small):
        """The full Cor 6.7 workflow: run, measure tau_max, evaluate the
        bound, check the run is consistent with it."""
        epsilon = 0.3
        result = run_lock_free_sgd(
            quadratic_noisy, RandomScheduler(seed=11), num_threads=4,
            step_size=0.01, iterations=2500, x0=x0_small, seed=11,
            epsilon=epsilon,
        )
        measured_tau = tau_max(result.records)
        assert measured_tau >= 1
        assert tau_avg(result.records) <= 8  # 2n
        bound = corollary_6_7_failure_bound(
            iterations=2500,
            epsilon=epsilon,
            strong_convexity=quadratic_noisy.strong_convexity,
            second_moment=quadratic_noisy.second_moment_bound(
                2 * quadratic_noisy.distance_to_opt(x0_small)
            ),
            lipschitz=quadratic_noisy.lipschitz_expected,
            tau_max=measured_tau,
            num_threads=4,
            dim=2,
            x0_distance=quadratic_noisy.distance_to_opt(x0_small),
        )
        # Single run: it either hit (bound trivially consistent) or the
        # bound must be large enough to allow one failure.
        assert result.succeeded or bound > 0

    def test_memory_log_replay_of_full_run(self, quadratic_noisy, x0_small):
        result = run_lock_free_sgd(
            quadratic_noisy, RoundRobinScheduler(), num_threads=3,
            step_size=0.05, iterations=30, x0=x0_small, seed=12,
            record_memory_log=True,
        )
        assert result.iterations == 30

    def test_full_sgd_beats_algorithm1_final_accuracy(self):
        """At matched iteration budgets and alpha0, the halving schedule
        lands (much) closer to x* on a noisy problem."""
        objective = IsotropicQuadratic(dim=2, noise=GaussianNoise(0.5))
        x0 = np.array([2.0, -2.0])
        driver = FullSGD(
            objective, num_threads=3, epsilon=0.01, alpha0=0.1,
            iterations_per_epoch=300, x0=x0,
        )
        budget = driver.num_epochs * 300

        def full_distance(seed):
            return driver.run(RandomScheduler(seed=seed), seed=seed).distance

        def flat_distance(seed):
            result = run_lock_free_sgd(
                objective, RandomScheduler(seed=seed), num_threads=3,
                step_size=0.1, iterations=budget, x0=x0, seed=seed,
            )
            return objective.distance_to_opt(result.x_final)

        full = np.mean([full_distance(s) for s in range(5)])
        flat = np.mean([flat_distance(s) for s in range(5)])
        assert full < flat
