"""Tests for plog (incl. property-based) and the rate supermartingale."""

import math

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.errors import ConfigurationError
from repro.objectives.noise import GaussianNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.theory.martingale import ConvexRateSupermartingale, estimate_drift
from repro.theory.plog import plog


class TestPlogUnit:
    def test_branch_values(self):
        assert plog(1.0) == pytest.approx(1.0)
        assert plog(math.e) == pytest.approx(2.0)
        assert plog(0.5) == 0.5
        assert plog(0.0) == 0.0
        assert plog(-2.0) == -2.0

    def test_array_input(self):
        values = np.array([0.5, 1.0, math.e])
        np.testing.assert_allclose(plog(values), [0.5, 1.0, 2.0])

    def test_scalar_returns_float(self):
        assert isinstance(plog(2.0), float)


positive = st.floats(min_value=1e-6, max_value=1e6, allow_nan=False)


class TestPlogProperties:
    @given(x=positive)
    @settings(max_examples=300, deadline=None)
    def test_continuous_and_below_identity(self, x):
        # plog(x) <= x for x >= 0 (equality only at branch point region).
        assert plog(x) <= x + 1e-12

    @given(x=positive, y=positive)
    @settings(max_examples=300, deadline=None)
    def test_monotone(self, x, y):
        lo, hi = min(x, y), max(x, y)
        assert plog(lo) <= plog(hi) + 1e-12

    @given(x=st.floats(min_value=1.0, max_value=1e6))
    @settings(max_examples=200, deadline=None)
    def test_log_branch(self, x):
        assert plog(x) == pytest.approx(1.0 + math.log(x))

    @given(
        x=positive, y=positive,
        lam=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=300, deadline=None)
    def test_concave(self, x, y, lam):
        mid = lam * x + (1 - lam) * y
        assert plog(mid) >= lam * plog(x) + (1 - lam) * plog(y) - 1e-9


class TestSupermartingale:
    def make(self, epsilon=0.5, alpha=None, sigma=0.5, dim=2):
        objective = IsotropicQuadratic(dim=dim, noise=GaussianNoise(sigma))
        c = objective.strong_convexity
        second_moment = objective.second_moment_bound(4.0)
        if alpha is None:
            alpha = c * epsilon / second_moment
        process = ConvexRateSupermartingale(
            epsilon=epsilon,
            alpha=alpha,
            strong_convexity=c,
            second_moment=second_moment,
            x_star=objective.x_star,
        )
        return objective, process

    def test_requires_small_alpha(self):
        with pytest.raises(ConfigurationError):
            ConvexRateSupermartingale(
                epsilon=0.5, alpha=1.0, strong_convexity=1.0,
                second_moment=100.0, x_star=np.zeros(1),
            )

    def test_horizon_infinite(self):
        _, process = self.make()
        assert process.horizon == math.inf

    def test_failure_implies_wt_at_least_t(self):
        """Definition 6.1's second condition: W_T >= T while outside S."""
        _, process = self.make()
        outside = np.array([2.0, 2.0])  # ||x||^2 = 8 > eps
        for t in (0, 10, 500):
            assert process.value(t, outside) >= t

    def test_lipschitz_constant_formula(self):
        _, process = self.make(epsilon=0.5)
        normalizer = (
            2 * process.alpha * process.strong_convexity * 0.5
            - process.alpha**2 * process.second_moment
        )
        assert process.lipschitz_constant == pytest.approx(
            2 * math.sqrt(0.5) / normalizer
        )

    def test_lipschitz_property_empirically(self):
        _, process = self.make()
        rng = np.random.default_rng(0)
        H = process.lipschitz_constant
        for _ in range(200):
            u = rng.normal(size=2) * 3
            v = rng.normal(size=2) * 3
            gap = abs(process.value(5, u) - process.value(5, v))
            assert gap <= H * np.linalg.norm(u - v) + 1e-9

    @pytest.mark.parametrize("scale", [1.2, 2.0, 4.0])
    def test_drift_nonpositive_outside_success_region(self, scale):
        """The supermartingale inequality (Definition 6.1, Eq. 6),
        verified by Monte Carlo at points outside S."""
        objective, process = self.make()
        point = np.array([1.0, 1.0]) * scale
        drift = estimate_drift(process, objective, point, t=3,
                               num_samples=4000, seed=1)
        # Allow CLT slack: drift must not be significantly positive.
        assert drift <= 0.05

    def test_initial_value_bound_formula(self):
        _, process = self.make(epsilon=0.5)
        x0 = np.array([3.0, 0.0])
        normalizer = (
            2 * process.alpha * process.strong_convexity * 0.5
            - process.alpha**2 * process.second_moment
        )
        expected = 0.5 / normalizer * plog(math.e * 9.0 / 0.5)
        assert process.initial_value_bound(x0) == pytest.approx(expected)

    def test_in_success_region(self):
        _, process = self.make(epsilon=1.0)
        assert process.in_success_region(np.array([0.5, 0.5]))
        assert not process.in_success_region(np.array([1.0, 1.0]))
