"""The pinned chaos acceptance property (ISSUE 9): under the loadgen
fault mix — worker SIGKILLs, duplicate floods, malformed specs,
slow-loris connections — a real server (child processes and all)
returns only structured outcomes, the certified cache never serves a
report differing from a cold fixed-seed run, and drain leaves a journal
from which ``--resume`` reproduces the interrupted job's report
byte-identically."""

import asyncio
import json
import time

from repro.cli import main
from repro.serve.loadgen import LoadGenerator, LoadPlan, http_request
from repro.serve.server import JobServer
from repro.serve.specs import execute_spec, parse_job_spec, result_digest
from repro.serve.supervisor import JobSupervisor, ServerPolicy


def _run_server(tmp_path, policy, test):
    """Run ``await test(server, supervisor)`` against a real server
    (ProcessJobRunner, workdir-backed journal + cache)."""

    async def go():
        supervisor = JobSupervisor(policy, workdir=tmp_path / "serve")
        server = JobServer(supervisor)
        await server.start()
        try:
            await test(server, supervisor)
        finally:
            await server.stop()
            await asyncio.get_event_loop().run_in_executor(
                None, supervisor.drain
            )

    asyncio.run(go())


class TestChaosAcceptance:
    def test_fault_mix_structured_outcomes_and_certified_cache(
        self, tmp_path
    ):
        spec = {
            "kind": "chaos",
            "params": {"specs": ["none"], "seeds": 4, "iterations": 3000},
        }
        plan = LoadPlan(
            spec=spec,
            requests=2,
            duplicates=4,
            malformed=3,
            slow_loris=2,
            kill_workers=1,
            poll_interval=0.05,
            deadline=120.0,
        )
        reports = {}

        async def test(server, supervisor):
            generator = LoadGenerator("127.0.0.1", server.port, plan)
            reports["load"] = await generator.run_async()
            # Server must still be healthy after the whole mix.
            status, _h, data = await http_request(
                "127.0.0.1", server.port, "GET", "/healthz"
            )
            reports["health"] = (status, json.loads(data))

        _run_server(
            tmp_path,
            ServerPolicy(workers=2, max_queue=8, read_timeout=0.5),
            test,
        )
        report = reports["load"]
        # 1. Structured outcomes only: no hangs, no surprise statuses.
        assert report.ok, report.render()
        assert report.statuses.get(400, 0) == plan.malformed
        # 2. Every submitted job finished despite the worker SIGKILL
        #    (crash -> respawn -> journal resume).
        assert report.jobs_done == plan.requests
        assert report.jobs_failed == 0
        # 3. Certified cache: server results byte-identical to a cold
        #    in-process run of the same fixed-seed spec.
        parsed = parse_job_spec(spec)
        cold = execute_spec(spec)
        status, health = reports["health"]
        assert status == 200 and health["status"] == "ok"
        cache_file = (
            tmp_path / "serve" / "cache" / f"{parsed.fingerprint}.json"
        )
        entry = json.loads(cache_file.read_text())
        assert entry["result"] == cold
        assert entry["digest"] == result_digest(cold)

    def test_drain_leaves_resumable_journal_and_503s_new_work(
        self, tmp_path
    ):
        spec = {
            "kind": "chaos",
            "params": {"specs": ["none"], "seeds": 6, "iterations": 5000},
        }
        outcome = {}

        async def test(server, supervisor):
            _s, _h, data = await http_request(
                "127.0.0.1", server.port, "POST", "/jobs", body=spec
            )
            job_id = json.loads(data)["job"]["id"]
            # Wait for real progress so the journal holds a partial.
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                _s, _h, progress = await http_request(
                    "127.0.0.1", server.port, "GET",
                    f"/jobs/{job_id}/progress",
                )
                if json.loads(progress).get("cells_completed", 0) >= 1:
                    break
                await asyncio.sleep(0.05)
            # SIGTERM-equivalent: drain stops the worker at a safe point.
            await asyncio.get_event_loop().run_in_executor(
                None, supervisor.drain
            )
            status, _h, data = await http_request(
                "127.0.0.1", server.port, "GET", f"/jobs/{job_id}"
            )
            outcome["job"] = json.loads(data)["job"]
            # Queued submissions now get a structured 503, not silence.
            status503, _h, _d = await http_request(
                "127.0.0.1", server.port, "POST", "/jobs",
                body={"kind": "chaos", "params": {"specs": ["none"]}},
            )
            outcome["post_drain_status"] = status503

        _run_server(tmp_path, ServerPolicy(workers=1), test)
        job = outcome["job"]
        assert outcome["post_drain_status"] == 503
        assert job["state"] == "interrupted", job
        journal_path = job["journal"]
        # The journal resumes OUTSIDE the server, through the same
        # fingerprint the CLI computes, to the byte-identical report.
        from repro.durable.journal import RunJournal
        from repro.faults.campaign import run_campaign
        from repro.serve.specs import _chaos_config, journal_fingerprint

        parsed = parse_job_spec(spec)
        journal = RunJournal.open(
            journal_path, journal_fingerprint(parsed), resume=True
        )
        assert journal.total_completed >= 1  # the partial is real
        resumed = run_campaign(_chaos_config(parsed.params), journal=journal)
        journal.close()
        cold = run_campaign(_chaos_config(parsed.params))
        assert resumed.to_json() == cold.to_json()


class TestLoadtestCli:
    def test_self_hosted_loadtest_exit_zero_and_report(self, tmp_path, capsys):
        code = main(
            [
                "loadtest", "--self-host",
                "--workdir", str(tmp_path / "lt"),
                "--requests", "1", "--duplicates", "2",
                "--malformed", "2", "--slow-loris", "1",
                "--iterations", "60",
                "--out", str(tmp_path / "out"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict: PASS" in out
        summary = json.loads(
            (tmp_path / "out" / "loadtest_report.json").read_text()
        )
        assert summary["ok"] is True
        assert summary["statuses"].get("400") == 2


class TestCausalTraceAcceptance:
    """Acceptance (ISSUE 10): a job that crashes once and resumes
    produces ONE stitched Perfetto trace — request, admission, both
    attempts, worker spans, ensemble chunks — connected by flow events,
    plus a non-empty flight-recorder dump for the crashed attempt."""

    def test_crashed_and_resumed_job_yields_one_stitched_trace(
        self, tmp_path
    ):
        import os
        import signal

        from repro.obs.causal import span_id

        spec = {
            "kind": "chaos",
            "params": {"specs": ["none"], "seeds": 4, "iterations": 3000},
        }
        outcome = {}

        async def test(server, supervisor):
            _s, _h, data = await http_request(
                "127.0.0.1", server.port, "POST", "/jobs", body=spec
            )
            job = json.loads(data)["job"]
            outcome["trace_id"] = job["trace"]
            # Let the first attempt make real progress, then SIGKILL it.
            deadline = time.monotonic() + 60.0
            pid = None
            while time.monotonic() < deadline and pid is None:
                _s, _h, health = await http_request(
                    "127.0.0.1", server.port, "GET", "/healthz"
                )
                _s2, _h2, progress = await http_request(
                    "127.0.0.1", server.port, "GET",
                    f"/jobs/{job['id']}/progress",
                )
                cells = json.loads(progress).get("cells_completed", 0)
                workers = json.loads(health)["workers"]
                if cells >= 1 and workers:
                    pid = workers[0]["pid"]
                    break
                await asyncio.sleep(0.05)
            assert pid is not None, "worker never started making progress"
            os.kill(pid, signal.SIGKILL)
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                _s, _h, data = await http_request(
                    "127.0.0.1", server.port, "GET", f"/jobs/{job['id']}"
                )
                view = json.loads(data)["job"]
                if view["state"] in ("done", "failed"):
                    break
                await asyncio.sleep(0.05)
            outcome["job"] = view
            _s, _h, stitched = await http_request(
                "127.0.0.1", server.port, "GET", f"/jobs/{job['id']}/trace"
            )
            assert _s == 200
            outcome["trace"] = json.loads(stitched)

        _run_server(tmp_path, ServerPolicy(workers=1), test)
        job = outcome["job"]
        assert job["state"] == "done", job
        assert job["attempts"] == 2  # exactly one crash + one resume
        tid = outcome["trace_id"]
        events = outcome["trace"]["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        names = {e["name"] for e in complete}
        assert {"serve.request", "serve.admission", "serve.attempt",
                "worker.run"} <= names
        assert names & {"ensemble.seed", "ensemble.chunk"}
        attempts = sorted(
            e["args"]["key"] for e in complete if e["name"] == "serve.attempt"
        )
        assert attempts == ["attempt-1", "attempt-2"]
        # Flow arrows connect the retry chain: attempt-2 is flow-linked
        # from attempt-1, and the resumed worker.run from attempt-2.
        for name, key in (("serve.attempt", "attempt-2"),
                          ("worker.run", "attempt-2")):
            dest = span_id(tid, name, key)
            assert any(e["ph"] == "s" and e["id"] == dest for e in events)
            assert any(e["ph"] == "f" and e["id"] == dest for e in events)
        # The crashed attempt left a flight-recorder dump whose
        # deterministic section records the escalation.
        jobdir = tmp_path / "serve" / "jobs" / job["id"]
        dump_path = jobdir / "flight-supervisor-attempt-1.json"
        assert dump_path.exists()
        dump = json.loads(dump_path.read_text())
        assert dump["reason"] == "retry-escalation"
        assert dump["events"], "deterministic section must be non-empty"
        retries = [e for e in dump["events"] if e["name"] == "serve.retry"]
        assert retries and retries[0]["args"]["status"] == "crash"
