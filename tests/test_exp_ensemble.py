"""Tests for the process-parallel seed-ensemble runner (tier 2 of the
execution engine): chunking, job resolution, order preservation, the
serial fallback, and byte-identity of parallel vs serial results."""

import functools
import pickle

import pytest

from repro.errors import ConfigurationError
from repro.experiments import e1_sequential, ensemble
from repro.experiments.ensemble import (
    resolve_jobs,
    run_ensemble,
    seed_chunks,
)


def _square(seed: int) -> int:
    """Module-level (hence picklable) worker."""
    return seed * seed


def _seeded_tuple(offset: int, seed: int):
    """Picklable worker with bound config state, via functools.partial."""
    return (seed, float(seed + offset), [seed] * 3)


class TestResolveJobs:
    def test_none_and_one_mean_serial(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1

    def test_zero_and_negative_mean_all_cpus(self):
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(-3) >= 1

    def test_explicit_count_taken_literally(self):
        assert resolve_jobs(5) == 5


class TestSeedChunks:
    def test_chunks_are_contiguous_and_cover_all_seeds(self):
        seeds = list(range(103, 120))
        chunks = seed_chunks(seeds, jobs=3)
        assert [s for chunk in chunks for s in chunk] == seeds
        for chunk in chunks:
            assert chunk == list(range(chunk[0], chunk[0] + len(chunk)))

    def test_at_most_four_chunks_per_job(self):
        chunks = seed_chunks(list(range(1000)), jobs=2)
        assert 1 <= len(chunks) <= 4 * 2 + 1

    def test_empty_seed_list(self):
        assert seed_chunks([], jobs=4) == []

    def test_jobs_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            seed_chunks([1, 2], jobs=0)


class TestRunEnsemble:
    def test_serial_matches_list_comprehension(self):
        seeds = [7, 3, 11, 3]
        assert run_ensemble(_square, seeds, jobs=1) == [_square(s) for s in seeds]

    def test_parallel_byte_identical_to_serial(self):
        seeds = list(range(200, 213))
        serial = run_ensemble(_square, seeds, jobs=1)
        parallel = run_ensemble(_square, seeds, jobs=2)
        assert pickle.dumps(parallel) == pickle.dumps(serial)

    def test_parallel_partial_worker_preserves_seed_order(self):
        worker = functools.partial(_seeded_tuple, 10)
        seeds = list(range(50, 61))
        serial = run_ensemble(worker, seeds, jobs=1)
        parallel = run_ensemble(worker, seeds, jobs=3)
        assert parallel == serial
        assert [row[0] for row in parallel] == seeds

    def test_unpicklable_callable_falls_back_to_serial(self):
        offset = 5
        seeds = list(range(6))
        # A closure cannot cross a process boundary; the runner must
        # degrade to the serial path and still return correct results.
        result = run_ensemble(lambda s: s + offset, seeds, jobs=2)
        assert result == [s + offset for s in seeds]

    def test_broken_pool_falls_back_to_serial(self, monkeypatch):
        class ExplodingPool:
            def __init__(self, *args, **kwargs):
                raise OSError("no fork for you")

        monkeypatch.setattr(ensemble, "ProcessPoolExecutor", ExplodingPool)
        seeds = list(range(8))
        assert run_ensemble(_square, seeds, jobs=4) == [s * s for s in seeds]

    def test_worker_errors_propagate_from_serial_path(self):
        def boom(seed):
            raise ValueError(f"seed {seed}")

        with pytest.raises(ValueError):
            run_ensemble(boom, [1, 2], jobs=1)

    def test_single_seed_never_pools(self, monkeypatch):
        def no_pool(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("pool must not be created for one seed")

        monkeypatch.setattr(ensemble, "ProcessPoolExecutor", no_pool)
        assert run_ensemble(_square, [9], jobs=8) == [81]


class TestDriverDeterminism:
    def test_e1_parallel_matches_serial(self):
        config = e1_sequential.E1Config.quick()
        config.num_runs = 4
        serial = e1_sequential.run(config)
        config.jobs = 2
        parallel = e1_sequential.run(config)
        assert pickle.dumps(parallel.series) == pickle.dumps(serial.series)
        assert pickle.dumps(parallel.table.rows) == pickle.dumps(serial.table.rows)
        assert parallel.passed == serial.passed
