"""Tests for the process-parallel seed-ensemble runner (tier 2 of the
execution engine): chunking, job resolution, order preservation, the
serial fallback, and byte-identity of parallel vs serial results."""

import functools
import pickle
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.errors import ConfigurationError
from repro.experiments import e1_sequential, ensemble
from repro.experiments.ensemble import (
    resolve_jobs,
    run_ensemble,
    seed_chunks,
)


def _square(seed: int) -> int:
    """Module-level (hence picklable) worker."""
    return seed * seed


def _seeded_tuple(offset: int, seed: int):
    """Picklable worker with bound config state, via functools.partial."""
    return (seed, float(seed + offset), [seed] * 3)


class TestResolveJobs:
    def test_none_and_one_mean_serial(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1

    def test_zero_and_negative_mean_all_cpus(self):
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(-3) >= 1

    def test_explicit_count_taken_literally(self):
        assert resolve_jobs(5) == 5


class TestSeedChunks:
    def test_chunks_are_contiguous_and_cover_all_seeds(self):
        seeds = list(range(103, 120))
        chunks = seed_chunks(seeds, jobs=3)
        assert [s for chunk in chunks for s in chunk] == seeds
        for chunk in chunks:
            assert chunk == list(range(chunk[0], chunk[0] + len(chunk)))

    def test_at_most_four_chunks_per_job(self):
        chunks = seed_chunks(list(range(1000)), jobs=2)
        assert 1 <= len(chunks) <= 4 * 2 + 1

    def test_empty_seed_list(self):
        assert seed_chunks([], jobs=4) == []

    def test_jobs_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            seed_chunks([1, 2], jobs=0)


class TestRunEnsemble:
    def test_serial_matches_list_comprehension(self):
        seeds = [7, 3, 11, 3]
        assert run_ensemble(_square, seeds, jobs=1) == [_square(s) for s in seeds]

    def test_parallel_byte_identical_to_serial(self):
        seeds = list(range(200, 213))
        serial = run_ensemble(_square, seeds, jobs=1)
        parallel = run_ensemble(_square, seeds, jobs=2)
        assert pickle.dumps(parallel) == pickle.dumps(serial)

    def test_parallel_partial_worker_preserves_seed_order(self):
        worker = functools.partial(_seeded_tuple, 10)
        seeds = list(range(50, 61))
        serial = run_ensemble(worker, seeds, jobs=1)
        parallel = run_ensemble(worker, seeds, jobs=3)
        assert parallel == serial
        assert [row[0] for row in parallel] == seeds

    def test_unpicklable_callable_falls_back_to_serial(self):
        offset = 5
        seeds = list(range(6))
        # A closure cannot cross a process boundary; the runner must
        # degrade to the serial path and still return correct results.
        result = run_ensemble(lambda s: s + offset, seeds, jobs=2)
        assert result == [s + offset for s in seeds]

    def test_broken_pool_falls_back_to_serial(self, monkeypatch):
        class ExplodingPool:
            def __init__(self, *args, **kwargs):
                raise OSError("no fork for you")

        monkeypatch.setattr(ensemble, "ProcessPoolExecutor", ExplodingPool)
        seeds = list(range(8))
        assert run_ensemble(_square, seeds, jobs=4) == [s * s for s in seeds]

    def test_worker_errors_propagate_from_serial_path(self):
        def boom(seed):
            raise ValueError(f"seed {seed}")

        with pytest.raises(ValueError):
            run_ensemble(boom, [1, 2], jobs=1)

    def test_single_seed_never_pools(self, monkeypatch):
        def no_pool(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("pool must not be created for one seed")

        monkeypatch.setattr(ensemble, "ProcessPoolExecutor", no_pool)
        assert run_ensemble(_square, [9], jobs=8) == [81]


class _FakeFuture:
    """A completed future: ``result()`` runs the work or raises."""

    def __init__(self, fn=None, exc=None):
        self._fn, self._exc = fn, exc

    def result(self):
        if self._exc is not None:
            raise self._exc
        return self._fn()

    def cancel(self):
        return True


class _ScriptedPool:
    """In-process ProcessPoolExecutor stand-in whose per-submit behaviour
    follows a script: an exception instance makes that future raise it,
    ``None`` runs the chunk for real.  Exhausted scripts run for real —
    so "fail once, then succeed" is one script entry."""

    def __init__(self, script=()):
        self.script = list(script)
        self.submits = 0

    def __call__(self, max_workers=None):
        return self

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def submit(self, fn, payload):
        self.submits += 1
        behavior = self.script.pop(0) if self.script else None
        if behavior is None:
            return _FakeFuture(fn=lambda: fn(payload))
        return _FakeFuture(exc=behavior)


def _fake_wait(futures, timeout=None, return_when=None):
    return set(futures), set()


class TestPartialChunkRerun:
    """Satellite: pool failures cost only the chunks that failed, not the
    whole seed list, and transient failures retry inside the pool."""

    def _patch(self, monkeypatch, pool):
        monkeypatch.setattr(ensemble, "ProcessPoolExecutor", pool)
        monkeypatch.setattr(ensemble, "wait", _fake_wait)

    def test_transient_failure_retried_in_pool(self, monkeypatch):
        seeds = list(range(8))
        pool = _ScriptedPool([BrokenProcessPool("worker died")])
        self._patch(monkeypatch, pool)
        result = run_ensemble(
            _square, seeds, jobs=2, chunk_retries=1, backoff_base=0.0
        )
        assert result == [s * s for s in seeds]
        # The broken chunk was resubmitted once: chunks + 1 submits.
        assert pool.submits == len(seed_chunks(seeds, 2)) + 1

    def test_retry_budget_exhausted_falls_back_to_serial(self, monkeypatch):
        seeds = list(range(8))
        chunks = len(seed_chunks(seeds, 2))
        # Every submit of chunk 0 fails: initial + chunk_retries attempts.
        pool = _ScriptedPool(
            [BrokenProcessPool("still dead")] * (chunks + 2)
        )
        self._patch(monkeypatch, pool)
        result = run_ensemble(
            _square, seeds, jobs=2, chunk_retries=2, backoff_base=0.0
        )
        assert result == [s * s for s in seeds]

    def test_non_retryable_failure_is_not_resubmitted(self, monkeypatch):
        seeds = list(range(8))
        pool = _ScriptedPool([pickle.PicklingError("cannot cross")])
        self._patch(monkeypatch, pool)
        result = run_ensemble(_square, seeds, jobs=2, backoff_base=0.0)
        assert result == [s * s for s in seeds]
        # No retry was attempted for a serialization failure.
        assert pool.submits == len(seed_chunks(seeds, 2))

    def test_failed_chunks_recomputed_exactly_once(self, monkeypatch):
        seeds = list(range(8))
        calls = []

        def worker(seed):
            calls.append(seed)
            return seed * 3

        # Chunks 2 and 5 never produce a pool result; the rest succeed.
        chunks = len(seed_chunks(seeds, 2))
        script = [None] * chunks
        script[2] = pickle.PicklingError("chunk 2")
        script[5] = TypeError("chunk 5")
        self._patch(monkeypatch, _ScriptedPool(script))
        result = run_ensemble(worker, seeds, jobs=2, backoff_base=0.0)
        assert result == [s * 3 for s in seeds]
        # Every seed ran exactly once: successful chunks were not redone.
        assert sorted(calls) == seeds

    def test_wedged_pool_reruns_unfinished_chunks_serially(self, monkeypatch):
        def no_progress(futures, timeout=None, return_when=None):
            return set(), set(futures)

        monkeypatch.setattr(ensemble, "ProcessPoolExecutor", _ScriptedPool())
        monkeypatch.setattr(ensemble, "wait", no_progress)
        seeds = list(range(6))
        result = run_ensemble(_square, seeds, jobs=3, chunk_timeout=0.01)
        assert result == [s * s for s in seeds]

    def test_worker_error_under_pooling_still_propagates(self, monkeypatch):
        def boom_on_three(seed):
            if seed == 3:
                raise ValueError("seed 3")
            return seed

        self._patch(monkeypatch, _ScriptedPool())
        # The pool leaves the poisoned chunk unfilled; the serial rerun
        # re-raises the real error with a clean traceback.
        with pytest.raises(ValueError, match="seed 3"):
            run_ensemble(boom_on_three, list(range(6)), jobs=2)


class TestDriverDeterminism:
    def test_e1_parallel_matches_serial(self):
        config = e1_sequential.E1Config.quick()
        config.num_runs = 4
        serial = e1_sequential.run(config)
        config.jobs = 2
        parallel = e1_sequential.run(config)
        assert pickle.dumps(parallel.series) == pickle.dumps(serial.series)
        assert pickle.dumps(parallel.table.rows) == pickle.dumps(serial.table.rows)
        assert parallel.passed == serial.passed


class TestSeededBackoffJitter:
    """Satellite: chunk-retry backoff jitter is seeded and deterministic
    (no ``random``/wall-clock entropy), and enabling it does not disturb
    result byte-identity across --jobs."""

    def test_no_seed_is_pure_exponential(self):
        assert ensemble.backoff_delay(0.5, 1) == 0.5
        assert ensemble.backoff_delay(0.5, 2) == 1.0
        assert ensemble.backoff_delay(0.5, 3) == 2.0

    def test_seeded_jitter_is_deterministic(self):
        a = ensemble.backoff_delay(0.5, 2, chunk_index=3, seed=42)
        b = ensemble.backoff_delay(0.5, 2, chunk_index=3, seed=42)
        assert a == b

    def test_jitter_varies_by_key(self):
        base = ensemble.backoff_delay(0.5, 2, chunk_index=3, seed=42)
        assert ensemble.backoff_delay(0.5, 2, chunk_index=4, seed=42) != base
        assert ensemble.backoff_delay(0.5, 3, chunk_index=3, seed=42) != base
        assert ensemble.backoff_delay(0.5, 2, chunk_index=3, seed=43) != base

    def test_jitter_stays_within_half_to_three_halves(self):
        for attempt in (1, 2, 3):
            for chunk in range(8):
                raw = 0.25 * 2 ** (attempt - 1)
                delay = ensemble.backoff_delay(
                    0.25, attempt, chunk_index=chunk, seed=7
                )
                assert 0.5 * raw <= delay < 1.5 * raw

    def test_zero_base_never_jitters(self):
        assert ensemble.backoff_delay(0.0, 3, chunk_index=1, seed=9) == 0.0

    def test_retry_sleeps_use_the_seeded_delay(self, monkeypatch):
        from concurrent.futures.process import BrokenProcessPool

        seeds = list(range(8))
        pool = _ScriptedPool([BrokenProcessPool("worker died")])
        monkeypatch.setattr(ensemble, "ProcessPoolExecutor", pool)
        monkeypatch.setattr(ensemble, "wait", _fake_wait)
        slept = []
        monkeypatch.setattr(ensemble.time, "sleep", slept.append)
        result = run_ensemble(
            _square, seeds, jobs=2, chunk_retries=1,
            backoff_base=0.25, backoff_seed=11,
        )
        assert result == [s * s for s in seeds]
        # Chunk 0 failed once -> exactly one sleep, the seeded jittered
        # delay for (chunk 0, attempt 1) -- reproducible by key.
        assert slept == [
            ensemble.backoff_delay(0.25, 1, chunk_index=0, seed=11)
        ]

    def test_jobs_byte_identity_with_jitter_enabled(self):
        serial = run_ensemble(_square, list(range(12)), jobs=1, backoff_seed=5)
        pooled = run_ensemble(_square, list(range(12)), jobs=4, backoff_seed=5)
        assert pickle.dumps(pooled) == pickle.dumps(serial)
