"""Tests for schedule recording/replay and the wall-clock metrics."""

import numpy as np
import pytest

from repro.core.epoch_sgd import run_lock_free_sgd
from repro.errors import (
    ConfigurationError,
    ReplayDivergenceError,
    SchedulerError,
)
from repro.metrics.trace import parallel_speedup, parallel_wallclock
from repro.objectives.noise import GaussianNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.sched.random_sched import RandomScheduler
from repro.sched.replay import RecordingScheduler, ReplayScheduler


@pytest.fixture
def workload():
    objective = IsotropicQuadratic(dim=2, noise=GaussianNoise(0.3))
    x0 = np.array([2.0, -2.0])

    def run(scheduler):
        return run_lock_free_sgd(
            objective, scheduler, num_threads=3, step_size=0.05,
            iterations=60, x0=x0, seed=5,
        )

    return run


class TestRecordReplay:
    def test_replay_reproduces_run_exactly(self, workload):
        recorder = RecordingScheduler(RandomScheduler(seed=9))
        original = workload(recorder)
        assert len(recorder.schedule) == original.sim_steps

        replayed = workload(ReplayScheduler(recorder.schedule))
        np.testing.assert_array_equal(original.x_final, replayed.x_final)
        np.testing.assert_array_equal(original.distances, replayed.distances)
        assert original.sim_steps == replayed.sim_steps

    def test_strict_replay_detects_divergence(self, workload):
        recorder = RecordingScheduler(RandomScheduler(seed=9))
        workload(recorder)
        corrupted = list(recorder.schedule)
        # Make an early decision point at a thread that will have
        # finished by then — guaranteed divergence: repeat thread 0
        # forever from the midpoint.
        midpoint = len(corrupted) // 2
        corrupted[midpoint:] = [0] * (len(corrupted) - midpoint)
        with pytest.raises(SchedulerError):
            workload(ReplayScheduler(corrupted, strict=True))

    def test_strict_replay_rejects_short_schedule(self, workload):
        recorder = RecordingScheduler(RandomScheduler(seed=9))
        workload(recorder)
        with pytest.raises(SchedulerError):
            workload(ReplayScheduler(recorder.schedule[:10], strict=True))

    def test_lenient_replay_falls_back(self, workload):
        recorder = RecordingScheduler(RandomScheduler(seed=9))
        workload(recorder)
        # Truncated schedule with strict=False completes anyway.
        result = workload(ReplayScheduler(recorder.schedule[:10], strict=False))
        assert result.iterations == 60

    def test_remaining_counter(self):
        replay = ReplayScheduler([0, 1, 0])
        assert replay.remaining == 3


class TestReplayDivergenceError:
    """Divergence raises carry structured (step_index, expected, actual)
    so callers can localize the first bad decision programmatically."""

    def test_divergence_error_is_a_scheduler_error(self):
        assert issubclass(ReplayDivergenceError, SchedulerError)

    def test_non_runnable_choice_carries_position_and_choice(self, workload):
        recorder = RecordingScheduler(RandomScheduler(seed=9))
        workload(recorder)
        corrupted = list(recorder.schedule)
        midpoint = len(corrupted) // 2
        corrupted[midpoint:] = [0] * (len(corrupted) - midpoint)
        with pytest.raises(ReplayDivergenceError) as excinfo:
            workload(ReplayScheduler(corrupted, strict=True))
        error = excinfo.value
        assert error.step_index >= midpoint
        assert error.expected == 0  # the recorded (non-runnable) thread
        assert error.actual == -1  # no substitute was taken

    def test_exhausted_schedule_carries_sentinel_expected(self, workload):
        recorder = RecordingScheduler(RandomScheduler(seed=9))
        workload(recorder)
        short = recorder.schedule[:10]
        with pytest.raises(ReplayDivergenceError) as excinfo:
            workload(ReplayScheduler(short, strict=True))
        error = excinfo.value
        assert error.step_index == len(short)
        assert error.expected == -1  # nothing recorded at this point
        assert error.actual >= 0  # the thread the run actually wanted

    def test_prefix_verify_mismatch_carries_both_choices(self, workload):
        from repro.sched.replay import PrefixReplayScheduler
        from repro.sched.round_robin import RoundRobinScheduler

        recorder = RecordingScheduler(RandomScheduler(seed=9))
        workload(recorder)
        prefix = list(recorder.schedule[:20])
        # Verified prefix replay against a *different* inner scheduler:
        # the first decision where round-robin disagrees with the random
        # recording must raise with both sides of the disagreement.
        with pytest.raises(ReplayDivergenceError) as excinfo:
            workload(
                PrefixReplayScheduler(
                    RoundRobinScheduler(), prefix=prefix, verify=True
                )
            )
        error = excinfo.value
        assert 0 <= error.step_index < len(prefix)
        assert error.expected == prefix[error.step_index]
        assert error.actual != error.expected
        assert error.actual >= 0


class TestWallclockMetrics:
    def test_parallel_wallclock_is_max(self):
        assert parallel_wallclock([10, 30, 20]) == 30

    def test_speedup_balanced(self):
        assert parallel_speedup(90, [30, 30, 30]) == pytest.approx(3.0)

    def test_speedup_imbalanced(self):
        assert parallel_speedup(90, [60, 20, 10]) == pytest.approx(1.5)

    def test_speedup_of_real_run(self, workload):
        result = workload(RandomScheduler(seed=11))
        speedup = parallel_speedup(
            result.sim_steps, list(result.thread_steps.values())
        )
        assert 1.0 <= speedup <= 3.0
        assert sum(result.thread_steps.values()) == result.sim_steps

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            parallel_wallclock([])
        with pytest.raises(ConfigurationError):
            parallel_speedup(5, [10])
