"""Tests for the Objective base-class helpers and small leftovers
(experiment runner validation, hitting-module validation)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import ExperimentResult, seed_range
from repro.metrics.hitting import estimate_failure_probability
from repro.metrics.report import Table
from repro.objectives.base import Objective
from repro.objectives.quadratic import IsotropicQuadratic
from repro.runtime.rng import RngStream


class MinimalObjective(Objective):
    """The smallest legal Objective: f(x) = ½‖x‖², exact oracle."""

    def __init__(self, dim: int = 2) -> None:
        self.dim = dim

    def value(self, x):
        x = np.asarray(x, dtype=float)
        return 0.5 * float(x @ x)

    def gradient(self, x):
        return np.asarray(x, dtype=float).copy()

    @property
    def x_star(self):
        return np.zeros(self.dim)

    def draw_sample(self, rng):
        return None

    def grad_at_sample(self, x, sample):
        return self.gradient(x)

    @property
    def strong_convexity(self):
        return 1.0

    @property
    def lipschitz_expected(self):
        return 1.0

    def second_moment_bound(self, radius):
        return radius**2


class TestObjectiveHelpers:
    def test_distance_to_opt(self):
        objective = MinimalObjective()
        assert objective.distance_to_opt([3.0, 4.0]) == pytest.approx(5.0)

    def test_suboptimality(self):
        objective = MinimalObjective()
        assert objective.suboptimality([2.0, 0.0]) == pytest.approx(2.0)
        assert objective.suboptimality(objective.x_star) == 0.0

    def test_in_success_region_boundary(self):
        objective = MinimalObjective()
        assert objective.in_success_region([1.0, 0.0], epsilon=1.0)
        assert not objective.in_success_region([1.0, 0.1], epsilon=1.0)

    def test_stochastic_gradient_returns_sample(self):
        objective = MinimalObjective()
        rng = RngStream.root(0)
        gradient, sample = objective.stochastic_gradient(
            np.array([1.0, 2.0]), rng
        )
        np.testing.assert_array_equal(gradient, [1.0, 2.0])
        assert sample is None

    def test_repr_mentions_dim(self):
        assert "dim=2" in repr(MinimalObjective(2))
        assert "dim=5" in repr(IsotropicQuadratic(dim=5))


class TestRunnerValidation:
    def test_seed_range_validates(self):
        with pytest.raises(ConfigurationError):
            seed_range(0, 0)

    def test_render_without_series_skips_plot(self):
        table = Table(["x"])
        table.add_row([1])
        result = ExperimentResult("EX", "t", table, xs=[], series={})
        text = result.render(plot=True)
        assert "verdict" in text

    def test_render_failed_verdict(self):
        table = Table(["x"])
        table.add_row([1])
        result = ExperimentResult("EX", "t", table, passed=False)
        assert "FAIL" in result.render(plot=False)

    def test_render_with_notes(self):
        table = Table(["x"])
        table.add_row([1])
        result = ExperimentResult("EX", "t", table, notes="hello-notes")
        assert "hello-notes" in result.render(plot=False)


class TestHittingValidation:
    def test_zero_runs_rejected(self):
        with pytest.raises(ConfigurationError):
            estimate_failure_probability(lambda s: 1, num_runs=0)

    def test_seeds_passed_through(self):
        seen = []
        estimate_failure_probability(
            lambda s: seen.append(s) or 1, num_runs=3, base_seed=100
        )
        assert seen == [100, 101, 102]
