"""Tests for the sparse-feature regression workload (E12's substrate)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.objectives.sparse_features import (
    SparseFeatureLeastSquares,
    make_sparse_regression,
)
from repro.runtime.rng import RngStream
from repro.theory.assumptions import certify_objective


class TestGenerator:
    def test_exact_row_sparsity(self):
        design, _, _ = make_sparse_regression(40, 8, 3, seed=1)
        assert np.all(np.count_nonzero(design, axis=1) == 3)

    def test_every_column_covered(self):
        design, _, _ = make_sparse_regression(40, 8, 2, seed=2)
        assert np.all(np.count_nonzero(design, axis=0) > 0)

    def test_full_density_is_dense(self):
        design, _, _ = make_sparse_regression(30, 5, 5, seed=3)
        assert np.all(design != 0)

    def test_signal_recoverable(self):
        design, targets, x_true = make_sparse_regression(
            200, 6, 3, noise_sigma=0.05, seed=4
        )
        estimate, *_ = np.linalg.lstsq(design, targets, rcond=None)
        assert np.linalg.norm(estimate - x_true) < 0.2

    def test_deterministic(self):
        a = make_sparse_regression(20, 4, 2, seed=5)
        b = make_sparse_regression(20, 4, 2, seed=5)
        np.testing.assert_array_equal(a[0], b[0])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_sparse_regression(20, 4, 0)
        with pytest.raises(ConfigurationError):
            make_sparse_regression(20, 4, 5)
        with pytest.raises(ConfigurationError):
            make_sparse_regression(2, 4, 2)


class TestObjective:
    @pytest.fixture(scope="class")
    def objective(self):
        design, targets, _ = make_sparse_regression(60, 6, 2, seed=6)
        return SparseFeatureLeastSquares(design, targets)

    def test_gradient_sparsity_matches_design(self, objective):
        assert objective.gradient_sparsity == 2
        assert objective.density == pytest.approx(2 / 6)

    def test_oracle_gradients_are_k_sparse(self, objective):
        rng = RngStream.root(0)
        x = np.ones(6)
        for _ in range(30):
            gradient, _ = objective.stochastic_gradient(x, rng)
            assert np.count_nonzero(gradient) <= 2

    def test_is_a_valid_strongly_convex_objective(self, objective):
        assert objective.strong_convexity > 0
        report = certify_objective(objective, radius=1.5, seed=1)
        report.raise_if_failed()
