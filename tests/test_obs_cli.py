"""End-to-end CLI tests for the observability surfaces: ``repro chaos
--metrics/--trace``, ``repro run --metrics``, ``repro sanitize
--metrics`` and the ``repro obs`` viewer."""

import json

import pytest

from repro.cli import main
from repro.obs.paper import merge_paper_metrics
from repro.obs.snapshot import load_snapshot_jsonl


@pytest.fixture(scope="module")
def chaos_snapshot(tmp_path_factory):
    """One small instrumented chaos campaign (shared across tests)."""
    out = tmp_path_factory.mktemp("chaos") / "metrics.jsonl"
    trace = out.parent / "trace.json"
    code = main(
        [
            "chaos",
            "--specs",
            "prob-crash,torn-update",
            "--seeds",
            "2",
            "--iterations",
            "150",
            "--metrics",
            str(out),
            "--trace",
            str(trace),
        ]
    )
    assert code == 0
    return out, trace


class TestChaosMetrics:
    def test_snapshot_cells_and_aggregate(self, chaos_snapshot):
        out, _trace = chaos_snapshot
        lines = load_snapshot_jsonl(out)
        cells = [line for line in lines if line["kind"] == "cell"]
        aggregates = [line for line in lines if line["kind"] == "aggregate"]
        assert len(cells) == 4  # 2 specs x 2 seeds
        assert len(aggregates) == 1
        for cell in cells:
            metrics = cell["metrics"]
            assert metrics["tau_max"] >= 1
            assert metrics["tau_histogram"][-1][0] == "+Inf"
            assert metrics["window_counts"] is not None
            # Live snapshot agrees with the post-hoc certifiers by
            # construction — the flags ARE the certificate verdicts.
            assert metrics["lemma_6_1_violations"] == 0
            assert metrics["lemma_6_4_holds"] is True

    def test_aggregate_is_merge_of_cells(self, chaos_snapshot):
        out, _trace = chaos_snapshot
        lines = load_snapshot_jsonl(out)
        cells = [l["metrics"] for l in lines if l["kind"] == "cell"]
        aggregate = next(l for l in lines if l["kind"] == "aggregate")
        assert aggregate["metrics"] == merge_paper_metrics(cells)

    def test_chrome_trace_artifact(self, chaos_snapshot):
        _out, trace = chaos_snapshot
        payload = json.loads(trace.read_text())
        events = payload["traceEvents"]
        assert {event["name"] for event in events} == {"campaign.spec"}
        assert len(events) == 2  # one span per spec
        assert {event["args"]["spec"] for event in events} == {
            "prob-crash",
            "torn-update",
        }

    def test_snapshot_is_deterministic(self, chaos_snapshot, tmp_path):
        first, _trace = chaos_snapshot
        second = tmp_path / "metrics2.jsonl"
        assert (
            main(
                [
                    "chaos",
                    "--specs",
                    "prob-crash,torn-update",
                    "--seeds",
                    "2",
                    "--iterations",
                    "150",
                    "--metrics",
                    str(second),
                ]
            )
            == 0
        )
        assert first.read_bytes() == second.read_bytes()

    def test_top_view_renders_to_stderr(self, tmp_path, capsys):
        code = main(
            [
                "chaos",
                "--specs",
                "prob-crash",
                "--seeds",
                "1",
                "--iterations",
                "100",
                "--metrics",
                str(tmp_path / "m.jsonl"),
                "--metrics-interval",
                "0",
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "-- repro chaos --" in err
        assert "repro_campaign_cells_total" in err


class TestRunMetrics:
    def test_e4_exports_experiment_lines(self, tmp_path, capsys):
        out = tmp_path / "e4.jsonl"
        code = main(
            ["run", "e4", "--scale", "quick", "--no-plot", "--metrics", str(out)]
        )
        assert code == 0
        lines = load_snapshot_jsonl(out)
        assert len(lines) == 1
        assert lines[0]["kind"] == "experiment"
        assert lines[0]["id"] == "E4"
        assert lines[0]["passed"] is True
        assert lines[0]["metrics"]["lemma_6_4_holds"] is True

    def test_experiment_without_obs_notes_empty_snapshot(
        self, tmp_path, capsys
    ):
        out = tmp_path / "e1.jsonl"
        code = main(
            ["run", "e1", "--scale", "quick", "--no-plot", "--metrics", str(out)]
        )
        assert code == 0
        assert load_snapshot_jsonl(out) == []
        assert "none of the selected experiments" in capsys.readouterr().err


class TestSanitizeMetrics:
    def test_run_lines(self, tmp_path, capsys):
        out = tmp_path / "sanitize.jsonl"
        code = main(
            [
                "sanitize",
                "--presets",
                "e1",
                "--seeds",
                "1",
                "--metrics",
                str(out),
            ]
        )
        assert code == 0
        lines = load_snapshot_jsonl(out)
        assert len(lines) == 1
        assert lines[0]["kind"] == "run"
        assert lines[0]["findings"] == 0
        assert lines[0]["certificates_ok"] is True


class TestObsViewer:
    def test_text_rendering(self, chaos_snapshot, capsys):
        out, _trace = chaos_snapshot
        assert main(["obs", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "cell spec=prob-crash" in printed
        assert "aggregate" in printed
        assert "tau_histogram:" in printed
        assert "5 snapshot line(s)" in printed

    def test_prom_rendering(self, chaos_snapshot, capsys):
        out, _trace = chaos_snapshot
        assert main(["obs", str(out), "--format", "prom"]) == 0
        printed = capsys.readouterr().out
        assert "# TYPE repro_tau_max gauge" in printed
        assert "repro_tau_delay_bucket" in printed

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        assert main(["obs", str(tmp_path / "nope.jsonl")]) == 2

    def test_invalid_snapshot_is_an_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert main(["obs", str(bad)]) == 2


class TestTraceCli:
    def _spill(self, tmp_path):
        from repro.obs.causal import SPILL_SUFFIX, CausalRecorder

        rec = CausalRecorder(
            tmp_path / "spills" / f"a{SPILL_SUFFIX}",
            role="worker", trace_id="t1",
        )
        rec.record("worker.run", key="attempt-1", t0=1.0, t1=2.0)
        rec.record("ensemble.seed", key="ns|1", det=True, seed=1)
        rec.close()
        return tmp_path / "spills"

    def test_stitch_directory_both_modes(self, tmp_path, capsys):
        spills = self._spill(tmp_path)
        out = tmp_path / "trace.json"
        assert main(["trace", str(spills), "--out", str(out)]) == 0
        assert "stitched 2 span(s)" in capsys.readouterr().out
        assert json.loads(out.read_text())["traceEvents"]
        assert main(
            ["trace", str(spills), "--mode", "logical",
             "--out", str(out)]
        ) == 0
        events = json.loads(out.read_text())["traceEvents"]
        assert [e["name"] for e in events] == ["ensemble.seed"]

    def test_missing_path_and_empty_stitch_exit_codes(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope")]) == 2
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(
            ["trace", str(empty), "--out", str(tmp_path / "t.json")]
        ) == 1


class TestTrendCli:
    def test_update_then_check(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "BENCH_zoo.json").write_text(
            json.dumps({"steps_per_sec": 1000.0, "unix_time": 1.0})
        )
        assert main(["trend", "--results", str(results), "--update"]) == 0
        out = capsys.readouterr().out
        assert "ingested 1 new ledger entr" in out
        assert "BENCH_zoo" in out
        # A 50% throughput drop fails --check with a REGRESSION line.
        (results / "BENCH_zoo.json").write_text(
            json.dumps({"steps_per_sec": 500.0, "unix_time": 2.0})
        )
        assert main(["trend", "--results", str(results), "--check"]) == 1
        err = capsys.readouterr().err
        assert "REGRESSION" in err and "steps_per_sec" in err

    def test_missing_results_dir_exit_2(self, tmp_path):
        assert main(["trend", "--results", str(tmp_path / "nope")]) == 2
