"""Unit + property tests for the contention analytics (Lemmas 6.1/6.2/6.4,
tau_max, tau_avg)."""


import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.epoch_sgd import run_lock_free_sgd
from repro.objectives.noise import GaussianNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.runtime.events import IterationRecord
from repro.sched.bounded_delay import BoundedDelayScheduler
from repro.sched.priority_delay import PriorityDelayScheduler
from repro.sched.random_sched import RandomScheduler
from repro.theory.contention import (
    delay_sequence,
    interval_contention,
    iteration_intervals,
    lemma_6_2_max_bad,
    lemma_6_2_violations,
    lemma_6_4_bound,
    lemma_6_4_sums,
    tau_avg,
    tau_max,
    thread_count,
)


def record(start, end, thread=0, read_start=None):
    """Construct a minimal IterationRecord for synthetic interval tests."""
    return IterationRecord(
        time=end,
        thread_id=thread,
        start_time=start,
        read_start_time=read_start if read_start is not None else start + 1,
        read_end_time=read_start if read_start is not None else start + 1,
        first_update_time=end,
        end_time=end,
    )


class TestIntervalContention:
    def test_disjoint_intervals_have_zero_contention(self):
        records = [record(0, 1), record(2, 3), record(4, 5)]
        np.testing.assert_array_equal(interval_contention(records), [0, 0, 0])

    def test_fully_overlapping(self):
        records = [record(0, 10, t) for t in range(3)]
        np.testing.assert_array_equal(interval_contention(records), [2, 2, 2])

    def test_chain_overlap(self):
        records = [record(0, 2), record(1, 3), record(2, 4)]
        # 0 overlaps 1 and (at the boundary point 2) record 2.
        np.testing.assert_array_equal(interval_contention(records), [2, 2, 2])

    def test_tau_max_and_avg(self):
        records = [record(0, 10), record(1, 2), record(20, 21)]
        assert tau_max(records) == 1  # (0,10) and (1,2) overlap each other
        assert tau_avg(records) == pytest.approx((1 + 1 + 0) / 3)

    def test_empty_trace(self):
        assert tau_max([]) == 0
        assert tau_avg([]) == 0.0
        assert interval_contention([]).size == 0
        assert delay_sequence([]).size == 0

    def test_intervals_sorted_by_order_time(self):
        records = [record(5, 9), record(0, 3)]
        intervals = iteration_intervals(records)
        assert intervals[0, 0] == 0

    def test_thread_count(self):
        records = [record(0, 1, 0), record(2, 3, 1), record(4, 5, 0)]
        assert thread_count(records) == 2


class TestDelaySequence:
    def test_serial_execution_has_delay_one(self):
        # Each iteration reads after all previous completed: tau_t = 1.
        records = [record(10 * i, 10 * i + 5, read_start=10 * i + 1)
                   for i in range(5)]
        np.testing.assert_array_equal(delay_sequence(records), [1, 1, 1, 1, 1])

    def test_pending_predecessor_increases_delay(self):
        # Iteration 1 reads while iteration 0 is still writing.
        records = [
            record(0, 100, thread=0, read_start=1),
            record(2, 50, thread=1, read_start=3),
        ]
        delays = delay_sequence(records)
        # Ordered by first update: (2,50) comes first then (0,100).
        assert delays[1] == 2  # the late-ordered one misses both


class TestLemma62:
    def test_synthetic_violation_free(self):
        records = [record(i, i + 3, thread=i % 2) for i in range(40)]
        assert lemma_6_2_violations(records, 2, 2) == []

    def test_max_bad_reports_windows(self):
        records = [record(i, i + 3, thread=i % 2) for i in range(40)]
        max_bad, windows = lemma_6_2_max_bad(records, 2, 2)
        assert windows > 0
        assert max_bad < 2

    def test_short_trace_has_no_windows(self):
        records = [record(0, 1)]
        assert lemma_6_2_violations(records, 4, 4) == []
        assert lemma_6_2_max_bad(records, 4, 4) == (0, 0)

    def test_invalid_args(self):
        with pytest.raises(Exception):
            lemma_6_2_violations([], 0, 2)
        with pytest.raises(Exception):
            lemma_6_2_max_bad([], 2, 0)


class TestLemma64Sums:
    def test_all_ones_delay(self):
        sums = lemma_6_4_sums(np.ones(10, dtype=int))
        # Each position: only m=1 can satisfy tau >= m.
        np.testing.assert_array_equal(sums[:-1], np.ones(9, dtype=int))
        assert sums[-1] == 0  # nothing after the last element

    def test_known_small_case(self):
        delays = np.array([1, 3, 2, 1])
        # t=0: m=1 -> tau_1=3>=1 yes; m=2 -> tau_2=2>=2 yes; m=3 -> tau_3=1>=3 no.
        sums = lemma_6_4_sums(delays)
        assert sums[0] == 2

    def test_empty(self):
        assert lemma_6_4_sums(np.array([], dtype=int)).size == 0


# ----------------------------------------------------------------------
# Property-based: real executions under randomized schedulers must satisfy
# the combinatorial lemmas (they are theorems about *any* execution).
# ----------------------------------------------------------------------
@st.composite
def execution_params(draw):
    return dict(
        num_threads=draw(st.integers(min_value=2, max_value=6)),
        seed=draw(st.integers(min_value=0, max_value=10**6)),
        scheduler_kind=draw(st.sampled_from(["random", "bounded", "priority"])),
        delay=draw(st.integers(min_value=1, max_value=120)),
    )


def _build_scheduler(params):
    if params["scheduler_kind"] == "random":
        return RandomScheduler(seed=params["seed"])
    if params["scheduler_kind"] == "bounded":
        return BoundedDelayScheduler(
            params["delay"], seed=params["seed"], victims=[0]
        )
    return PriorityDelayScheduler(
        victims=[0], delay=params["delay"], seed=params["seed"]
    )


@given(params=execution_params())
@settings(max_examples=25, deadline=None)
def test_execution_lemmas_hold(params):
    objective = IsotropicQuadratic(dim=2, noise=GaussianNoise(0.3))
    result = run_lock_free_sgd(
        objective,
        _build_scheduler(params),
        num_threads=params["num_threads"],
        step_size=0.02,
        iterations=60,
        x0=np.array([1.0, 1.0]),
        seed=params["seed"],
    )
    records = result.records
    n = params["num_threads"]

    # Lemma 6.1: the first-update order is total (strictly increasing).
    orders = [r.order_time for r in records]
    assert orders == sorted(orders)
    assert len(set(orders)) == len(orders)

    # Gibson-Gramoli: tau_avg <= 2n.
    assert tau_avg(records) <= 2 * n

    # Lemma 6.2 for K in {1, 2}.
    assert lemma_6_2_violations(records, 1, n) == []
    assert lemma_6_2_violations(records, 2, n) == []

    # Lemma 6.4: max indicator sum <= 2 sqrt(tau_max * n).
    max_sum, bound = lemma_6_4_bound(records)
    assert max_sum <= bound + 1e-9
