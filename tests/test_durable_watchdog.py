"""Tests for the pooled-execution watchdog: the stall → reroute →
abandon escalation ladder (driven by an injected fake clock), its
wait-timeout arithmetic, and its integration with the ensemble runner
(reroute resubmission, abandon-to-serial fallback, graceful shutdown)."""

import pytest

from repro.durable.signals import GracefulShutdown
from repro.durable.watchdog import (
    ABANDON,
    REROUTE,
    WAIT,
    EnsembleWatchdog,
    WatchdogPolicy,
)
from repro.errors import InterruptedRunError
from repro.experiments import ensemble
from repro.experiments.ensemble import run_ensemble, seed_chunks


class FakeClock:
    """Injectable monotonic clock the tests advance by hand."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _square(seed: int) -> int:
    """Module-level (hence picklable) worker."""
    return seed * seed


class TestWaitTimeout:
    def test_no_limits_means_block_forever(self):
        watchdog = EnsembleWatchdog(WatchdogPolicy(), clock=FakeClock())
        assert watchdog.wait_timeout() is None

    def test_heartbeat_window_shrinks_and_resets_on_beat(self):
        clock = FakeClock()
        watchdog = EnsembleWatchdog(
            WatchdogPolicy(heartbeat_timeout=5.0), clock=clock
        )
        watchdog.start()
        assert watchdog.wait_timeout() == 5.0
        clock.advance(2.0)
        assert watchdog.wait_timeout() == 3.0
        watchdog.beat()
        assert watchdog.wait_timeout() == 5.0

    def test_deadline_window_clamped_at_zero(self):
        clock = FakeClock()
        watchdog = EnsembleWatchdog(WatchdogPolicy(deadline=30.0), clock=clock)
        watchdog.start()
        assert watchdog.wait_timeout() == 30.0
        clock.advance(40.0)
        assert watchdog.wait_timeout() == 0.0

    def test_tighter_of_stall_and_deadline_wins(self):
        clock = FakeClock()
        watchdog = EnsembleWatchdog(
            WatchdogPolicy(heartbeat_timeout=5.0, deadline=30.0), clock=clock
        )
        watchdog.start()
        assert watchdog.wait_timeout() == 5.0
        clock.advance(27.0)
        watchdog.beat()  # stall window restarts; deadline does not
        assert watchdog.wait_timeout() == 3.0

    def test_first_call_auto_starts(self):
        watchdog = EnsembleWatchdog(
            WatchdogPolicy(heartbeat_timeout=7.0), clock=FakeClock()
        )
        assert watchdog.wait_timeout() == 7.0
        assert watchdog.elapsed == 0.0


class TestEscalationLadder:
    def test_spurious_wakeup_keeps_waiting(self):
        clock = FakeClock()
        watchdog = EnsembleWatchdog(
            WatchdogPolicy(heartbeat_timeout=5.0), clock=clock
        )
        watchdog.start()
        clock.advance(1.0)  # not actually stalled yet
        assert watchdog.on_wait_elapsed(pending=3) == WAIT
        assert watchdog.findings == []

    def test_stall_reroutes_and_resets_window(self):
        clock = FakeClock()
        watchdog = EnsembleWatchdog(
            WatchdogPolicy(heartbeat_timeout=5.0, max_reroutes=1), clock=clock
        )
        watchdog.start()
        clock.advance(6.0)
        assert watchdog.on_wait_elapsed(pending=2) == REROUTE
        assert [f.rule for f in watchdog.findings] == ["WD001"]
        assert watchdog.findings[0].severity == "warning"
        # The reroute restarted the stall window: not stalled again yet.
        assert watchdog.on_wait_elapsed(pending=2) == WAIT
        assert watchdog.wait_timeout() == 5.0

    def test_second_stall_abandons_once_budget_spent(self):
        clock = FakeClock()
        watchdog = EnsembleWatchdog(
            WatchdogPolicy(heartbeat_timeout=5.0, max_reroutes=1), clock=clock
        )
        watchdog.start()
        clock.advance(6.0)
        assert watchdog.on_wait_elapsed(pending=2) == REROUTE
        clock.advance(6.0)
        assert watchdog.on_wait_elapsed(pending=2) == ABANDON
        assert [f.rule for f in watchdog.findings] == ["WD001", "WD002"]
        assert watchdog.findings[1].severity == "error"

    def test_zero_reroute_budget_is_single_strike(self):
        # The legacy ``chunk_timeout`` contract: first stall abandons.
        clock = FakeClock()
        watchdog = EnsembleWatchdog(
            WatchdogPolicy(heartbeat_timeout=0.5, max_reroutes=0), clock=clock
        )
        watchdog.start()
        clock.advance(1.0)
        assert watchdog.on_wait_elapsed(pending=4) == ABANDON
        assert [f.rule for f in watchdog.findings] == ["WD002"]

    def test_deadline_abandons_without_reroute(self):
        clock = FakeClock()
        watchdog = EnsembleWatchdog(
            WatchdogPolicy(heartbeat_timeout=50.0, deadline=8.0, max_reroutes=3),
            clock=clock,
        )
        watchdog.start()
        clock.advance(10.0)
        assert watchdog.on_wait_elapsed(pending=1) == ABANDON
        assert [f.rule for f in watchdog.findings] == ["WD003"]
        assert watchdog.reroutes == 0

    def test_deadline_outranks_stall(self):
        # Both limits blown at once: the deadline wins (no pointless
        # reroute into a phase that is already out of wall-clock budget).
        clock = FakeClock()
        watchdog = EnsembleWatchdog(
            WatchdogPolicy(heartbeat_timeout=2.0, deadline=3.0, max_reroutes=5),
            clock=clock,
        )
        watchdog.start()
        clock.advance(4.0)
        assert watchdog.on_wait_elapsed(pending=1) == ABANDON
        assert [f.rule for f in watchdog.findings] == ["WD003"]


def _stalling_wait(clock, stall_rounds, advance=10.0):
    """A ``wait`` stand-in: the first ``stall_rounds`` rounds complete
    nothing (advancing the fake clock past any stall window); later
    rounds hand every future back as done."""
    state = {"round": 0}

    def fake_wait(futures, timeout=None, return_when=None):
        state["round"] += 1
        if state["round"] <= stall_rounds:
            clock.advance(advance)
            return set(), set(futures)
        return set(futures), set()

    return fake_wait


class _FakeFuture:
    def __init__(self, fn):
        self._fn = fn

    def result(self):
        return self._fn()

    def cancel(self):
        return True


class _InProcessPool:
    """ProcessPoolExecutor stand-in running chunks in-process."""

    def __init__(self):
        self.submits = 0

    def __call__(self, max_workers=None):
        return self

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def submit(self, fn, payload):
        self.submits += 1
        return _FakeFuture(lambda: fn(payload))


class TestPooledIntegration:
    def _patch(self, monkeypatch, pool, fake_wait):
        monkeypatch.setattr(ensemble, "ProcessPoolExecutor", pool)
        monkeypatch.setattr(ensemble, "wait", fake_wait)

    def test_stall_reroutes_then_succeeds(self, monkeypatch):
        clock = FakeClock()
        pool = _InProcessPool()
        self._patch(monkeypatch, pool, _stalling_wait(clock, stall_rounds=1))
        watchdog = EnsembleWatchdog(
            WatchdogPolicy(heartbeat_timeout=5.0, max_reroutes=1), clock=clock
        )
        seeds = list(range(8))
        result = run_ensemble(_square, seeds, jobs=2, watchdog=watchdog)
        assert result == [s * s for s in seeds]
        assert [f.rule for f in watchdog.findings] == ["WD001"]
        # Every pending chunk was resubmitted once by the reroute.
        assert pool.submits == 2 * len(seed_chunks(seeds, 2))

    def test_exhausted_reroutes_fall_back_to_serial(self, monkeypatch):
        clock = FakeClock()
        self._patch(
            monkeypatch, _InProcessPool(), _stalling_wait(clock, stall_rounds=99)
        )
        watchdog = EnsembleWatchdog(
            WatchdogPolicy(heartbeat_timeout=5.0, max_reroutes=1), clock=clock
        )
        seeds = list(range(6))
        result = run_ensemble(_square, seeds, jobs=3, watchdog=watchdog)
        assert result == [s * s for s in seeds]
        assert [f.rule for f in watchdog.findings] == ["WD001", "WD002"]

    def test_deadline_abandons_pool(self, monkeypatch):
        clock = FakeClock()
        self._patch(
            monkeypatch, _InProcessPool(), _stalling_wait(clock, stall_rounds=99)
        )
        watchdog = EnsembleWatchdog(
            WatchdogPolicy(deadline=8.0), clock=clock
        )
        seeds = list(range(6))
        result = run_ensemble(_square, seeds, jobs=3, watchdog=watchdog)
        assert result == [s * s for s in seeds]
        assert [f.rule for f in watchdog.findings] == ["WD003"]

    def test_legacy_chunk_timeout_still_degrades_to_serial(self, monkeypatch):
        # chunk_timeout with no explicit watchdog builds the single-strike
        # one internally; a wedged pool must still degrade to serial.
        def no_progress(futures, timeout=None, return_when=None):
            return set(), set(futures)

        self._patch(monkeypatch, _InProcessPool(), no_progress)
        seeds = list(range(6))
        result = run_ensemble(_square, seeds, jobs=3, chunk_timeout=0.01)
        assert result == [s * s for s in seeds]

    def test_shutdown_request_cancels_pending(self, monkeypatch):
        self._patch(
            monkeypatch,
            _InProcessPool(),
            _stalling_wait(FakeClock(), stall_rounds=0),
        )
        shutdown = GracefulShutdown(install=False)
        shutdown.requested = True
        shutdown.signal_name = "SIGINT"
        with pytest.raises(InterruptedRunError):
            run_ensemble(_square, list(range(8)), jobs=2, shutdown=shutdown)

    def test_serial_path_honours_shutdown_between_seeds(self):
        shutdown = GracefulShutdown(install=False)
        calls = []

        def worker(seed):
            calls.append(seed)
            if len(calls) == 2:
                shutdown.requested = True
                shutdown.signal_name = "SIGTERM"
            return seed

        with pytest.raises(InterruptedRunError):
            run_ensemble(worker, list(range(5)), jobs=1, shutdown=shutdown)
        assert calls == [0, 1]  # stopped at the next seed boundary


class TestRunChunksPooledDirect:
    """`_run_chunks_pooled` driven directly (no run_ensemble wrapper):
    the reroute path must refill every slot exactly once, and the
    abandon path must leave unfinished slots as None for the caller's
    serial fallback."""

    def _patch(self, monkeypatch, pool, fake_wait):
        monkeypatch.setattr(ensemble, "ProcessPoolExecutor", pool)
        monkeypatch.setattr(ensemble, "wait", fake_wait)

    def test_reroute_refills_every_chunk_once(self, monkeypatch):
        clock = FakeClock()
        pool = _InProcessPool()
        self._patch(monkeypatch, pool, _stalling_wait(clock, stall_rounds=1))
        watchdog = EnsembleWatchdog(
            WatchdogPolicy(heartbeat_timeout=5.0, max_reroutes=1), clock=clock
        )
        chunks = [[0, 1], [2, 3], [4, 5]]
        delivered = []
        results = ensemble._run_chunks_pooled(
            _square,
            chunks,
            jobs=3,
            chunk_retries=1,
            chunk_timeout=None,
            backoff_base=0.0,
            watchdog=watchdog,
            on_chunk=lambda index, part: delivered.append((index, part)),
        )
        assert results == [[s * s for s in chunk] for chunk in chunks]
        assert watchdog.reroutes == 1
        assert [f.rule for f in watchdog.findings] == ["WD001"]
        # on_chunk fired exactly once per chunk despite the duplicate
        # submissions the reroute caused.
        assert sorted(index for index, _part in delivered) == [0, 1, 2]
        assert pool.submits == 2 * len(chunks)

    def test_abandon_leaves_unfilled_slots_none(self, monkeypatch):
        clock = FakeClock()
        self._patch(
            monkeypatch,
            _InProcessPool(),
            _stalling_wait(clock, stall_rounds=99),
        )
        watchdog = EnsembleWatchdog(
            WatchdogPolicy(heartbeat_timeout=5.0, max_reroutes=0), clock=clock
        )
        chunks = [[0], [1]]
        results = ensemble._run_chunks_pooled(
            _square,
            chunks,
            jobs=2,
            chunk_retries=0,
            chunk_timeout=None,
            backoff_base=0.0,
            watchdog=watchdog,
        )
        assert results == [None, None]
        assert [f.rule for f in watchdog.findings] == ["WD002"]
