"""Unit tests for sequential SGD, mini-batch SGD and the schedules."""

import numpy as np
import pytest

from repro.core.minibatch import run_minibatch_sgd
from repro.core.schedules import ConstantRate, EpochHalvingRate
from repro.core.sequential import run_sequential_sgd
from repro.errors import ConfigurationError
from repro.objectives.noise import GaussianNoise, ZeroNoise
from repro.objectives.quadratic import IsotropicQuadratic


class TestSchedules:
    def test_constant(self):
        schedule = ConstantRate(0.1)
        assert schedule.rate(0) == 0.1
        assert schedule.rate(10) == 0.1
        assert schedule(5) == 0.1

    def test_halving(self):
        schedule = EpochHalvingRate(0.8)
        assert schedule.rate(0) == 0.8
        assert schedule.rate(1) == 0.4
        assert schedule.rate(3) == 0.1

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            ConstantRate(0.0)
        with pytest.raises(ConfigurationError):
            EpochHalvingRate(-1.0)
        with pytest.raises(ConfigurationError):
            EpochHalvingRate(0.1).rate(-1)


class TestSequentialSGD:
    def test_noiseless_contraction_is_exact(self):
        objective = IsotropicQuadratic(dim=1, noise=ZeroNoise())
        result = run_sequential_sgd(
            objective, alpha=0.1, iterations=10, x0=np.array([1.0])
        )
        expected = 0.9 ** np.arange(11)
        np.testing.assert_allclose(result.distances, expected, rtol=1e-12)

    def test_converges_on_noisy_quadratic(self, quadratic_noisy, x0_small):
        result = run_sequential_sgd(
            quadratic_noisy, alpha=0.05, iterations=500, x0=x0_small,
            seed=0, epsilon=0.25,
        )
        assert result.succeeded
        assert result.final_distance < 1.0

    def test_hit_time_is_first_entry(self, quadratic_noisy, x0_small):
        result = run_sequential_sgd(
            quadratic_noisy, alpha=0.05, iterations=500, x0=x0_small,
            seed=1, epsilon=0.25,
        )
        hit = result.hit_time
        assert hit is not None
        assert result.distances[hit] ** 2 <= 0.25
        assert all(d**2 > 0.25 for d in result.distances[:hit])

    def test_stop_on_hit(self, quadratic_noisy, x0_small):
        full = run_sequential_sgd(
            quadratic_noisy, alpha=0.05, iterations=500, x0=x0_small,
            seed=2, epsilon=0.25,
        )
        stopped = run_sequential_sgd(
            quadratic_noisy, alpha=0.05, iterations=500, x0=x0_small,
            seed=2, epsilon=0.25, stop_on_hit=True,
        )
        assert stopped.hit_time == full.hit_time
        assert stopped.iterations == full.hit_time

    def test_deterministic_under_seed(self, quadratic_noisy, x0_small):
        a = run_sequential_sgd(quadratic_noisy, 0.05, 50, x0_small, seed=3)
        b = run_sequential_sgd(quadratic_noisy, 0.05, 50, x0_small, seed=3)
        np.testing.assert_array_equal(a.distances, b.distances)

    def test_x0_at_optimum_hits_immediately(self):
        objective = IsotropicQuadratic(dim=2, noise=ZeroNoise())
        result = run_sequential_sgd(
            objective, alpha=0.1, iterations=5, x0=np.zeros(2), epsilon=0.1
        )
        assert result.hit_time == 0

    def test_invalid_args(self, quadratic_noisy):
        with pytest.raises(ConfigurationError):
            run_sequential_sgd(quadratic_noisy, alpha=0.0, iterations=10)
        with pytest.raises(ConfigurationError):
            run_sequential_sgd(quadratic_noisy, alpha=0.1, iterations=-1)
        with pytest.raises(ConfigurationError):
            run_sequential_sgd(
                quadratic_noisy, alpha=0.1, iterations=10, stop_on_hit=True
            )
        with pytest.raises(ConfigurationError):
            run_sequential_sgd(
                quadratic_noisy, alpha=0.1, iterations=10, x0=np.zeros(5)
            )


class TestMinibatch:
    def test_batching_reduces_variance(self):
        objective = IsotropicQuadratic(dim=2, noise=GaussianNoise(1.0))
        x0 = np.array([2.0, 2.0])
        # Compare terminal distance distributions: bigger batch = closer.
        small = [
            run_minibatch_sgd(objective, 0.1, 200, 1, x0=x0, seed=s).final_distance
            for s in range(10)
        ]
        large = [
            run_minibatch_sgd(objective, 0.1, 200, 16, x0=x0, seed=s).final_distance
            for s in range(10)
        ]
        assert np.mean(large) < np.mean(small)

    def test_noiseless_matches_sequential(self):
        objective = IsotropicQuadratic(dim=1, noise=ZeroNoise())
        batch = run_minibatch_sgd(objective, 0.1, 20, 4, x0=np.array([1.0]))
        seq = run_sequential_sgd(objective, 0.1, 20, x0=np.array([1.0]))
        np.testing.assert_allclose(batch.distances, seq.distances)

    def test_hit_time(self):
        objective = IsotropicQuadratic(dim=1, noise=ZeroNoise())
        result = run_minibatch_sgd(
            objective, 0.5, 20, 2, x0=np.array([4.0]), epsilon=1.0
        )
        assert result.hit_time is not None

    def test_invalid_args(self, quadratic_noisy):
        with pytest.raises(ConfigurationError):
            run_minibatch_sgd(quadratic_noisy, 0.0, 10, 2)
        with pytest.raises(ConfigurationError):
            run_minibatch_sgd(quadratic_noisy, 0.1, -1, 2)
        with pytest.raises(ConfigurationError):
            run_minibatch_sgd(quadratic_noisy, 0.1, 10, 0)
