"""Tests for the Theorem 6.5 auxiliary process V_t and the
contention-maximizing adversary."""

import numpy as np
import pytest

from repro.core.epoch_sgd import run_lock_free_sgd
from repro.core.results import accumulator_trajectory
from repro.errors import ConfigurationError
from repro.objectives.noise import GaussianNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.sched.contention_max import ContentionMaximizer
from repro.sched.random_sched import RandomScheduler
from repro.theory.async_martingale import evaluate_async_process
from repro.theory.bounds import corollary_6_7_step_size
from repro.theory.contention import tau_avg
from repro.theory.martingale import ConvexRateSupermartingale


def _run_and_evaluate(scheduler, iterations=120, epsilon=0.05, seed=2):
    objective = IsotropicQuadratic(dim=2, noise=GaussianNoise(0.3))
    x0 = np.array([2.0, -2.0])
    radius = 2.0 * objective.distance_to_opt(x0)
    second_moment = objective.second_moment_bound(radius)
    # A deliberately small alpha so the Thm 6.5 discount stays positive.
    alpha = corollary_6_7_step_size(
        objective.strong_convexity, second_moment,
        objective.lipschitz_expected, 64, 4, 2, epsilon,
    )
    result = run_lock_free_sgd(
        objective, scheduler, num_threads=4, step_size=alpha,
        iterations=iterations, x0=x0, seed=seed,
    )
    process = ConvexRateSupermartingale(
        epsilon=epsilon,
        alpha=alpha,
        strong_convexity=objective.strong_convexity,
        second_moment=second_moment,
        x_star=objective.x_star,
    )
    trajectory = accumulator_trajectory(x0, result.records)
    trace = evaluate_async_process(
        result.records, trajectory, process, objective.lipschitz_expected
    )
    return result, trace


class TestAsyncProcess:
    def test_v0_equals_w0(self):
        _, trace = _run_and_evaluate(RandomScheduler(seed=1))
        assert trace.v[0] == pytest.approx(trace.w[0])
        assert trace.correction[0] == 0.0

    def test_correction_nonnegative(self):
        _, trace = _run_and_evaluate(RandomScheduler(seed=2))
        assert np.all(trace.correction >= 0.0)

    def test_discount_positive_under_prescribed_alpha(self):
        _, trace = _run_and_evaluate(RandomScheduler(seed=3))
        assert 0.0 < trace.discount <= 1.0

    def test_failure_lower_bound(self):
        """On a run that never hits (tiny epsilon), the proof's terminal
        inequality V_T >= T (1 - alpha^2 H L M C sqrt(d)) must hold."""
        _, trace = _run_and_evaluate(
            RandomScheduler(seed=4), iterations=60, epsilon=1e-6
        )
        assert trace.hit_time is None
        assert trace.failure_lower_bound_holds()

    def test_frozen_after_success(self):
        result, trace = _run_and_evaluate(
            RandomScheduler(seed=5), iterations=400, epsilon=0.5
        )
        if trace.hit_time is not None:
            frozen = trace.v[trace.hit_time]
            assert np.all(trace.v[trace.hit_time:] == frozen)
        assert trace.failure_lower_bound_holds()

    def test_trajectory_shape_validated(self):
        result, trace = _run_and_evaluate(RandomScheduler(seed=6))
        process = ConvexRateSupermartingale(
            epsilon=0.05, alpha=1e-3, strong_convexity=1.0,
            second_moment=10.0, x_star=np.zeros(2),
        )
        with pytest.raises(ConfigurationError):
            evaluate_async_process(
                result.records, np.zeros((3, 2)), process, 1.0
            )


class TestContentionMaximizer:
    def test_inflates_tau_avg_toward_ceiling(self):
        objective = IsotropicQuadratic(dim=2, noise=GaussianNoise(0.3))
        x0 = np.array([1.5, -1.5])
        n = 4
        benign = run_lock_free_sgd(
            objective, RandomScheduler(seed=7), num_threads=n,
            step_size=0.01, iterations=200, x0=x0, seed=7,
        )
        hostile = run_lock_free_sgd(
            objective, ContentionMaximizer(), num_threads=n,
            step_size=0.01, iterations=200, x0=x0, seed=7,
        )
        assert tau_avg(hostile.records) > tau_avg(benign.records)
        # ... and still within the Gibson-Gramoli ceiling.
        assert tau_avg(hostile.records) <= 2 * n

    def test_run_completes(self):
        objective = IsotropicQuadratic(dim=2, noise=GaussianNoise(0.3))
        result = run_lock_free_sgd(
            objective, ContentionMaximizer(), num_threads=3,
            step_size=0.02, iterations=90, x0=np.array([1.0, 1.0]), seed=8,
        )
        assert result.iterations == 90

    def test_lemma_bounds_survive_the_worst_case(self):
        from repro.theory.contention import lemma_6_2_violations, lemma_6_4_bound

        objective = IsotropicQuadratic(dim=3, noise=GaussianNoise(0.3))
        n = 5
        result = run_lock_free_sgd(
            objective, ContentionMaximizer(), num_threads=n,
            step_size=0.02, iterations=150, x0=np.full(3, 1.5), seed=9,
        )
        assert lemma_6_2_violations(result.records, 1, n) == []
        max_sum, bound = lemma_6_4_bound(result.records)
        assert max_sum <= bound + 1e-9

    def test_single_thread_degenerates_gracefully(self):
        objective = IsotropicQuadratic(dim=2, noise=GaussianNoise(0.3))
        result = run_lock_free_sgd(
            objective, ContentionMaximizer(), num_threads=1,
            step_size=0.05, iterations=20, x0=np.array([1.0, 1.0]), seed=10,
        )
        assert result.iterations == 20
