"""Certify every shipped objective against the paper's assumptions.

These are the library's contract tests: the bound calculators consume
(c, L, M²) from objectives, so each objective's hand-derived constants
are validated numerically via the Section-3 inequalities.
"""

import numpy as np
import pytest

from repro.errors import AssumptionViolationError
from repro.objectives.datasets import make_classification, make_regression
from repro.objectives.least_squares import LeastSquares, RidgeRegression
from repro.objectives.logistic import LogisticRegression
from repro.objectives.noise import GaussianNoise
from repro.objectives.quadratic import IsotropicQuadratic, Quadratic
from repro.objectives.sparse import SeparableQuadratic
from repro.theory.assumptions import (
    AssumptionReport,
    certify_objective,
    verify_strong_convexity,
)


def _objectives():
    design, targets, _ = make_regression(40, 3, noise_sigma=0.2, seed=2)
    cls_design, labels, _ = make_classification(40, 3, seed=2)
    return [
        IsotropicQuadratic(dim=3, curvature=1.5, noise=GaussianNoise(0.5)),
        Quadratic(np.diag([0.5, 1.0, 2.0]), noise=GaussianNoise(0.5)),
        LeastSquares(design, targets),
        RidgeRegression(design, targets, regularization=0.3),
        LogisticRegression(cls_design, labels, regularization=0.2),
        SeparableQuadratic(np.array([1.0, 2.0, 0.5]), noise_sigma=0.2),
    ]


@pytest.mark.parametrize(
    "objective", _objectives(), ids=lambda o: type(o).__name__
)
def test_certification_passes(objective):
    report = certify_objective(objective, radius=2.0, seed=0)
    assert isinstance(report, AssumptionReport)
    report.raise_if_failed()
    assert report.ok


def test_report_raises_on_failure():
    report = AssumptionReport(
        objective="fake",
        radius=1.0,
        strong_convexity_margin=-1.0,
        lipschitz_margin=0.0,
        second_moment_margin=0.0,
        unbiasedness_error=0.0,
        ok=False,
    )
    with pytest.raises(AssumptionViolationError):
        report.raise_if_failed()


def test_strong_convexity_verifier_detects_lies():
    """An objective claiming a larger c than it has must fail."""

    class Liar(IsotropicQuadratic):
        @property
        def strong_convexity(self):
            return 10.0 * self.curvature

    liar = Liar(dim=2, curvature=1.0, noise=GaussianNoise(0.1))
    margin = verify_strong_convexity(liar, radius=2.0)
    assert margin < -0.5
