"""Tests for the durable-IO layer: atomic writes, the crash-safe run
journal (torn-tail tolerance, fingerprint pinning), and torn-tail
tolerance in the trace loader."""

import json
import os

import pytest

from repro.durable.atomic_io import append_line, atomic_write
from repro.durable.journal import RunJournal, config_fingerprint
from repro.errors import ConfigurationError, ResumeMismatchError
from repro.metrics.serialize import dump_records, load_records
from repro.runtime.events import IterationRecord


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        path = tmp_path / "artifact.txt"
        atomic_write(path, "hello\n")
        assert path.read_text() == "hello\n"

    def test_overwrites_atomically(self, tmp_path):
        path = tmp_path / "artifact.txt"
        atomic_write(path, "old\n")
        atomic_write(path, b"new\n")
        assert path.read_bytes() == b"new\n"

    def test_no_temp_litter_on_success(self, tmp_path):
        atomic_write(tmp_path / "a.json", "{}\n")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["a.json"]

    def test_failure_leaves_previous_file_and_no_litter(self, tmp_path):
        path = tmp_path / "a.json"
        atomic_write(path, "previous\n")

        with pytest.raises(TypeError):
            atomic_write(path, 12345)  # not str/bytes: write() fails
        assert path.read_text() == "previous\n"
        assert sorted(p.name for p in tmp_path.iterdir()) == ["a.json"]


class TestRunJournal:
    FP = config_fingerprint({"specs": ["prob-crash"], "seeds": [1, 2, 3]})

    def test_round_trip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with RunJournal.open(path, self.FP) as journal:
            journal.record("0:prob-crash", 1, {"distance": 0.25})
            journal.record("0:prob-crash", 2, {"distance": 0.5})
            journal.record("1:stall", 1, {"distance": 0.75})
        resumed = RunJournal.open(path, self.FP, resume=True)
        assert resumed.completed("0:prob-crash") == {
            1: {"distance": 0.25},
            2: {"distance": 0.5},
        }
        assert resumed.completed("1:stall") == {1: {"distance": 0.75}}
        assert resumed.total_completed == 3
        assert resumed.findings == []

    def test_record_is_idempotent(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with RunJournal.open(path, self.FP) as journal:
            journal.record("ns", 7, {"v": 1})
            journal.record("ns", 7, {"v": 2})  # duplicate: ignored
        lines = path.read_text().splitlines()
        assert len(lines) == 2  # header + one record
        assert RunJournal.open(path, self.FP, resume=True).completed("ns") == {
            7: {"v": 1}
        }

    def test_fresh_open_discards_existing(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with RunJournal.open(path, self.FP) as journal:
            journal.record("ns", 1, {})
        fresh = RunJournal.open(path, self.FP, resume=False)
        assert fresh.total_completed == 0

    def test_resume_missing_file_starts_fresh(self, tmp_path):
        journal = RunJournal.open(tmp_path / "nope.jsonl", self.FP, resume=True)
        assert journal.total_completed == 0

    def test_torn_tail_dropped_with_finding(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with RunJournal.open(path, self.FP) as journal:
            journal.record("ns", 1, {"ok": True})
        with path.open("a") as handle:
            handle.write('{"kind": "result", "ns": "ns", "se')  # torn append
        resumed = RunJournal.open(path, self.FP, resume=True)
        assert resumed.completed("ns") == {1: {"ok": True}}
        assert [f.rule for f in resumed.findings] == ["DUR001"]
        assert resumed.findings[0].severity == "warning"
        # The journal stays usable: new records append cleanly.
        resumed.record("ns", 2, {"ok": True})
        resumed.close()

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with RunJournal.open(path, self.FP) as journal:
            journal.record("ns", 1, {})
        lines = path.read_text().splitlines()
        lines[1] = "{corrupt"
        lines.append(json.dumps({"kind": "result", "ns": "ns", "seed": 2, "payload": {}}))
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ConfigurationError, match="mid-file"):
            RunJournal.open(path, self.FP, resume=True)

    def test_fingerprint_mismatch_refuses_resume(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        RunJournal.open(path, self.FP).close()
        other = config_fingerprint({"specs": ["stall"], "seeds": [9]})
        with pytest.raises(ResumeMismatchError):
            RunJournal.open(path, other, resume=True)

    def test_headerless_file_rejected(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text(
            json.dumps({"kind": "result", "ns": "n", "seed": 1, "payload": {}})
            + "\n"
        )
        with pytest.raises(ConfigurationError, match="header"):
            RunJournal.open(path, self.FP, resume=True)

    def test_unknown_kinds_ignored(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with RunJournal.open(path, self.FP) as journal:
            journal.record("ns", 1, {})
        with path.open("a") as handle:
            handle.write(json.dumps({"kind": "future-extension"}) + "\n")
        assert RunJournal.open(path, self.FP, resume=True).total_completed == 1

    def test_fingerprint_is_canonical(self):
        assert config_fingerprint({"b": 1, "a": 2}) == config_fingerprint(
            {"a": 2, "b": 1}
        )
        assert config_fingerprint({"a": 1}) != config_fingerprint({"a": 2})


def _trace(n=3):
    return [
        IterationRecord(
            time=10 * i,
            thread_id=i % 2,
            index=i,
            epoch=0,
            start_time=10 * i,
            read_start_time=10 * i,
            read_end_time=10 * i + 1,
            first_update_time=10 * i + 2,
            end_time=10 * i + 3,
            step_size=0.05,
        )
        for i in range(n)
    ]


class TestLoadRecordsTornTail:
    def test_torn_tail_tolerated_with_finding(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        dump_records(_trace(3), path)
        with path.open("a") as handle:
            handle.write('{"time": 99, "thread')  # no newline: torn append
        findings = []
        records = load_records(path, findings=findings)
        assert len(records) == 3
        assert [f.rule for f in findings] == ["DUR002"]
        assert findings[0].severity == "warning"

    def test_torn_tail_warns_without_findings_list(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        dump_records(_trace(2), path)
        with path.open("a") as handle:
            handle.write("{torn")
        with pytest.warns(UserWarning, match="DUR002"):
            assert len(load_records(path)) == 2

    def test_complete_corrupt_line_still_raises(self, tmp_path):
        # A newline-terminated invalid line is corruption, not a torn
        # append — the loader must not silently drop it.
        path = tmp_path / "trace.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(ConfigurationError, match="trace.jsonl:1"):
            load_records(path)

    def test_mid_file_corruption_still_raises(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        dump_records(_trace(2), path)
        lines = path.read_text().splitlines()
        lines[0] = "{corrupt"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ConfigurationError, match="trace.jsonl:1"):
            load_records(path)

    def test_dump_is_atomic(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert dump_records(_trace(4), path) == 4
        assert sorted(p.name for p in tmp_path.iterdir()) == ["trace.jsonl"]
        assert len(load_records(path)) == 4


class TestAppendLine:
    def test_lines_survive_and_parse(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with path.open("w") as handle:
            append_line(handle, json.dumps({"a": 1}))
            append_line(handle, json.dumps({"a": 2}))
            # fsync happened before return: the bytes are on disk even
            # though the handle is still open.
            with path.open() as reader:
                assert len(reader.read().splitlines()) == 2
        assert os.path.getsize(path) > 0
