"""Unit tests for the metrics registry (repro.obs.registry)."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.registry import (
    NULL,
    TAU_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    live_registry,
)


class TestCounter:
    def test_inc_accumulates(self):
        counter = Counter("repro_x_total")
        counter.inc()
        counter.inc(41)
        assert counter.sample() == 42

    def test_negative_inc_rejected(self):
        with pytest.raises(ConfigurationError):
            Counter("repro_x_total").inc(-1)


class TestGauge:
    def test_set_and_max(self):
        gauge = Gauge("repro_tau_max")
        gauge.set(3)
        gauge.max(7)
        gauge.max(5)  # running max keeps 7
        assert gauge.sample() == 7


class TestHistogram:
    def test_buckets_are_cumulative_with_inf(self):
        histogram = Histogram("repro_tau_delay", buckets=(1, 4, 16))
        histogram.observe_many([0, 1, 3, 5, 100])
        sample = histogram.sample()
        assert sample["buckets"] == [[1, 2], [4, 3], [16, 4], ["+Inf", 5]]
        assert sample["count"] == 5
        assert sample["sum"] == pytest.approx(109.0)

    def test_bounds_must_increase(self):
        with pytest.raises(ConfigurationError):
            Histogram("bad", buckets=(4, 4, 16))
        with pytest.raises(ConfigurationError):
            Histogram("bad", buckets=())


class TestRegistry:
    def test_accessors_memoize(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_sim_steps_total", "steps")
        b = registry.counter("repro_sim_steps_total")
        assert a is b

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_thing")
        with pytest.raises(ConfigurationError):
            registry.gauge("repro_thing")

    def test_instruments_name_sorted(self):
        registry = MetricsRegistry()
        registry.counter("repro_b_total")
        registry.gauge("repro_a")
        assert [i.name for i in registry.instruments()] == [
            "repro_a",
            "repro_b_total",
        ]

    def test_snapshot_excludes_wall_clock_metrics_by_default(self):
        registry = MetricsRegistry()
        registry.counter("repro_steps_total").inc(5)
        registry.counter(
            "repro_retries_total", deterministic=False
        ).inc(2)
        assert registry.snapshot() == {"repro_steps_total": 5}
        everything = registry.snapshot(deterministic_only=False)
        assert everything["repro_retries_total"] == 2

    def test_render_prometheus(self):
        registry = MetricsRegistry()
        registry.counter("repro_steps_total", "steps run").inc(9)
        registry.histogram("repro_tau_delay", buckets=(1, 2)).observe(1)
        text = registry.render_prometheus()
        assert "# HELP repro_steps_total steps run" in text
        assert "# TYPE repro_steps_total counter" in text
        assert "repro_steps_total 9" in text
        assert 'repro_tau_delay_bucket{le="1"} 1' in text
        assert "repro_tau_delay_count 1" in text


class TestNullBackend:
    def test_null_accepts_everything_records_nothing(self):
        NULL.counter("a").inc(5)
        NULL.gauge("b").max(3)
        NULL.histogram("c", buckets=TAU_BUCKETS).observe(1)
        assert NULL.instruments() == []
        assert NULL.snapshot() == {}
        assert NULL.render_prometheus() == ""

    def test_null_is_flagged(self):
        assert NullMetricsRegistry.null is True
        assert MetricsRegistry.null is False


class TestLiveRegistry:
    def test_none_and_null_normalize_to_none(self):
        assert live_registry(None) is None
        assert live_registry(NULL) is None

    def test_live_passes_through(self):
        registry = MetricsRegistry()
        assert live_registry(registry) is registry
