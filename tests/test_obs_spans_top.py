"""Tests for span tracing (repro.obs.spans) and the text views
(repro.obs.top)."""

import io
import json

from repro.obs.registry import MetricsRegistry
from repro.obs.spans import (
    SpanRecorder,
    get_span_recorder,
    set_span_recorder,
    trace_span,
)
from repro.obs.top import (
    TopView,
    ascii_bar,
    render_histogram_rows,
    render_metrics_block,
    render_snapshot_lines,
)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        self.now += 0.5
        return self.now


class TestSpanRecorder:
    def test_nesting_assigns_parent_ids(self):
        recorder = SpanRecorder(clock=FakeClock())
        with recorder.span("outer", spec="mixed"):
            with recorder.span("inner"):
                pass
        outer, inner = recorder.spans
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert outer.args == {"spec": "mixed"}
        assert inner.duration == 0.5
        assert outer.duration == 1.5

    def test_chrome_trace_format(self):
        recorder = SpanRecorder(clock=FakeClock())
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
        trace = recorder.chrome_trace()
        events = trace["traceEvents"]
        assert [e["name"] for e in events] == ["outer", "inner"]
        assert all(e["ph"] == "X" for e in events)
        assert events[0]["ts"] == 0.0  # relative to first span
        assert events[0]["dur"] == 1.5e6  # microseconds
        assert events[1]["args"]["parent_id"] == events[0]["args"]["span_id"]

    def test_write_chrome_trace(self, tmp_path):
        recorder = SpanRecorder(clock=FakeClock())
        with recorder.span("only"):
            pass
        out = tmp_path / "trace.json"
        recorder.write_chrome_trace(out)
        payload = json.loads(out.read_text())
        assert len(payload["traceEvents"]) == 1
        assert payload["displayTimeUnit"] == "ms"

    def test_empty_recorder_trace(self):
        assert SpanRecorder().chrome_trace()["traceEvents"] == []


class TestTraceSpan:
    def test_noop_without_recorder(self):
        assert get_span_recorder() is None
        with trace_span("anything", key=1) as span:
            assert span is None

    def test_records_on_active_recorder(self):
        recorder = SpanRecorder(clock=FakeClock())
        set_span_recorder(recorder)
        try:
            with trace_span("epoch_sgd.run", threads=4) as span:
                assert span is not None
        finally:
            set_span_recorder(None)
        assert [s.name for s in recorder.spans] == ["epoch_sgd.run"]
        assert recorder.spans[0].args == {"threads": 4}
        assert get_span_recorder() is None


class TestAsciiRendering:
    def test_ascii_bar(self):
        assert ascii_bar(0, 10) == ""
        assert ascii_bar(10, 10, width=4) == "####"
        assert ascii_bar(1, 1000, width=4) == "#"  # non-zero always shows

    def test_render_histogram_rows_decumulates(self):
        rows = render_histogram_rows([[1, 2], [4, 3], ["+Inf", 5]])
        assert len(rows) == 3
        assert "le 1" in rows[0] and "2" in rows[0]
        # de-cumulated: bucket 4 holds 1 observation, +Inf holds 2
        assert "1" in rows[1]

    def test_render_metrics_block_summarizes_window_counts(self):
        rows = render_metrics_block(
            {
                "tau_max": 7,
                "window_counts": [0, 2, 1],
                "tau_histogram": [[1, 3], ["+Inf", 4]],
            }
        )
        text = "\n".join(rows)
        assert "tau_max: 7" in text
        assert "window_counts: 3 window(s), max 2" in text
        assert "tau_histogram:" in text

    def test_render_snapshot_lines_kinds(self):
        text = render_snapshot_lines(
            [
                {
                    "kind": "cell",
                    "spec": "mixed",
                    "seed": 3,
                    "converged": True,
                    "metrics": {"iterations": 10, "tau_max": 2},
                },
                {"kind": "aggregate", "metrics": {"cells": 1}},
                {
                    "kind": "experiment",
                    "id": "E4",
                    "passed": True,
                    "metrics": {"tau_max": 5},
                },
                {
                    "kind": "run",
                    "label": "e1/random/seed=1",
                    "findings": 0,
                    "certificates_ok": True,
                },
            ]
        )
        assert "cell spec=mixed seed=3" in text
        assert "aggregate" in text
        assert "experiment E4  passed=True" in text
        assert "run e1/random/seed=1" in text
        assert "4 snapshot line(s)" in text


class TestTopView:
    def _view(self, interval=2.0):
        registry = MetricsRegistry()
        registry.counter("repro_steps_total").inc(7)
        registry.histogram("repro_tau_delay", buckets=(1, 2)).observe(1)
        stream = io.StringIO()
        view = TopView(
            registry,
            interval=interval,
            stream=stream,
            clock=FakeClock(),
            title="repro test",
        )
        return view, stream

    def test_render_text_includes_instruments(self):
        view, _stream = self._view()
        text = view.render_text()
        assert "-- repro test --" in text
        assert "repro_steps_total 7" in text
        assert "repro_tau_delay (count=1)" in text

    def test_interval_gating(self):
        view, stream = self._view(interval=2.0)
        assert view.maybe_render() is True  # first render always fires
        assert view.maybe_render() is False  # clock advanced only 0.5s
        assert view.maybe_render(force=True) is True
        assert view.renders == 2
        assert stream.getvalue().count("-- repro test --") == 2
