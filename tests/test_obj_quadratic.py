"""Unit tests for the quadratic objectives and noise models."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.objectives.noise import GaussianNoise, ZeroNoise
from repro.objectives.quadratic import IsotropicQuadratic, Quadratic
from repro.runtime.rng import RngStream


class TestNoiseModels:
    def test_gaussian_second_moment(self):
        noise = GaussianNoise(2.0)
        assert noise.second_moment(3) == pytest.approx(12.0)

    def test_gaussian_draw_statistics(self):
        noise = GaussianNoise(1.5)
        rng = RngStream.root(0)
        draws = np.array([noise.draw(rng, 4) for _ in range(4000)])
        assert abs(draws.mean()) < 0.05
        assert abs(draws.std() - 1.5) < 0.05

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            GaussianNoise(-1.0)

    def test_zero_noise(self):
        noise = ZeroNoise()
        rng = RngStream.root(0)
        np.testing.assert_array_equal(noise.draw(rng, 5), np.zeros(5))
        assert noise.second_moment(5) == 0.0


class TestIsotropicQuadratic:
    def test_value_and_gradient(self):
        objective = IsotropicQuadratic(dim=2, curvature=2.0, noise=ZeroNoise())
        x = np.array([1.0, -1.0])
        assert objective.value(x) == pytest.approx(2.0)
        np.testing.assert_allclose(objective.gradient(x), [2.0, -2.0])

    def test_shifted_optimum(self):
        x_star = np.array([3.0, 4.0])
        objective = IsotropicQuadratic(dim=2, x_star=x_star, noise=ZeroNoise())
        assert objective.value(x_star) == 0.0
        np.testing.assert_allclose(objective.gradient(x_star), np.zeros(2))
        assert objective.distance_to_opt(np.zeros(2)) == pytest.approx(5.0)

    def test_constants(self):
        objective = IsotropicQuadratic(dim=3, curvature=2.5,
                                       noise=GaussianNoise(1.0))
        assert objective.strong_convexity == 2.5
        assert objective.lipschitz_expected == 2.5
        assert objective.second_moment_bound(2.0) == pytest.approx(
            (2.5 * 2.0) ** 2 + 3.0
        )

    def test_oracle_unbiased(self):
        objective = IsotropicQuadratic(dim=2, noise=GaussianNoise(1.0))
        rng = RngStream.root(1)
        x = np.array([1.0, 2.0])
        mean = np.mean(
            [objective.stochastic_gradient(x, rng)[0] for _ in range(4000)], axis=0
        )
        np.testing.assert_allclose(mean, objective.gradient(x), atol=0.08)

    def test_oracle_coupled_lipschitz_is_exact(self):
        objective = IsotropicQuadratic(dim=2, curvature=1.5,
                                       noise=GaussianNoise(2.0))
        rng = RngStream.root(2)
        x, y = np.array([1.0, 0.0]), np.array([0.0, 2.0])
        sample = objective.draw_sample(rng)
        gap = objective.grad_at_sample(x, sample) - objective.grad_at_sample(y, sample)
        # Noise cancels exactly: |g(x)-g(y)| = c|x-y|.
        assert np.linalg.norm(gap) == pytest.approx(
            1.5 * np.linalg.norm(x - y)
        )

    def test_in_success_region(self):
        objective = IsotropicQuadratic(dim=1, noise=ZeroNoise())
        assert objective.in_success_region(np.array([0.5]), epsilon=0.25)
        assert not objective.in_success_region(np.array([0.6]), epsilon=0.25)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            IsotropicQuadratic(dim=0)
        with pytest.raises(ConfigurationError):
            IsotropicQuadratic(dim=2, curvature=0.0)
        with pytest.raises(ConfigurationError):
            IsotropicQuadratic(dim=2, x_star=np.zeros(3))


class TestGeneralQuadratic:
    def test_eigen_constants(self):
        matrix = np.diag([1.0, 4.0])
        objective = Quadratic(matrix, noise=ZeroNoise())
        assert objective.strong_convexity == pytest.approx(1.0)
        assert objective.lipschitz_expected == pytest.approx(4.0)
        assert objective.condition_number == pytest.approx(4.0)

    def test_value_gradient_consistency(self):
        rng = np.random.default_rng(0)
        raw = rng.normal(size=(3, 3))
        matrix = raw @ raw.T + 0.5 * np.eye(3)
        objective = Quadratic(matrix, noise=ZeroNoise())
        x = rng.normal(size=3)
        # Finite-difference check of the gradient.
        eps = 1e-6
        for j in range(3):
            e = np.zeros(3)
            e[j] = eps
            numeric = (objective.value(x + e) - objective.value(x - e)) / (2 * eps)
            assert numeric == pytest.approx(objective.gradient(x)[j], rel=1e-4)

    def test_strong_convexity_inequality_holds(self):
        matrix = np.diag([0.5, 2.0])
        objective = Quadratic(matrix, noise=ZeroNoise())
        rng = np.random.default_rng(1)
        for _ in range(20):
            x, y = rng.normal(size=2), rng.normal(size=2)
            lhs = (x - y) @ (objective.gradient(x) - objective.gradient(y))
            assert lhs >= 0.5 * np.sum((x - y) ** 2) - 1e-12

    def test_rejects_bad_matrices(self):
        with pytest.raises(ConfigurationError):
            Quadratic(np.array([[1.0, 2.0]]))  # not square
        with pytest.raises(ConfigurationError):
            Quadratic(np.array([[1.0, 1.0], [0.0, 1.0]]))  # not symmetric
        with pytest.raises(ConfigurationError):
            Quadratic(np.diag([1.0, -1.0]))  # not PSD

    def test_second_moment_bound_covers_samples(self):
        objective = Quadratic(np.diag([1.0, 3.0]), noise=GaussianNoise(0.5))
        rng = RngStream.root(5)
        radius = 2.0
        bound = objective.second_moment_bound(radius)
        # Sample on the sphere of the operating radius.
        x = objective.x_star + np.array([radius, 0.0])
        estimate = np.mean(
            [
                np.sum(objective.stochastic_gradient(x, rng)[0] ** 2)
                for _ in range(2000)
            ]
        )
        assert estimate <= bound * 1.05
