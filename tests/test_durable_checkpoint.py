"""Tests for simulator checkpoints: capture at run_fast chunk / FullSGD
epoch boundaries, restore by certified prefix replay, direct state
restore, and deterministic serialization."""

import pickle

import numpy as np
import pytest

from repro.core.epoch_sgd import EpochSGDProgram
from repro.core.full_sgd import FullSGD
from repro.durable.checkpoint import Checkpoint, state_digest
from repro.errors import (
    CheckpointRestoreError,
    ConfigurationError,
    SchedulerError,
)
from repro.objectives.noise import GaussianNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.runtime.simulator import Simulator
from repro.sched.random_sched import RandomScheduler
from repro.sched.replay import PrefixReplayScheduler, RecordingScheduler
from repro.shm.array import AtomicArray
from repro.shm.counter import AtomicCounter
from repro.shm.memory import SharedMemory

OBJECTIVE = IsotropicQuadratic(dim=2, noise=GaussianNoise(0.2))


def build_sim(scheduler, seed=9, threads=3, iterations=60):
    """A standard Algorithm-1 workload simulator (fresh, at t=0)."""
    memory = SharedMemory(record_log=False)
    model = AtomicArray.allocate(memory, 2, name="model")
    model.load(np.full(2, 2.0))
    counter = AtomicCounter.allocate(memory, name="iteration_counter")
    sim = Simulator(memory, scheduler, seed=seed)
    for index in range(threads):
        sim.spawn(
            EpochSGDProgram(
                model=model,
                counter=counter,
                objective=OBJECTIVE,
                step_size=0.05,
                max_iterations=iterations,
            ),
            name=f"worker-{index}",
        )
    return sim


class TestCaptureAndVerify:
    def test_capture_records_prefix_under_recording_scheduler(self):
        sim = build_sim(RecordingScheduler(RandomScheduler(seed=9)))
        sim.run_fast(max_steps=200)
        checkpoint = Checkpoint.capture(sim, label="chunk-1")
        assert checkpoint.time == 200
        assert len(checkpoint.schedule) == 200
        assert checkpoint.label == "chunk-1"
        assert checkpoint.verify(sim) == []
        assert checkpoint.digest() == state_digest(sim)

    def test_verify_flags_each_divergence_kind(self):
        sim = build_sim(RecordingScheduler(RandomScheduler(seed=9)))
        sim.run_fast(max_steps=100)
        checkpoint = Checkpoint.capture(sim)
        sim.run_fast(max_steps=50)  # walk past the cut
        rules = {f.rule for f in checkpoint.verify(sim)}
        assert "CKPT001" in rules  # clock moved
        assert "CKPT002" in rules or "CKPT003" in rules  # state moved

    def test_state_only_ignores_thread_and_seq(self):
        sim = build_sim(RecordingScheduler(RandomScheduler(seed=9)))
        sim.run_fast(max_steps=100)
        checkpoint = Checkpoint.capture(sim)
        findings = checkpoint.verify(sim, state_only=True)
        assert findings == []


class TestRestoreByReplay:
    def test_resumed_run_is_byte_identical(self):
        recording = RecordingScheduler(RandomScheduler(seed=9))
        sim = build_sim(recording)
        sim.run_fast(max_steps=300)
        checkpoint = Checkpoint.capture(sim)
        sim.run_fast()
        reference_digest = state_digest(sim)
        reference_model = sim.memory.peek_range(
            sim.memory.segment("model").base, 2
        )

        restored = checkpoint.restore_by_replay(
            build_sim, RandomScheduler(seed=9)
        )
        assert state_digest(restored) == checkpoint.digest()
        restored.run_fast()
        assert state_digest(restored) == reference_digest
        assert (
            restored.memory.peek_range(
                restored.memory.segment("model").base, 2
            )
            == reference_model
        )

    def test_verify_mode_certifies_determinism(self):
        recording = RecordingScheduler(RandomScheduler(seed=9))
        sim = build_sim(recording)
        sim.run_fast(max_steps=120)
        checkpoint = Checkpoint.capture(sim)
        # A *different* inner scheduler makes different decisions: the
        # verify-mode replay must refuse rather than silently diverge.
        with pytest.raises((SchedulerError, CheckpointRestoreError)):
            checkpoint.restore_by_replay(build_sim, RandomScheduler(seed=10))

    def test_unverified_replay_forces_prefix(self):
        recording = RecordingScheduler(RandomScheduler(seed=9))
        sim = build_sim(recording)
        sim.run_fast(max_steps=120)
        checkpoint = Checkpoint.capture(sim)
        restored = checkpoint.restore_by_replay(
            build_sim, RandomScheduler(seed=9), verify=False
        )
        assert restored.clock.now == checkpoint.time

    def test_restored_run_can_be_checkpointed_again(self):
        recording = RecordingScheduler(RandomScheduler(seed=9))
        sim = build_sim(recording)
        sim.run_fast(max_steps=100)
        first = Checkpoint.capture(sim)
        restored = first.restore_by_replay(build_sim, RandomScheduler(seed=9))
        restored.run_fast(max_steps=100)
        second = Checkpoint.capture(restored)  # prefix from decisions
        assert second.time == 200
        assert len(second.schedule) == 200
        again = second.restore_by_replay(build_sim, RandomScheduler(seed=9))
        assert state_digest(again) == second.digest()

    def test_missing_prefix_refused(self):
        sim = build_sim(RandomScheduler(seed=9))  # not recorded
        sim.run_fast(max_steps=50)
        checkpoint = Checkpoint.capture(sim)
        with pytest.raises(ConfigurationError, match="prefix"):
            checkpoint.restore_by_replay(build_sim, RandomScheduler(seed=9))

    def test_prestepped_build_refused(self):
        recording = RecordingScheduler(RandomScheduler(seed=9))
        sim = build_sim(recording)
        sim.run_fast(max_steps=50)
        checkpoint = Checkpoint.capture(sim)

        def stale_build(scheduler):
            stepped = build_sim(scheduler)
            stepped.run_fast(max_steps=1)
            return stepped

        with pytest.raises(ConfigurationError, match="t=0"):
            checkpoint.restore_by_replay(stale_build, RandomScheduler(seed=9))


class TestDirectRestore:
    def test_restores_shared_state(self):
        sim = build_sim(RecordingScheduler(RandomScheduler(seed=9)))
        sim.run_fast(max_steps=150)
        checkpoint = Checkpoint.capture(sim)
        target = build_sim(RandomScheduler(seed=9))
        restored = checkpoint.restore_direct(target)
        assert restored.clock.now == checkpoint.time
        assert tuple(restored.memory._values) == checkpoint.memory_values

    def test_non_runnable_thread_refused(self):
        sim = build_sim(RandomScheduler(seed=9), iterations=5)
        sim.run_fast()  # run to quiescence: threads finished
        checkpoint = Checkpoint.capture(sim)
        with pytest.raises(ConfigurationError, match="runnable"):
            checkpoint.restore_direct(build_sim(RandomScheduler(seed=9)))

    def test_layout_mismatch_refused(self):
        sim = build_sim(RandomScheduler(seed=9))
        sim.run_fast(max_steps=50)
        checkpoint = Checkpoint.capture(sim)
        small = Simulator(SharedMemory(), RandomScheduler(seed=9), seed=9)
        with pytest.raises(ConfigurationError, match="layout"):
            checkpoint.restore_direct(small)


class TestFullSGDCheckpointHook:
    def _driver(self):
        return FullSGD(
            OBJECTIVE,
            num_threads=3,
            epsilon=0.25,
            alpha0=0.05,
            iterations_per_epoch=40,
            num_epochs=3,
            x0=np.full(2, 2.0),
        )

    def test_hook_fires_at_epoch_boundaries_without_changing_results(self):
        baseline = self._driver().run(RandomScheduler(seed=5), seed=5)
        cuts = []
        hooked = self._driver().run(
            RandomScheduler(seed=5),
            seed=5,
            checkpoint_hook=lambda epoch, cp: cuts.append((epoch, cp)),
            checkpoint_chunk=64,
        )
        assert pickle.dumps(hooked.r) == pickle.dumps(baseline.r)
        assert hooked.total_iterations == baseline.total_iterations
        assert [epoch for epoch, _ in cuts] == [1, 2]
        for _epoch, checkpoint in cuts:
            assert checkpoint.schedule  # replay recipe captured
            assert checkpoint.label.startswith("epoch-")

    def test_epoch_checkpoint_restores_and_finishes_identically(self):
        cuts = []
        reference = self._driver().run(
            RandomScheduler(seed=5),
            seed=5,
            checkpoint_hook=lambda epoch, cp: cuts.append(cp),
            checkpoint_chunk=64,
        )
        checkpoint = cuts[0]

        def build(scheduler):
            memory = SharedMemory(record_log=False)
            model = AtomicArray.allocate(memory, 2, name="model")
            model.load(np.full(2, 2.0))
            counter = AtomicCounter.allocate(memory, name="iteration_counter")
            from repro.core.full_sgd import FullSGDThreadProgram
            from repro.core.schedules import EpochHalvingRate
            from repro.shm.register import AtomicRegister

            epoch_register = AtomicRegister(
                memory, memory.allocate(1, name="epoch", initial=0.0)
            )
            sim = Simulator(memory, scheduler, seed=5)
            for index in range(3):
                sim.spawn(
                    FullSGDThreadProgram(
                        model=model,
                        counter=counter,
                        epoch_register=epoch_register,
                        objective=OBJECTIVE,
                        schedule=EpochHalvingRate(0.05),
                        iterations_per_epoch=40,
                        num_epochs=3,
                    ),
                    name=f"worker-{index}",
                )
            return sim

        restored = checkpoint.restore_by_replay(build, RandomScheduler(seed=5))
        restored.run_fast()
        final = restored.memory.peek_range(
            restored.memory.segment("model").base, 2
        )
        assert pickle.dumps(np.asarray(final)) == pickle.dumps(reference.r)

    def test_invalid_chunk_rejected(self):
        with pytest.raises(ConfigurationError):
            self._driver().run(
                RandomScheduler(seed=5), seed=5,
                checkpoint_hook=lambda *_: None, checkpoint_chunk=0,
            )


class TestSerialization:
    def _checkpoint(self):
        sim = build_sim(RecordingScheduler(RandomScheduler(seed=9)))
        sim.run_fast(max_steps=80)
        return Checkpoint.capture(sim, label="t80")

    def test_json_round_trip(self):
        checkpoint = self._checkpoint()
        clone = Checkpoint.from_json(checkpoint.to_json())
        assert clone == checkpoint
        assert clone.digest() == checkpoint.digest()

    def test_save_load(self, tmp_path):
        checkpoint = self._checkpoint()
        path = tmp_path / "cut.json"
        checkpoint.save(path)
        assert Checkpoint.load(path) == checkpoint
        assert sorted(p.name for p in tmp_path.iterdir()) == ["cut.json"]

    def test_tampered_file_rejected(self, tmp_path):
        checkpoint = self._checkpoint()
        path = tmp_path / "cut.json"
        checkpoint.save(path)
        path.write_text(path.read_text().replace('"time": 80', '"time": 81'))
        with pytest.raises(ConfigurationError, match="digest"):
            Checkpoint.load(path)

    def test_garbage_rejected(self):
        with pytest.raises(ConfigurationError):
            Checkpoint.from_json('{"seed": 1}')


class TestPrefixReplayScheduler:
    def test_keeps_fast_path_for_hookless_inner(self):
        from repro.runtime.policy import live_hook

        scheduler = PrefixReplayScheduler(RandomScheduler(seed=1), (0, 0))
        # RandomScheduler has no live hooks, so the wrapper must not
        # introduce any (that would silently force the slow path).
        assert live_hook(scheduler, "on_step") is None

    def test_simulator_state_digest_helper(self):
        sim = build_sim(RandomScheduler(seed=9))
        sim.run_fast(max_steps=10)
        assert sim.state_digest() == state_digest(sim)


class TestInspectCheckpoint:
    """`inspect_checkpoint`: forensic (non-raising) checkpoint triage."""

    def _checkpoint_text(self):
        sim = build_sim(RecordingScheduler(RandomScheduler(seed=9)))
        sim.run_fast(max_steps=20)
        return Checkpoint.capture(sim).to_json()

    def test_intact_checkpoint_yields_no_findings(self):
        from repro.durable.checkpoint import inspect_checkpoint

        checkpoint, findings = inspect_checkpoint(self._checkpoint_text())
        assert findings == []
        assert checkpoint is not None
        assert checkpoint.time == 20

    def test_digest_mismatch_is_ckpt005_not_a_raise(self):
        import json as _json

        from repro.durable.checkpoint import inspect_checkpoint

        payload = _json.loads(self._checkpoint_text())
        payload["memory_values"][0] += 1.0  # simulate on-disk corruption
        checkpoint, findings = inspect_checkpoint(_json.dumps(payload))
        assert [f.rule for f in findings] == ["CKPT005"]
        assert "do not restore" in findings[0].message
        # The parsed checkpoint is still returned for forensics.
        assert checkpoint is not None
        assert checkpoint.memory_values[0] == payload["memory_values"][0]

    def test_truncated_text_is_ckpt006_with_no_checkpoint(self):
        from repro.durable.checkpoint import inspect_checkpoint

        text = self._checkpoint_text()
        checkpoint, findings = inspect_checkpoint(text[: len(text) // 2])
        assert checkpoint is None
        assert [f.rule for f in findings] == ["CKPT006"]

    def test_from_json_still_raises_on_mismatch(self):
        import json as _json

        payload = _json.loads(self._checkpoint_text())
        payload["memory_values"][0] += 1.0
        with pytest.raises(ConfigurationError):
            Checkpoint.from_json(_json.dumps(payload))
