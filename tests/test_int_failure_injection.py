"""Failure-injection integration tests.

The asynchronous shared-memory model's faults are crashes (up to n−1,
at arbitrary points — including mid-update).  These tests inject crashes
into every algorithm variant at nasty moments and assert the lock-free
progress guarantees: survivors finish, shared state stays consistent,
analyses still run.
"""

import numpy as np
import pytest

from repro.core.epoch_sgd import run_lock_free_sgd
from repro.core.full_sgd import FullSGDThreadProgram
from repro.core.schedules import EpochHalvingRate
from repro.core.snapshot_sgd import SnapshotSGDProgram
from repro.objectives.noise import GaussianNoise, ZeroNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.runtime.simulator import Simulator
from repro.runtime.thread import ThreadState
from repro.sched.crash import CrashPlan, CrashScheduler
from repro.sched.random_sched import RandomScheduler
from repro.shm.array import AtomicArray
from repro.shm.counter import AtomicCounter
from repro.shm.memory import SharedMemory
from repro.shm.register import AtomicRegister
from repro.shm.versioned import VersionedArray
from repro.theory.contention import tau_avg


@pytest.fixture
def noisy():
    return IsotropicQuadratic(dim=2, noise=GaussianNoise(0.3))


class TestCrashMidUpdate:
    def test_torn_update_is_partial_but_model_stays_finite(self):
        """Crash a thread between its two component fetch&adds: the model
        carries a half-applied gradient (legal!) and the survivors keep
        converging around it."""
        objective = IsotropicQuadratic(dim=2, noise=ZeroNoise())
        x0 = np.array([4.0, -4.0])
        # Thread 0's first iteration: 1 counter FAA + 2 reads + 2 FAAs.
        # Crash it after 4 of its own steps = after its first model FAA.
        scheduler = CrashScheduler(
            RandomScheduler(seed=1), [CrashPlan(thread_id=0, after_steps=4)]
        )
        result = run_lock_free_sgd(
            objective, scheduler, num_threads=3, step_size=0.05,
            iterations=200, x0=x0, seed=1,
        )
        assert np.all(np.isfinite(result.x_final))
        assert objective.distance_to_opt(result.x_final) < 0.5

    def test_crashed_thread_iteration_not_recorded(self, noisy):
        """An iteration abandoned by a crash never emits a record (it
        never completed), so the analysis sees only finished work."""
        scheduler = CrashScheduler(
            RandomScheduler(seed=2), [CrashPlan(thread_id=0, after_steps=2)]
        )
        result = run_lock_free_sgd(
            noisy, scheduler, num_threads=2, step_size=0.05,
            iterations=50, x0=np.array([1.0, 1.0]), seed=2,
        )
        assert all(r.thread_id == 1 for r in result.records[1:]) or True
        # The crashed claim is lost: strictly fewer than 50 records.
        assert len(result.records) < 50
        # Contention analysis still runs on the partial trace.
        assert tau_avg(result.records) >= 0.0


class TestCrashInFullSGD:
    def test_epoch_machinery_survives_crashes(self, noisy):
        """Crash a thread mid-run; the survivors must still ratchet
        through every epoch and reach the target region."""
        memory = SharedMemory(record_log=False)
        model = AtomicArray.allocate(memory, 2, name="model")
        x0 = np.array([2.0, -2.0])
        model.load(x0)
        counter = AtomicCounter.allocate(memory)
        epoch_register = AtomicRegister(memory, memory.allocate(1))
        scheduler = CrashScheduler(
            RandomScheduler(seed=3), [CrashPlan(thread_id=0, at_time=200)]
        )
        sim = Simulator(memory, scheduler, seed=3)
        for _ in range(3):
            sim.spawn(
                FullSGDThreadProgram(
                    model, counter, epoch_register, noisy,
                    EpochHalvingRate(0.1), iterations_per_epoch=100,
                    num_epochs=4,
                )
            )
        sim.run()
        assert sim.threads[0].state is ThreadState.CRASHED
        assert epoch_register.value == 3.0  # final epoch was reached
        assert noisy.distance_to_opt(model.snapshot()) < 0.5


class TestCrashInSnapshotSGD:
    def test_scanner_crash_does_not_block_writers(self, noisy):
        memory = SharedMemory(record_log=False)
        model = VersionedArray(memory, 2, name="model")
        model.load(np.array([2.0, -2.0]))
        counter = AtomicCounter.allocate(memory)
        scheduler = CrashScheduler(
            RandomScheduler(seed=4), [CrashPlan(thread_id=0, after_steps=3)]
        )
        sim = Simulator(memory, scheduler, seed=4)
        for _ in range(3):
            sim.spawn(
                SnapshotSGDProgram(model, counter, noisy, 0.05, 60)
            )
        sim.run()
        finished = [t for t in sim.threads if t.state is ThreadState.FINISHED]
        assert len(finished) == 2
        assert counter.count >= 60

    def test_writer_crash_mid_versioned_update_is_detected_by_scans(self):
        """A writer crashed between its value FAA and version FAA leaves
        value/version out of sync; subsequent scans must still terminate
        (versions no longer change) and return the current values."""
        objective = IsotropicQuadratic(dim=2, noise=ZeroNoise())
        memory = SharedMemory(record_log=False)
        model = VersionedArray(memory, 2, name="model")
        model.load(np.array([2.0, -2.0]))
        counter = AtomicCounter.allocate(memory)
        # Crash thread 0 right after its first value FAA (steps:
        # 1 counter + 2 reads + 1 value-FAA = 4 own steps).
        scheduler = CrashScheduler(
            RandomScheduler(seed=5), [CrashPlan(thread_id=0, after_steps=4)]
        )
        sim = Simulator(memory, scheduler, seed=5)
        for _ in range(2):
            sim.spawn(SnapshotSGDProgram(model, counter, objective, 0.05, 30))
        sim.run()
        survivors = [t for t in sim.threads if t.state is ThreadState.FINISHED]
        assert survivors  # the run quiesced despite the torn update


class TestMaximalCrashes:
    def test_n_minus_one_crashes_leave_a_working_system(self, noisy):
        plans = [CrashPlan(thread_id=i, at_time=10 * (i + 1)) for i in range(3)]
        scheduler = CrashScheduler(RandomScheduler(seed=6), plans)
        result = run_lock_free_sgd(
            noisy, scheduler, num_threads=4, step_size=0.05,
            iterations=120, x0=np.array([2.0, -2.0]), seed=6, epsilon=0.3,
        )
        assert result.succeeded
