"""Tests for the chaos engine's fault-plan DSL and runtime injectors:
spec validation and picklability, seeded determinism, budget accounting,
stall rerouting, torn updates at op granularity, and the satellite
guarantee that injection behaves step-for-step identically under
``run()`` and the elided ``run_fast()`` loop."""

import pickle

import numpy as np
import pytest

from repro.core.epoch_sgd import EpochSGDProgram
from repro.errors import ConfigurationError
from repro.faults import (
    AdaptiveCrashSpec,
    FaultInjectionScheduler,
    FaultSpec,
    ProbabilisticCrashSpec,
    StallSpec,
    TornUpdateSpec,
)
from repro.objectives.noise import GaussianNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.runtime.events import IterationRecord
from repro.runtime.policy import TraceConfig, live_hook
from repro.runtime.simulator import Simulator
from repro.runtime.thread import ThreadState
from repro.sched.crash import CrashPlan, CrashScheduler
from repro.sched.random_sched import RandomScheduler
from repro.shm.array import AtomicArray
from repro.shm.counter import AtomicCounter
from repro.shm.memory import SharedMemory


def _build_workload(engine, num_threads=3, iterations=60, seed=0,
                    trace_config=None):
    """The standard small chaos workload: Algorithm 1 on a noisy
    quadratic, one shared model array + iteration counter."""
    objective = IsotropicQuadratic(dim=2, noise=GaussianNoise(0.2))
    memory = SharedMemory(record_log=False)
    model = AtomicArray.allocate(memory, 2, name="model")
    model.load(np.array([2.0, -2.0]))
    counter = AtomicCounter.allocate(memory, name="iteration_counter")
    sim = Simulator(memory, engine, seed=seed, trace_config=trace_config)
    for index in range(num_threads):
        sim.spawn(
            EpochSGDProgram(
                model=model,
                counter=counter,
                objective=objective,
                step_size=0.05,
                max_iterations=iterations,
            ),
            name=f"worker-{index}",
        )
    return sim, model


class TestSpecValidation:
    def test_rates_outside_unit_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            ProbabilisticCrashSpec(rate=1.5)
        with pytest.raises(ConfigurationError):
            TornUpdateSpec(rate=-0.1)

    def test_stall_window_validation(self):
        with pytest.raises(ConfigurationError):
            StallSpec(victims=(0,), duration=0)
        with pytest.raises(ConfigurationError):
            StallSpec(victims=(0,), duration=10, period=5)

    def test_stall_open_at_periodic_and_one_shot(self):
        once = StallSpec(victims=(0,), start=10, duration=5)
        assert not once.open_at(9)
        assert once.open_at(10) and once.open_at(14)
        assert not once.open_at(15)
        periodic = StallSpec(victims=(0,), start=10, duration=5, period=20)
        assert periodic.open_at(30) and periodic.open_at(34)
        assert not periodic.open_at(35) and not periodic.open_at(29)

    def test_specs_are_picklable_plans(self):
        spec = FaultSpec(
            "mixed",
            (
                ProbabilisticCrashSpec(rate=0.01),
                AdaptiveCrashSpec(phase="update"),
                StallSpec(victims=(1,), start=5, duration=3),
                TornUpdateSpec(rate=0.5),
            ),
            crash_budget=2,
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec


class TestProbabilisticCrashes:
    def test_crashes_fire_and_respect_max_crashes(self):
        spec = FaultSpec(
            "p", (ProbabilisticCrashSpec(rate=0.05, max_crashes=2),)
        )
        engine = spec.build(RandomScheduler(seed=3), seed=3)
        sim, model = _build_workload(engine, num_threads=4, seed=3)
        sim.run_fast()
        assert sim.crashed_count == 2
        assert engine.injectors[0].fired == 2
        assert np.all(np.isfinite(model.snapshot()))

    def test_after_time_delays_first_crash(self):
        spec = FaultSpec(
            "p",
            (ProbabilisticCrashSpec(rate=1.0, max_crashes=1, after_time=50),),
        )
        engine = spec.build(RandomScheduler(seed=1), seed=1)
        sim, _ = _build_workload(engine, num_threads=2, seed=1)
        sim.run_fast()
        crash_times = [
            e.time for e in sim.trace if type(e).__name__ == "CrashEvent"
        ]
        assert crash_times and min(crash_times) >= 50

    def test_same_seed_same_outcome(self):
        def run(seed):
            spec = FaultSpec(
                "p", (ProbabilisticCrashSpec(rate=0.01, max_crashes=3),)
            )
            engine = spec.build(RandomScheduler(seed=seed), seed=seed)
            sim, model = _build_workload(engine, num_threads=4, seed=seed)
            sim.run_fast()
            return sim.now, sim.crashed_count, model.snapshot().tobytes()

        assert run(7) == run(7)


class TestCrashBudgets:
    def test_engine_never_kills_the_last_runnable_thread(self):
        spec = FaultSpec("p", (ProbabilisticCrashSpec(rate=1.0),))
        engine = spec.build(RandomScheduler(seed=2), seed=2)
        sim, _ = _build_workload(engine, num_threads=3, seed=2)
        sim.run_fast()
        # rate=1.0 tries to kill everything every select; the budget
        # keeps one worker alive to finish the run.
        assert sim.crashed_count == 2
        finished = [t for t in sim.threads if t.state is ThreadState.FINISHED]
        assert len(finished) == 1
        assert engine.skipped_crashes > 0

    def test_spec_level_crash_budget_caps_all_injectors(self):
        spec = FaultSpec(
            "pair",
            (
                ProbabilisticCrashSpec(rate=1.0),
                ProbabilisticCrashSpec(rate=1.0),
            ),
            crash_budget=1,
        )
        engine = spec.build(RandomScheduler(seed=4), seed=4)
        sim, _ = _build_workload(engine, num_threads=4, seed=4)
        sim.run_fast()
        assert sim.crashed_count == 1
        assert engine.crashes_fired == 1


class TestAdaptiveCrashes:
    def test_victim_dies_in_its_update_phase(self):
        spec = FaultSpec(
            "a", (AdaptiveCrashSpec(phase="update", max_crashes=1),)
        )
        engine = spec.build(RandomScheduler(seed=5), seed=5)
        sim, _ = _build_workload(engine, num_threads=3, seed=5)
        sim.run_fast()
        assert sim.crashed_count == 1
        victim = next(
            t for t in sim.threads if t.state is ThreadState.CRASHED
        )
        # The adaptive adversary struck while the victim's published
        # phase was "update" — mid-multi-component-write.
        assert victim.context.annotations.get("phase") == "update"


class TestStalls:
    def test_stalled_victim_takes_no_steps_in_window(self):
        spec = FaultSpec(
            "s", (StallSpec(victims=(0,), start=0, duration=100),)
        )
        engine = spec.build(RandomScheduler(seed=6), seed=6)
        sim, _ = _build_workload(
            engine, num_threads=2, seed=6,
            trace_config=TraceConfig(record_steps=True),
        )
        sim.run(max_steps=100)
        assert all(r.thread_id != 0 for r in sim.steps)
        assert engine.stall_reroutes > 0

    def test_all_stalled_lets_inner_choice_through(self):
        # Every thread stalled forever: the engine must keep time moving
        # (a stall is a delay, not a freeze) so the run still quiesces.
        spec = FaultSpec(
            "s", (StallSpec(victims=(0, 1), start=0, duration=10**6),)
        )
        engine = spec.build(RandomScheduler(seed=7), seed=7)
        sim, _ = _build_workload(engine, num_threads=2, iterations=10, seed=7)
        sim.run_fast()
        assert sim.runnable_count == 0
        assert all(t.state is ThreadState.FINISHED for t in sim.threads)


class TestTornUpdates:
    def test_victim_executes_exactly_one_more_op_then_dies(self):
        spec = FaultSpec("t", (TornUpdateSpec(rate=1.0, max_crashes=1),))
        engine = spec.build(RandomScheduler(seed=8), seed=8)
        sim, model = _build_workload(
            engine, num_threads=3, seed=8,
            trace_config=TraceConfig(record_steps=True),
        )
        sim.run()
        injector = engine.injectors[0]
        assert injector.torn == 1
        victim_id = next(
            t.thread_id for t in sim.threads
            if t.state is ThreadState.CRASHED
        )
        crash_time = next(
            e.time for e in sim.trace if type(e).__name__ == "CrashEvent"
        )
        # The victim's final step is an update into the model segment,
        # and it never steps again after that op lands: a torn update.
        victim_steps = [r for r in sim.steps if r.thread_id == victim_id]
        last = victim_steps[-1]
        segment = sim.memory.segment("model")
        assert segment.base <= last.op.address < segment.base + segment.length
        assert last.time <= crash_time
        assert np.all(np.isfinite(model.snapshot()))

    def test_unwatched_segment_never_tears(self):
        spec = FaultSpec(
            "t", (TornUpdateSpec(rate=1.0, segment="no-such-segment"),)
        )
        engine = spec.build(RandomScheduler(seed=9), seed=9)
        sim, _ = _build_workload(engine, num_threads=2, iterations=10, seed=9)
        sim.run_fast()
        assert sim.crashed_count == 0
        assert engine.injectors[0].torn == 0


class TestRunFastEquivalence:
    """Satellite: fault injection must not depend on the execution tier.

    The same seeded fault plan over the same workload must produce the
    identical execution under ``run()`` (per-step records) and the elided
    ``run_fast()`` loop — same iterations, same crashes, same final model
    bytes, same logical clock.
    """

    @staticmethod
    def _outcome(sim, model):
        iterations = [
            (e.index, e.thread_id, e.order_time)
            for e in sim.trace
            if isinstance(e, IterationRecord)
        ]
        crashes = [
            (e.time, e.thread_id)
            for e in sim.trace
            if type(e).__name__ == "CrashEvent"
        ]
        states = [t.state for t in sim.threads]
        return (
            sim.now, iterations, crashes, states, model.snapshot().tobytes()
        )

    def _compare(self, make_engine):
        engine_slow = make_engine()
        sim_slow, model_slow = _build_workload(
            engine_slow, seed=11, trace_config=TraceConfig(record_steps=True)
        )
        sim_slow.run()

        engine_fast = make_engine()
        # Wrapper schedulers over benign inners must keep the elided
        # path (a live on_step would silently fall back to run()).
        assert live_hook(engine_fast, "on_step") is None
        sim_fast, model_fast = _build_workload(engine_fast, seed=11)
        sim_fast.run_fast()

        assert self._outcome(sim_slow, model_slow) == self._outcome(
            sim_fast, model_fast
        )

    def test_crash_scheduler_identical_across_tiers(self):
        self._compare(
            lambda: CrashScheduler(
                RandomScheduler(seed=11),
                [
                    CrashPlan(thread_id=0, after_steps=4),
                    CrashPlan(thread_id=1, at_time=40),
                ],
            )
        )

    def test_fault_injection_scheduler_identical_across_tiers(self):
        spec = FaultSpec(
            "mixed",
            (
                ProbabilisticCrashSpec(rate=0.005, max_crashes=1),
                StallSpec(victims=(1,), start=20, duration=30, period=100),
                TornUpdateSpec(rate=0.05, max_crashes=1),
            ),
        )
        self._compare(
            lambda: spec.build(RandomScheduler(seed=11), seed=11)
        )

    def test_chunked_run_fast_identical_to_one_shot(self):
        spec = FaultSpec(
            "p", (ProbabilisticCrashSpec(rate=0.01, max_crashes=2),)
        )
        sim_one, model_one = _build_workload(
            spec.build(RandomScheduler(seed=12), seed=12), seed=12
        )
        sim_one.run_fast()
        sim_chunk, model_chunk = _build_workload(
            spec.build(RandomScheduler(seed=12), seed=12), seed=12
        )
        while sim_chunk.runnable_count:
            sim_chunk.run_fast(max_steps=37)
        assert self._outcome(sim_one, model_one) == self._outcome(
            sim_chunk, model_chunk
        )


class TestEngineComposition:
    def test_unknown_injector_spec_rejected(self):
        from repro.faults.injectors import build_injector
        from repro.runtime.rng import RngStream

        with pytest.raises(ConfigurationError):
            build_injector(object(), RngStream.root(0))

    def test_empty_spec_is_a_transparent_wrapper(self):
        spec = FaultSpec("none", ())
        engine = spec.build(RandomScheduler(seed=13), seed=13)
        assert isinstance(engine, FaultInjectionScheduler)
        sim, model = _build_workload(engine, num_threads=2, seed=13)
        sim.run_fast()
        sim_plain, model_plain = _build_workload(
            RandomScheduler(seed=13), num_threads=2, seed=13
        )
        sim_plain.run_fast()
        assert model.snapshot().tobytes() == model_plain.snapshot().tobytes()
        assert sim.now == sim_plain.now
