"""Supervisor behaviour under a scripted runner and a fake clock:
admission control, duplicate coalescing, the cache fast path, the
crash-retry ladder with seeded backoff, respawn-budget lineage
accounting, deadline abandonment, and graceful drain."""

import threading

import pytest

from repro.errors import ConfigurationError
from repro.experiments.ensemble import backoff_delay
from repro.serve.cache import ResultCache
from repro.serve.clock import FakeServeClock
from repro.serve.supervisor import (
    CANCELLED,
    DONE,
    FAILED,
    INTERRUPTED,
    AdmissionError,
    DrainingError,
    JobSupervisor,
    ServerPolicy,
)

SPEC = {"kind": "chaos", "params": {"specs": ["none"], "seeds": 2}}


def _spec(offset):
    return {
        "kind": "chaos",
        "params": {"specs": ["none"], "seeds": 2, "base_seed": 1 + offset},
    }


class ScriptedRunner:
    """Runner whose outcomes follow a per-call script; an optional gate
    holds the attempt RUNNING until the test releases it."""

    def __init__(self, script, gate=None):
        self.script = list(script)
        self.gate = gate
        self.calls = 0

    def run(self, job, watchdog, should_stop):
        self.calls += 1
        if self.gate is not None:
            self.gate.wait(timeout=30.0)
        outcome = self.script.pop(0) if self.script else {
            "status": "ok",
            "result": {"passed": True, "call": self.calls},
        }
        if callable(outcome):
            return outcome(job, watchdog, should_stop)
        return outcome


def _supervisor(script=(), policy=None, gate=None, start=True, cache=None):
    clock = FakeServeClock()
    supervisor = JobSupervisor(
        policy if policy is not None else ServerPolicy(workers=1),
        cache=cache if cache is not None else ResultCache(None),
        clock=clock,
        runner=ScriptedRunner(script, gate=gate),
    )
    if start:
        supervisor.start()
    return supervisor, clock


def _wait_terminal(supervisor, job, timeout=30.0):
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if job.state in (DONE, FAILED, INTERRUPTED, CANCELLED):
            return
        time.sleep(0.005)
    raise AssertionError(f"job stuck in state {job.state}")


class TestAdmission:
    def test_queue_bound_rejects_with_retry_after(self):
        supervisor, _clock = _supervisor(
            policy=ServerPolicy(workers=1, max_queue=2, retry_after=7.5),
            start=False,  # no workers: jobs stay queued
        )
        supervisor.submit(_spec(0))
        supervisor.submit(_spec(1))
        with pytest.raises(AdmissionError) as info:
            supervisor.submit(_spec(2))
        assert info.value.retry_after == 7.5

    def test_invalid_spec_propagates_configuration_error(self):
        supervisor, _clock = _supervisor(start=False)
        with pytest.raises(ConfigurationError):
            supervisor.submit({"kind": "chaos", "params": {"bogus": 1}})

    def test_duplicate_submission_coalesces_to_inflight_job(self):
        supervisor, _clock = _supervisor(start=False)
        first = supervisor.submit(SPEC)
        second = supervisor.submit(dict(SPEC))
        assert second is first  # one unit of work, not two

    def test_cache_hit_served_instantly_with_marker(self):
        cache = ResultCache(None)
        supervisor, _clock = _supervisor(start=False, cache=cache)
        from repro.serve.specs import parse_job_spec

        fingerprint = parse_job_spec(SPEC).fingerprint
        digest = cache.put(fingerprint, {"passed": True, "cold": 1})
        job = supervisor.submit(SPEC)
        assert job.state == DONE
        assert job.cached is True
        assert job.digest == digest
        assert job.result == {"passed": True, "cold": 1}


class TestRetryLadder:
    def test_success_caches_result(self):
        supervisor, _clock = _supervisor(
            [{"status": "ok", "result": {"passed": True}}]
        )
        job = supervisor.submit(SPEC)
        _wait_terminal(supervisor, job)
        assert job.state == DONE and not job.cached
        # A resubmission is now a certified cache hit.
        again = supervisor.submit(SPEC)
        assert again.cached is True and again.digest == job.digest

    def test_crash_retries_with_seeded_backoff_then_succeeds(self):
        supervisor, clock = _supervisor(
            [
                {"status": "crash", "exitcode": -9},
                {"status": "ok", "result": {"passed": True}},
            ]
        )
        job = supervisor.submit(SPEC)
        _wait_terminal(supervisor, job)
        assert job.state == DONE
        assert job.attempts == 2
        seed = int(job.spec.fingerprint[:8], 16)
        assert clock.sleeps == [
            backoff_delay(
                supervisor.policy.backoff_base, 1,
                chunk_index=job.index, seed=seed,
            )
        ]

    def test_stall_reroute_counts_as_respawn(self):
        supervisor, _clock = _supervisor(
            [
                {"status": "stalled"},
                {"status": "ok", "result": {"passed": True}},
            ]
        )
        job = supervisor.submit(SPEC)
        _wait_terminal(supervisor, job)
        assert job.state == DONE and job.attempts == 2

    def test_deterministic_error_fails_without_retry(self):
        supervisor, clock = _supervisor(
            [{"status": "error", "category": "ConfigurationError",
              "detail": "bad"}]
        )
        job = supervisor.submit(SPEC)
        _wait_terminal(supervisor, job)
        assert job.state == FAILED
        assert job.attempts == 1
        assert "ConfigurationError" in job.error
        assert clock.sleeps == []  # no backoff: nothing was retried

    def test_max_attempts_exhausted_fails(self):
        supervisor, _clock = _supervisor(
            [{"status": "crash"}] * 5,
            policy=ServerPolicy(workers=1, max_attempts=3),
        )
        job = supervisor.submit(SPEC)
        _wait_terminal(supervisor, job)
        assert job.state == FAILED
        assert job.attempts == 3
        assert "3 attempt(s)" in job.error

    def test_respawn_budget_is_server_wide(self):
        # Budget 1: the first job's crash consumes it; the second job's
        # crash finds the lineage budget spent and fails immediately.
        supervisor, _clock = _supervisor(
            [{"status": "crash"}, {"status": "ok", "result": {"p": 1}},
             {"status": "crash"}],
            policy=ServerPolicy(workers=1, max_attempts=3, respawn_budget=1),
        )
        first = supervisor.submit(_spec(0))
        _wait_terminal(supervisor, first)
        second = supervisor.submit(_spec(1))
        _wait_terminal(supervisor, second)
        assert first.state == DONE and first.attempts == 2
        assert second.state == FAILED
        assert "respawn budget exhausted" in second.error

    def test_deadline_abandon_is_terminal(self):
        supervisor, _clock = _supervisor([{"status": "deadline"}])
        job = supervisor.submit(SPEC)
        _wait_terminal(supervisor, job)
        assert job.state == FAILED
        assert "deadline" in job.error
        assert job.attempts == 1

    def test_interrupted_keeps_journal_reference(self):
        supervisor, _clock = _supervisor(
            [{"status": "interrupted", "detail": "SIGTERM",
              "journal": "/tmp/j.jsonl"}]
        )
        job = supervisor.submit(SPEC)
        _wait_terminal(supervisor, job)
        assert job.state == INTERRUPTED
        assert job.journal_path == "/tmp/j.jsonl"


class TestDrain:
    def test_drain_cancels_queued_and_rejects_new(self):
        gate = threading.Event()
        supervisor, _clock = _supervisor(gate=gate)
        running = supervisor.submit(_spec(0))
        import time

        deadline = time.monotonic() + 5.0
        while running.state == "queued" and time.monotonic() < deadline:
            time.sleep(0.005)
        queued = supervisor.submit(_spec(1))
        gate.set()
        supervisor.drain()
        assert queued.state == CANCELLED
        assert "draining" in queued.error
        with pytest.raises(DrainingError):
            supervisor.submit(_spec(2))
        _wait_terminal(supervisor, running)
        assert running.state == DONE  # in-flight work finished, not killed

    def test_drain_is_idempotent(self):
        supervisor, _clock = _supervisor()
        supervisor.drain()
        supervisor.drain()
        assert supervisor.draining


class TestViews:
    def test_view_is_json_safe_and_complete(self):
        supervisor, _clock = _supervisor(
            [{"status": "ok", "result": {"passed": True}}]
        )
        job = supervisor.submit(SPEC)
        _wait_terminal(supervisor, job)
        import json

        view = json.loads(json.dumps(job.view()))
        assert view["state"] == DONE
        assert view["kind"] == "chaos"
        assert view["fingerprint"] == job.spec.fingerprint
        assert view["digest"] == job.digest

    def test_counts_track_states(self):
        supervisor, _clock = _supervisor(
            [{"status": "ok", "result": {"passed": True}}]
        )
        job = supervisor.submit(SPEC)
        _wait_terminal(supervisor, job)
        assert supervisor.counts()["done"] == 1
