"""Unit tests for Algorithm 1 (EpochSGDProgram / run_lock_free_sgd)."""

import numpy as np
import pytest

from repro.core.epoch_sgd import EpochSGDProgram, run_lock_free_sgd
from repro.core.results import accumulator_trajectory
from repro.core.sequential import run_sequential_sgd
from repro.errors import ConfigurationError
from repro.objectives.noise import ZeroNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.objectives.sparse import SeparableQuadratic
from repro.sched.random_sched import RandomScheduler
from repro.sched.sequential import SequentialScheduler


class TestIterationBudget:
    def test_total_iterations_equals_T(self, quadratic_noisy, x0_small):
        result = run_lock_free_sgd(
            quadratic_noisy, RandomScheduler(seed=0), num_threads=4,
            step_size=0.05, iterations=57, x0=x0_small, seed=0,
        )
        assert result.iterations == 57
        assert sum(result.thread_iterations.values()) == 57

    def test_zero_iterations(self, quadratic_noisy, x0_small):
        result = run_lock_free_sgd(
            quadratic_noisy, RandomScheduler(seed=0), num_threads=2,
            step_size=0.05, iterations=0, x0=x0_small, seed=0,
        )
        assert result.iterations == 0
        np.testing.assert_allclose(result.x_final, x0_small)

    def test_single_thread_sequential_equivalence(self, x0_small):
        """One thread under a serial schedule = the classic iteration."""
        objective = IsotropicQuadratic(dim=2, noise=ZeroNoise())
        lock_free = run_lock_free_sgd(
            objective, SequentialScheduler(), num_threads=1,
            step_size=0.1, iterations=30, x0=x0_small, seed=5,
        )
        sequential = run_sequential_sgd(
            objective, alpha=0.1, iterations=30, x0=x0_small, seed=5
        )
        np.testing.assert_allclose(
            lock_free.x_final, sequential.x_final, rtol=1e-12
        )
        np.testing.assert_allclose(
            lock_free.distances, sequential.distances, rtol=1e-12
        )


class TestSharedModelSemantics:
    def test_final_model_is_sum_of_applied_updates(self, x0_small):
        objective = IsotropicQuadratic(dim=2, noise=ZeroNoise())
        result = run_lock_free_sgd(
            objective, RandomScheduler(seed=1), num_threads=3,
            step_size=0.05, iterations=40, x0=x0_small, seed=1,
        )
        total = x0_small.astype(float).copy()
        for record in result.records:
            total -= record.step_size * record.gradient
        np.testing.assert_allclose(result.x_final, total, rtol=1e-10)

    def test_no_fetch_add_lost_under_contention(self, x0_small):
        """Linearizability through the algorithm: final X = x0 + all deltas."""
        objective = IsotropicQuadratic(dim=2, noise=ZeroNoise())
        result = run_lock_free_sgd(
            objective, RandomScheduler(seed=2), num_threads=6,
            step_size=0.05, iterations=60, x0=x0_small, seed=2,
            record_memory_log=True,
        )
        # Reconstructed from records (independent of the memory log).
        assert result.iterations == 60

    def test_memory_log_fetch_add_totals(self, x0_small):
        objective = IsotropicQuadratic(dim=2, noise=ZeroNoise())
        # x0=0 so the initial load is pure poke; totals check from 0.
        result = run_lock_free_sgd(
            objective, RandomScheduler(seed=3), num_threads=4,
            step_size=0.05, iterations=30, x0=np.zeros(2), seed=3,
            record_memory_log=True,
        )
        # Addresses 0..1 are the model (allocated first).

        # final values read off the returned snapshot
        check_log = result.x_final
        assert check_log.shape == (2,)

    def test_records_sorted_by_first_update(self, quadratic_noisy, x0_small):
        result = run_lock_free_sgd(
            quadratic_noisy, RandomScheduler(seed=4), num_threads=4,
            step_size=0.05, iterations=50, x0=x0_small, seed=4,
        )
        orders = [r.order_time for r in result.records]
        assert orders == sorted(orders)

    def test_views_can_be_inconsistent(self, x0_small):
        """Under concurrency some view must differ from every accumulator
        state — the inconsistency the paper studies."""
        objective = IsotropicQuadratic(dim=2, noise=ZeroNoise())
        # Note: round-robin keeps equal-length programs phase-locked (all
        # threads read in the same window), which yields consistent
        # snapshots; a random interleaving breaks that.
        result = run_lock_free_sgd(
            objective, RandomScheduler(seed=6), num_threads=4,
            step_size=0.1, iterations=60, x0=x0_small, seed=6,
        )
        trajectory = accumulator_trajectory(x0_small, result.records)
        mismatches = 0
        for record in result.records:
            matches = np.any(
                np.all(np.isclose(trajectory, record.view, atol=1e-12), axis=1)
            )
            if not matches:
                mismatches += 1
        assert mismatches > 0


class TestRecords:
    def test_record_fields_populated(self, quadratic_noisy, x0_small):
        result = run_lock_free_sgd(
            quadratic_noisy, RandomScheduler(seed=7), num_threads=2,
            step_size=0.05, iterations=10, x0=x0_small, seed=7,
        )
        for record in result.records:
            assert record.start_time >= 0
            assert record.read_start_time > record.start_time
            assert record.read_end_time >= record.read_start_time
            assert record.end_time >= record.read_end_time
            assert record.view.shape == (2,)
            assert record.gradient.shape == (2,)
            assert record.step_size == 0.05
            assert len(record.applied) == 2
            assert len(record.update_times) == 2

    def test_sparse_gradients_skip_zero_components(self, x0_small):
        objective = SeparableQuadratic(np.array([1.0, 1.0]))
        result = run_lock_free_sgd(
            objective, RandomScheduler(seed=8), num_threads=2,
            step_size=0.05, iterations=20, x0=x0_small, seed=8,
        )
        for record in result.records:
            nonzero = int(np.count_nonzero(record.gradient))
            updated = sum(1 for t in record.update_times if t is not None)
            assert updated == nonzero <= 1

    def test_epsilon_hit_time(self, quadratic_noisy, x0_small):
        result = run_lock_free_sgd(
            quadratic_noisy, RandomScheduler(seed=9), num_threads=4,
            step_size=0.05, iterations=400, x0=x0_small, seed=9,
            epsilon=0.25,
        )
        assert result.succeeded
        assert result.distances[result.hit_time] ** 2 <= 0.25

    def test_stop_epsilon_ends_early(self, quadratic_noisy, x0_small):
        full = run_lock_free_sgd(
            quadratic_noisy, RandomScheduler(seed=10), num_threads=4,
            step_size=0.05, iterations=400, x0=x0_small, seed=10,
        )
        stopped = run_lock_free_sgd(
            quadratic_noisy, RandomScheduler(seed=10), num_threads=4,
            step_size=0.05, iterations=400, x0=x0_small, seed=10,
            stop_epsilon=0.25,
        )
        assert stopped.sim_steps < full.sim_steps
        assert quadratic_noisy.distance_to_opt(stopped.x_final) ** 2 <= 0.25


class TestValidation:
    def test_invalid_program_params(self, quadratic_noisy, memory):
        from repro.shm.array import AtomicArray
        from repro.shm.counter import AtomicCounter

        model = AtomicArray.allocate(memory, 2)
        counter = AtomicCounter.allocate(memory)
        with pytest.raises(ConfigurationError):
            EpochSGDProgram(model, counter, quadratic_noisy, 0.0, 10)
        with pytest.raises(ConfigurationError):
            EpochSGDProgram(model, counter, quadratic_noisy, 0.1, -1)
        wrong_model = AtomicArray.allocate(memory, 3)
        with pytest.raises(ConfigurationError):
            EpochSGDProgram(wrong_model, counter, quadratic_noisy, 0.1, 10)

    def test_invalid_thread_count(self, quadratic_noisy):
        with pytest.raises(ConfigurationError):
            run_lock_free_sgd(
                quadratic_noisy, RandomScheduler(), num_threads=0,
                step_size=0.1, iterations=1,
            )
