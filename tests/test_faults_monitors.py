"""Tests for invariant monitors and crash recovery: monitors stay quiet
on clean runs, catch seeded corruption, and the recovery driver respawns
crashed threads that rejoin and finish the shared workload."""

import numpy as np
import pytest

from repro.core.epoch_sgd import EpochSGDProgram
from repro.errors import ConfigurationError, InvariantViolationError
from repro.faults import (
    CounterMonotonicityMonitor,
    CrashBudgetMonitor,
    FaultSpec,
    IterationOrderMonitor,
    ModelFiniteMonitor,
    MonitorSuite,
    ProbabilisticCrashSpec,
    RecoveryReport,
    default_monitors,
    run_with_recovery,
)
from repro.objectives.noise import GaussianNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.runtime.simulator import Simulator
from repro.runtime.thread import ThreadState
from repro.sched.crash import CrashPlan, CrashScheduler
from repro.sched.random_sched import RandomScheduler
from repro.shm.array import AtomicArray
from repro.shm.counter import AtomicCounter
from repro.shm.memory import SharedMemory


def _build_workload(engine, num_threads=3, iterations=60, seed=0):
    objective = IsotropicQuadratic(dim=2, noise=GaussianNoise(0.2))
    memory = SharedMemory(record_log=False)
    model = AtomicArray.allocate(memory, 2, name="model")
    model.load(np.array([2.0, -2.0]))
    counter = AtomicCounter.allocate(memory, name="iteration_counter")

    def make_program():
        return EpochSGDProgram(
            model=model,
            counter=counter,
            objective=objective,
            step_size=0.05,
            max_iterations=iterations,
        )

    sim = Simulator(memory, engine, seed=seed)
    for index in range(num_threads):
        sim.spawn(make_program(), name=f"worker-{index}")
    return sim, model, make_program


class TestMonitorsOnCleanRuns:
    def test_default_suite_stays_quiet_without_faults(self):
        sim, _, _ = _build_workload(RandomScheduler(seed=1), seed=1)
        suite = MonitorSuite()
        run_with_recovery(sim, monitors=suite)
        assert suite.clean
        assert suite.checks_run > 1

    def test_default_suite_stays_quiet_under_crashes(self):
        spec = FaultSpec(
            "p", (ProbabilisticCrashSpec(rate=0.01, max_crashes=2),)
        )
        engine = spec.build(RandomScheduler(seed=2), seed=2)
        sim, _, make_program = _build_workload(engine, num_threads=4, seed=2)
        suite = MonitorSuite()
        run_with_recovery(
            sim, program_factory=lambda t: make_program(), monitors=suite
        )
        assert suite.clean

    def test_missing_segments_keep_monitors_quiet(self):
        # A workload without a model/counter segment: monitors must not
        # crash or fire, they just have nothing to watch.
        memory = SharedMemory(record_log=False)
        sim = Simulator(memory, RandomScheduler(seed=3), seed=3)
        suite = MonitorSuite(
            [CounterMonotonicityMonitor(), ModelFiniteMonitor()]
        )
        suite.check(sim)
        assert suite.clean


class TestMonitorsCatchCorruption:
    def test_counter_decrease_detected(self):
        sim, _, _ = _build_workload(RandomScheduler(seed=4), seed=4)
        monitor = CounterMonotonicityMonitor()
        sim.run_fast(max_steps=50)
        assert monitor.on_check(sim) is None
        address = sim.memory.segment("iteration_counter").base
        sim.memory.poke(address, sim.memory.peek(address) - 3)
        message = monitor.on_check(sim)
        assert message is not None and "decreased" in message

    def test_counter_non_integral_detected(self):
        sim, _, _ = _build_workload(RandomScheduler(seed=5), seed=5)
        monitor = CounterMonotonicityMonitor()
        address = sim.memory.segment("iteration_counter").base
        sim.memory.poke(address, 1.5)
        message = monitor.on_check(sim)
        assert message is not None and "non-integral" in message

    def test_model_nan_detected(self):
        sim, _, _ = _build_workload(RandomScheduler(seed=6), seed=6)
        monitor = ModelFiniteMonitor()
        assert monitor.on_check(sim) is None
        sim.memory.poke(sim.memory.segment("model").base + 1, float("nan"))
        message = monitor.on_check(sim)
        assert message is not None and "model[1]" in message

    def test_crash_accounting_mismatch_detected(self):
        sim, _, _ = _build_workload(RandomScheduler(seed=7), seed=7)
        sim.run_fast(max_steps=20)
        sim.crash(0)
        monitor = CrashBudgetMonitor()
        assert monitor.on_check(sim) is None
        assert list(monitor.on_finish(sim)) == []
        sim.trace[:] = [
            e for e in sim.trace if type(e).__name__ != "CrashEvent"
        ]
        assert any(
            "mismatch" in m for m in monitor.on_finish(sim)
        )

    def test_iteration_order_duplicates_detected(self):
        sim, _, _ = _build_workload(RandomScheduler(seed=8), seed=8)
        sim.run_fast()
        monitor = IterationOrderMonitor()
        assert list(monitor.on_finish(sim)) == []
        records = [
            e for e in sim.trace if type(e).__name__ == "IterationRecord"
        ]
        sim.trace.append(records[0])  # replayed iteration: index + order dup
        messages = list(monitor.on_finish(sim))
        assert any("claimed twice" in m for m in messages)
        assert any("total order broken" in m for m in messages)

    def test_fail_fast_raises_invariant_violation(self):
        sim, _, _ = _build_workload(RandomScheduler(seed=9), seed=9)
        sim.memory.poke(sim.memory.segment("model").base, float("inf"))
        suite = MonitorSuite(fail_fast=True)
        with pytest.raises(InvariantViolationError):
            suite.check(sim)
        assert len(suite.violations) == 1
        violation = suite.violations[0]
        assert violation.monitor == "model-finite"
        assert str(violation).startswith("[model-finite @ t=")


class TestRecovery:
    def test_respawned_threads_finish_the_workload(self):
        iterations = 80
        engine = CrashScheduler(
            RandomScheduler(seed=10),
            [
                CrashPlan(thread_id=0, at_time=30),
                CrashPlan(thread_id=1, at_time=90),
            ],
        )
        sim, model, make_program = _build_workload(
            engine, num_threads=3, iterations=iterations, seed=10
        )
        report = run_with_recovery(
            sim, program_factory=lambda t: make_program(), check_interval=16
        )
        assert report.recovered_count == 2
        assert report.crashes_seen == 2
        assert set(report.respawned) == {0, 1}
        # Replacements are genuinely new threads that joined the run.
        assert len(sim.threads) == 5
        replacements = [
            sim.threads[tid] for tid in report.respawned.values()
        ]
        assert all(t.name.startswith("respawn-") for t in replacements)
        assert all(
            t.state is ThreadState.FINISHED for t in replacements
        )
        # The full iteration budget was claimed despite the crashes: the
        # respawned threads re-read shared state and did real work.
        counter = sim.memory.segment("iteration_counter").base
        assert sim.memory.peek(counter) >= iterations
        assert np.all(np.isfinite(model.snapshot()))

    def test_max_respawns_caps_replacements(self):
        engine = CrashScheduler(
            RandomScheduler(seed=11),
            [
                CrashPlan(thread_id=0, at_time=20),
                CrashPlan(thread_id=1, at_time=60),
            ],
        )
        sim, _, make_program = _build_workload(
            engine, num_threads=3, seed=11
        )
        report = run_with_recovery(
            sim,
            program_factory=lambda t: make_program(),
            max_respawns=1,
            check_interval=16,
        )
        assert report.recovered_count == 1
        assert report.crashes_seen == 2
        assert len(sim.threads) == 4

    def test_exhausted_budget_reported_in_structured_summary(self):
        engine = CrashScheduler(
            RandomScheduler(seed=11),
            [
                CrashPlan(thread_id=0, at_time=20),
                CrashPlan(thread_id=1, at_time=60),
            ],
        )
        sim, _, make_program = _build_workload(
            engine, num_threads=3, seed=11
        )
        report = run_with_recovery(
            sim,
            program_factory=lambda t: make_program(),
            max_respawns=1,
            check_interval=16,
        )
        # The second crash was denied purely by the budget — the report
        # must say so, not silently under-count.
        assert report.respawn_denied == 1
        assert report.budget_exhausted
        assert report.crash_tally == {0: 1, 1: 1}
        summary = report.summary()
        assert summary["crashes_seen"] == 2
        assert summary["respawned"] == 1
        assert summary["respawn_denied"] == 1
        assert summary["budget_exhausted"] is True
        assert summary["crash_tally"] == {"0": 1, "1": 1}
        assert summary["steps"] == report.steps
        assert summary["checks"] == report.checks

    def test_unexhausted_budget_is_not_flagged(self):
        engine = CrashScheduler(
            RandomScheduler(seed=10),
            [CrashPlan(thread_id=0, at_time=30)],
        )
        sim, _, make_program = _build_workload(engine, seed=10)
        report = run_with_recovery(
            sim,
            program_factory=lambda t: make_program(),
            max_respawns=5,
            check_interval=16,
        )
        assert report.respawn_denied == 0
        assert not report.budget_exhausted
        assert report.summary()["budget_exhausted"] is False

    def test_crash_tally_attributes_respawn_crashes_to_lineage_root(self):
        # Seed 17 produces a full doom chain: worker 0 crashes, its
        # respawn (id 3) crashes, and *that* respawn (id 4) crashes too.
        # All three crashes must land on lineage root 0.
        spec = FaultSpec(
            "p",
            (ProbabilisticCrashSpec(rate=0.01, max_crashes=3, after_time=10),),
        )
        engine = spec.build(RandomScheduler(seed=17), seed=17)
        sim, _, make_program = _build_workload(
            engine, num_threads=3, iterations=80, seed=17
        )
        report = run_with_recovery(
            sim, program_factory=lambda t: make_program(), check_interval=16
        )
        assert report.crashes_seen == 3
        assert report.crash_tally == {0: 3}
        assert report.respawned == {0: 3, 3: 4, 4: 5}
        # Lineage roots are always original workers, never respawn ids.
        assert set(report.crash_tally) <= {0, 1, 2}
        assert sum(report.crash_tally.values()) == report.crashes_seen

    def test_no_factory_no_monitors_is_plain_run_fast(self):
        sim_plain, model_plain, _ = _build_workload(
            RandomScheduler(seed=12), seed=12
        )
        steps_plain = sim_plain.run_fast()
        sim_rec, model_rec, _ = _build_workload(
            RandomScheduler(seed=12), seed=12
        )
        report = run_with_recovery(sim_rec)
        assert isinstance(report, RecoveryReport)
        assert report.steps == steps_plain
        assert report.recovered_count == 0 and report.checks == 0
        assert model_rec.snapshot().tobytes() == model_plain.snapshot().tobytes()

    def test_recovery_identical_to_unchunked_when_nothing_crashes(self):
        sim_plain, model_plain, _ = _build_workload(
            RandomScheduler(seed=13), seed=13
        )
        sim_plain.run_fast()
        sim_rec, model_rec, make_program = _build_workload(
            RandomScheduler(seed=13), seed=13
        )
        run_with_recovery(
            sim_rec,
            program_factory=lambda t: make_program(),
            monitors=MonitorSuite(),
            check_interval=7,
        )
        assert sim_rec.now == sim_plain.now
        assert model_rec.snapshot().tobytes() == model_plain.snapshot().tobytes()

    def test_bad_check_interval_rejected(self):
        sim, _, _ = _build_workload(RandomScheduler(seed=14), seed=14)
        with pytest.raises(ConfigurationError):
            run_with_recovery(sim, check_interval=0)


class TestDefaultMonitors:
    def test_default_set_covers_the_four_invariants(self):
        names = {m.name for m in default_monitors()}
        assert names == {
            "counter-monotonic",
            "model-finite",
            "crash-budget",
            "iteration-order",
        }
