"""Tests for the consistent-snapshot SGD variant, the versioned array's
double-collect scan, and the classic averaged-iterate analysis."""

import numpy as np
import pytest

from repro.core.averaged import (
    classic_average_bound,
    run_averaged_sgd,
)
from repro.core.epoch_sgd import run_lock_free_sgd
from repro.core.snapshot_sgd import SnapshotSGDProgram, run_snapshot_sgd
from repro.errors import ConfigurationError
from repro.objectives.noise import GaussianNoise, ZeroNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.runtime.program import FunctionProgram
from repro.runtime.simulator import Simulator
from repro.sched.random_sched import RandomScheduler
from repro.sched.round_robin import RoundRobinScheduler
from repro.shm.versioned import VersionedArray


class TestVersionedArray:
    def test_load_and_snapshot(self, memory):
        array = VersionedArray(memory, 3)
        array.load(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(array.snapshot(), [1.0, 2.0, 3.0])

    def test_update_bumps_value_and_version(self, memory):
        array = VersionedArray(memory, 2)
        sim = Simulator(memory, RoundRobinScheduler())

        def writer(ctx):
            yield from array.update_ops(1, 5.0)

        sim.spawn(FunctionProgram(writer))
        sim.run()
        assert array.values.snapshot()[1] == 5.0
        # Seqlock: odd while in flight, even (=2) once complete.
        assert array.versions.snapshot()[1] == 2.0

    def test_in_flight_write_marks_version_odd(self, memory):
        array = VersionedArray(memory, 1)
        sim = Simulator(memory, RoundRobinScheduler())

        def writer(ctx):
            yield from array.update_ops(0, 1.0)

        sim.spawn(FunctionProgram(writer))
        sim.step()  # version -> odd
        assert array.versions.snapshot()[0] == 1.0
        sim.step()  # value lands
        sim.step()  # version -> even
        assert array.versions.snapshot()[0] == 2.0

    def test_solo_scan_is_consistent_first_try(self, memory):
        array = VersionedArray(memory, 3)
        array.load(np.array([1.0, 2.0, 3.0]))
        sim = Simulator(memory, RoundRobinScheduler())
        outcome = {}

        def scanner(ctx):
            values, ok, retries = yield from array.scan_ops()
            outcome.update(values=values, ok=ok, retries=retries)

        sim.spawn(FunctionProgram(scanner))
        sim.run()
        assert outcome["ok"] is True
        assert outcome["retries"] == 0
        np.testing.assert_allclose(outcome["values"], [1.0, 2.0, 3.0])
        assert sim.now == 9  # 3d steps for d=3

    def test_concurrent_update_forces_retry(self, memory):
        """Round-robin interleaves one writer with the scanner, so the
        first double-collect must fail and the scan retries."""
        array = VersionedArray(memory, 2)
        sim = Simulator(memory, RoundRobinScheduler())
        outcome = {}

        def scanner(ctx):
            values, ok, retries = yield from array.scan_ops()
            outcome.update(ok=ok, retries=retries, values=values)

        def writer(ctx):
            yield from array.update_ops(0, 1.0)
            yield from array.update_ops(1, 1.0)

        sim.spawn(FunctionProgram(scanner))
        sim.spawn(FunctionProgram(writer))
        sim.run()
        assert outcome["retries"] >= 1
        assert outcome["ok"] is True  # writer finished, scan then succeeds
        # The consistent collect must equal the final array state.
        np.testing.assert_allclose(outcome["values"], array.snapshot())

    def test_retry_budget_fallback(self, memory):
        """With budget 0 the scan returns the first collect regardless."""
        array = VersionedArray(memory, 2)
        sim = Simulator(memory, RoundRobinScheduler())
        outcome = {}

        def scanner(ctx):
            values, ok, retries = yield from array.scan_ops(max_retries=0)
            outcome.update(ok=ok, retries=retries)

        def writer(ctx):
            for _ in range(10):
                yield from array.update_ops(0, 1.0)

        sim.spawn(FunctionProgram(scanner))
        sim.spawn(FunctionProgram(writer))
        sim.run()
        assert outcome["retries"] <= 1

    def test_invalid_length(self, memory):
        with pytest.raises(ConfigurationError):
            VersionedArray(memory, 0)


class TestSnapshotSGD:
    def test_converges(self):
        objective = IsotropicQuadratic(dim=2, noise=GaussianNoise(0.3))
        result = run_snapshot_sgd(
            objective, RandomScheduler(seed=1), num_threads=3,
            step_size=0.05, iterations=300, x0=np.array([2.0, -2.0]),
            seed=1, epsilon=0.25,
        )
        assert result.succeeded

    def test_views_are_consistent_memory_snapshots(self):
        """Every successfully-scanned view must equal the shared memory
        at SOME instant — i.e. x0 plus a time-prefix of the per-component
        update events.  (Algorithm 1's entry-wise reads violate exactly
        this; the double-collect scan restores it.)"""
        objective = IsotropicQuadratic(dim=2, noise=ZeroNoise())
        x0 = np.array([2.0, -2.0])
        result = run_snapshot_sgd(
            objective, RandomScheduler(seed=2), num_threads=3,
            step_size=0.1, iterations=60, x0=x0, seed=2,
            max_scan_retries=50,
        )
        # Reconstruct the memory state after every component update.
        events = []
        for record in result.records:
            for j, update_time in enumerate(record.update_times):
                if update_time is not None:
                    events.append(
                        (update_time, j, -record.step_size * record.gradient[j])
                    )
        events.sort()
        states = [x0.astype(float).copy()]
        current = x0.astype(float).copy()
        for _time, j, delta in events:
            current = current.copy()
            current[j] += delta
            states.append(current)
        states = np.array(states)

        checked = 0
        for record in result.records:
            _, consistent, _ = record.sample
            if not consistent:
                continue
            checked += 1
            assert np.any(
                np.all(np.isclose(states, record.view, atol=1e-9), axis=1)
            ), "a consistent scan returned a view matching no memory state"
        assert checked > 0

    def test_costs_more_steps_than_lock_free(self):
        objective = IsotropicQuadratic(dim=3, noise=GaussianNoise(0.3))
        x0 = np.full(3, 2.0)
        snapshot = run_snapshot_sgd(
            objective, RandomScheduler(seed=3), num_threads=4,
            step_size=0.05, iterations=100, x0=x0, seed=3,
        )
        lock_free = run_lock_free_sgd(
            objective, RandomScheduler(seed=3), num_threads=4,
            step_size=0.05, iterations=100, x0=x0, seed=3,
        )
        assert snapshot.sim_steps > 1.5 * lock_free.sim_steps

    def test_scan_retries_grow_with_contention(self):
        objective = IsotropicQuadratic(dim=2, noise=GaussianNoise(0.3))
        x0 = np.array([2.0, -2.0])
        retries = []
        for n in (1, 6):
            result = run_snapshot_sgd(
                objective, RandomScheduler(seed=4), num_threads=n,
                step_size=0.05, iterations=120, x0=x0, seed=4,
            )
            retries.append(result.scan_retries)
        assert retries[0] == 0
        assert retries[1] > 0

    def test_validation(self, memory):
        from repro.shm.counter import AtomicCounter

        objective = IsotropicQuadratic(dim=2)
        model = VersionedArray(memory, 2)
        counter = AtomicCounter.allocate(memory)
        with pytest.raises(ConfigurationError):
            SnapshotSGDProgram(model, counter, objective, 0.0, 10)
        with pytest.raises(ConfigurationError):
            run_snapshot_sgd(objective, RandomScheduler(), 0, 0.1, 10)


class TestAveragedSGD:
    def test_bound_formula(self):
        assert classic_average_bound(2.0, 8.0, 99) == pytest.approx(
            2 * 8.0 / (2.0 * 100)
        )

    def test_average_makes_substantial_progress(self):
        objective = IsotropicQuadratic(dim=2, noise=GaussianNoise(1.0))
        x0 = np.array([3.0, -3.0])
        initial_subopt = objective.suboptimality(x0)
        average_subopt = []
        for seed in range(8):
            result = run_averaged_sgd(objective, 400, x0=x0, seed=seed)
            average_subopt.append(result.average_suboptimality)
        # The averaged iterate lands far below the start and within the
        # same order as the last iterate (both are O(1/T) here).
        assert np.mean(average_subopt) < 0.05 * initial_subopt

    def test_measured_suboptimality_under_bound(self):
        objective = IsotropicQuadratic(dim=2, noise=GaussianNoise(0.5))
        x0 = np.array([2.0, -2.0])
        iterations = 300
        radius = 2.0 * objective.distance_to_opt(x0)
        bound = classic_average_bound(
            objective.strong_convexity,
            objective.second_moment_bound(radius),
            iterations,
        )
        measured = np.mean(
            [
                run_averaged_sgd(objective, iterations, x0=x0, seed=s)
                .average_suboptimality
                for s in range(10)
            ]
        )
        assert measured <= bound

    def test_bound_decays_linearly(self):
        b1 = classic_average_bound(1.0, 10.0, 100)
        b2 = classic_average_bound(1.0, 10.0, 201)
        assert b2 == pytest.approx(b1 / 2)

    def test_validation(self):
        objective = IsotropicQuadratic(dim=1)
        with pytest.raises(ConfigurationError):
            run_averaged_sgd(objective, 0)
        with pytest.raises(ConfigurationError):
            classic_average_bound(0.0, 1.0, 10)
