"""Unit tests for the metrics package (stats, hitting, trace, report,
ascii_plot)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.metrics.ascii_plot import ascii_plot
from repro.metrics.hitting import estimate_failure_probability
from repro.metrics.report import Table, render_update_matrix
from repro.metrics.stats import (
    mean_confidence_interval,
    summarize,
    wilson_interval,
)
from repro.metrics.trace import (
    iterations_to_reach,
    iterations_to_stay_below,
    log_progress_rate,
    slowdown_ratio,
)
from repro.runtime.events import IterationRecord


class TestWilson:
    def test_zero_failures(self):
        low, high = wilson_interval(0, 100)
        assert low == 0.0
        assert 0 < high < 0.05

    def test_all_failures(self):
        low, high = wilson_interval(100, 100)
        assert high == pytest.approx(1.0)
        assert 0.95 < low < 1.0

    def test_contains_point_estimate(self):
        for successes in (1, 10, 50, 90):
            low, high = wilson_interval(successes, 100)
            assert low <= successes / 100 <= high

    def test_narrower_with_more_trials(self):
        low_small, high_small = wilson_interval(5, 10)
        low_big, high_big = wilson_interval(500, 1000)
        assert (high_big - low_big) < (high_small - low_small)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            wilson_interval(1, 0)
        with pytest.raises(ConfigurationError):
            wilson_interval(5, 3)


class TestMeanCI:
    def test_basic(self):
        mean, low, high = mean_confidence_interval([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert low < 2.0 < high

    def test_single_value(self):
        mean, low, high = mean_confidence_interval([4.0])
        assert mean == low == high == 4.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            mean_confidence_interval([])


class TestSummarize:
    def test_fields(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == 2.5
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.median == 2.5
        assert "n=4" in str(s)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize([])


class TestFailureEstimation:
    def test_counts_failures_and_hits(self):
        outcomes = {0: 5, 1: None, 2: 7, 3: None, 4: 3}
        estimate = estimate_failure_probability(
            lambda seed: outcomes[seed], num_runs=5, base_seed=0
        )
        assert estimate.failures == 2
        assert estimate.probability == pytest.approx(0.4)
        assert sorted(estimate.hit_times) == [3, 5, 7]
        assert estimate.confidence[0] <= 0.4 <= estimate.confidence[1]

    def test_consistent_with_bound(self):
        estimate = estimate_failure_probability(lambda s: None, num_runs=10)
        assert estimate.probability == 1.0
        assert estimate.consistent_with_bound(1.0)
        assert not estimate.consistent_with_bound(0.1)

    def test_str(self):
        estimate = estimate_failure_probability(lambda s: 1, num_runs=4)
        assert "P(fail)" in str(estimate)


class TestTrace:
    def test_iterations_to_reach(self):
        assert iterations_to_reach([5, 4, 3, 2, 1], 2.5) == 3
        assert iterations_to_reach([5, 4], 1.0) is None
        assert iterations_to_reach([0.1], 1.0) == 0

    def test_stay_below_ignores_transient_dips(self):
        distances = [5, 1, 5, 1, 0.5, 0.4, 0.3]
        assert iterations_to_reach(distances, 1.0) == 1
        assert iterations_to_stay_below(distances, 1.0) == 3

    def test_stay_below_never(self):
        assert iterations_to_stay_below([5, 4, 5], 1.0) is None

    def test_stay_below_always(self):
        assert iterations_to_stay_below([0.5, 0.4], 1.0) == 0

    def test_slowdown_ratio(self):
        attacked = [4, 3, 2, 1, 0.5]
        baseline = [4, 1, 0.5]
        assert slowdown_ratio(attacked, baseline, 1.0) == pytest.approx(3.0)

    def test_slowdown_none_when_unreached(self):
        assert slowdown_ratio([4, 3], [4, 1], 1.0) is None

    def test_log_progress_rate(self):
        distances = [np.e**4, np.e**2, np.e**0]
        assert log_progress_rate(distances) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            iterations_to_reach([1.0], -1.0)
        with pytest.raises(ConfigurationError):
            log_progress_rate([1.0])

    def test_empty_trajectories_raise_value_error(self):
        # Empty inputs are caller bugs, reported as a clear ValueError —
        # never a silent None and never a bare IndexError from numpy.
        with pytest.raises(ValueError, match="empty distances"):
            iterations_to_reach([], 1.0)
        with pytest.raises(ValueError, match="empty distances"):
            iterations_to_stay_below([], 1.0)
        with pytest.raises(ValueError, match="attacked_distances"):
            slowdown_ratio([], [4, 1], 1.0)
        with pytest.raises(ValueError, match="baseline_distances"):
            slowdown_ratio([4, 1], [], 1.0)
        with pytest.raises(ValueError, match="empty distances"):
            log_progress_rate([])

    def test_empty_guard_is_not_configuration_error(self):
        # The two failure families stay distinct: parameter errors are
        # ConfigurationError, empty-input errors are plain ValueError.
        with pytest.raises(ValueError) as excinfo:
            iterations_to_reach([], 0.5)
        assert not isinstance(excinfo.value, ConfigurationError)


class TestTable:
    def test_render_alignment(self):
        table = Table(["name", "value"], title="demo")
        table.add_row(["alpha", 0.123456])
        table.add_row(["a-very-long-name", 2])
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "0.1235" in text  # 4 significant digits
        assert all(len(line) == len(lines[1]) for line in lines[1:])

    def test_bool_rendering(self):
        table = Table(["ok"])
        table.add_row([True])
        table.add_row([False])
        assert "yes" in table.render()
        assert "no" in table.render()

    def test_row_length_validated(self):
        table = Table(["a", "b"])
        with pytest.raises(ConfigurationError):
            table.add_row([1])

    def test_empty_headers_rejected(self):
        with pytest.raises(ConfigurationError):
            Table([])


class TestUpdateMatrix:
    def _record(self, start, updates, gradient, thread=0):
        return IterationRecord(
            time=start,
            thread_id=thread,
            start_time=start,
            read_start_time=start + 1,
            read_end_time=start + 1,
            first_update_time=min(
                (u for u in updates if u is not None), default=None
            ),
            end_time=max((u for u in updates if u is not None),
                         default=start + 1),
            gradient=np.array(gradient, dtype=float),
            applied=[u is not None for u in updates],
            update_times=list(updates),
        )

    def test_cells_reflect_timing(self):
        records = [
            self._record(0, [2, 10], [1.0, 1.0]),
            self._record(1, [None, None], [0.0, 0.0]),
        ]
        text = render_update_matrix(records, dim=2, at_time=5)
        rows = [line for line in text.splitlines() if line.count("|") == 2]
        assert rows[0].split("|")[1] == "#o"  # applied at 2, pending at 10
        assert rows[1].split("|")[1] == ".."  # zero gradient

    def test_future_iterations_hidden(self):
        records = [
            self._record(0, [1], [1.0]),
            self._record(50, [60], [1.0]),
        ]
        text = render_update_matrix(records, dim=1, at_time=5)
        rows = [line for line in text.splitlines() if line.count("|") == 2]
        assert len(rows) == 1

    def test_max_rows_truncation(self):
        records = [self._record(i, [i + 1], [1.0]) for i in range(20)]
        text = render_update_matrix(records, dim=1, at_time=100, max_rows=5)
        assert "more iterations" in text


class TestAsciiPlot:
    def test_contains_legend_and_axes(self):
        text = ascii_plot([1, 2, 3], {"measured": [1, 2, 3], "bound": [2, 3, 4]})
        assert "* = measured" in text
        assert "+ = bound" in text
        assert "x: [1, 3]" in text

    def test_logy_drops_nonpositive(self):
        text = ascii_plot([1, 2], {"s": [0.0, 10.0]}, logy=True)
        assert "log10(y)" in text

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ascii_plot([1, 2], {})
        with pytest.raises(ConfigurationError):
            ascii_plot([1], {"s": [1]})
        with pytest.raises(ConfigurationError):
            ascii_plot([1, 2], {"s": [1, 2, 3]})
