"""Property-based invariants of Algorithm 2 over random adversaries.

Whatever the scheduler does, a finished FullSGD run must satisfy:
the returned model equals x0 plus exactly the applied deltas; every
iteration is tagged with the epoch its counter index dictates and the
correspondingly halved step size; the epoch register ends at the final
epoch; and total work equals epochs × T.
"""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.core.full_sgd import FullSGD
from repro.objectives.noise import GaussianNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.sched.bounded_delay import BoundedDelayScheduler
from repro.sched.priority_delay import PriorityDelayScheduler
from repro.sched.random_sched import RandomScheduler


@st.composite
def full_sgd_cases(draw):
    return dict(
        num_threads=draw(st.integers(min_value=1, max_value=4)),
        iterations_per_epoch=draw(st.integers(min_value=5, max_value=40)),
        num_epochs=draw(st.integers(min_value=1, max_value=4)),
        alpha0=draw(st.floats(min_value=0.01, max_value=0.2)),
        seed=draw(st.integers(min_value=0, max_value=10**6)),
        kind=draw(st.sampled_from(["random", "bounded", "priority"])),
        delay=draw(st.integers(min_value=1, max_value=200)),
        use_dcas=draw(st.booleans()),
    )


def _scheduler(case):
    if case["kind"] == "random":
        return RandomScheduler(seed=case["seed"])
    if case["kind"] == "bounded":
        return BoundedDelayScheduler(case["delay"], seed=case["seed"],
                                     victims=[0])
    return PriorityDelayScheduler(victims=[0], delay=case["delay"],
                                  seed=case["seed"])


@given(case=full_sgd_cases())
@settings(max_examples=40, deadline=None)
def test_full_sgd_invariants(case):
    objective = IsotropicQuadratic(dim=2, noise=GaussianNoise(0.3))
    x0 = np.array([1.5, -1.5])
    driver = FullSGD(
        objective,
        num_threads=case["num_threads"],
        epsilon=0.1,
        alpha0=case["alpha0"],
        iterations_per_epoch=case["iterations_per_epoch"],
        num_epochs=case["num_epochs"],
        x0=x0,
        use_dcas_loop=case["use_dcas"],
    )
    out = driver.run(_scheduler(case), seed=case["seed"])

    # Work accounting: epochs * T iterations, no more, no less.
    assert out.total_iterations == (
        case["num_epochs"] * case["iterations_per_epoch"]
    )

    # Epoch tagging and step-size halving.
    for record in out.records:
        expected_epoch = record.index // case["iterations_per_epoch"]
        assert record.epoch == expected_epoch
        assert record.step_size == case["alpha0"] / (2**expected_epoch)

    # The model equals x0 plus exactly the applied deltas.
    total = x0.astype(float).copy()
    for record in out.records:
        delta = -record.step_size * record.gradient
        total = total + delta * np.asarray(record.applied, dtype=float)
    np.testing.assert_allclose(out.r, total, rtol=1e-9, atol=1e-12)

    # Guard bookkeeping: rejected components are exactly the
    # non-applied non-zero ones.
    rejected = sum(
        1
        for record in out.records
        for j, landed in enumerate(record.applied)
        if not landed and record.gradient[j] != 0.0
    )
    assert rejected == out.rejected_updates

    # Total order on iterations (Lemma 6.1 holds under Algorithm 2 too).
    orders = [r.order_time for r in out.records]
    assert orders == sorted(orders)
