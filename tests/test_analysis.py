"""Tests for the analysis layer: the race/staleness sanitizer flags the
lost-update ablation and stays quiet on the stock algorithms, lemma
certificates hold under benign and adversarial schedulers, recorded
schedules round-trip through the sanitizer byte-identically, and the
static linter flags DSL misuse and determinism hazards."""

import numpy as np
import pytest

from repro.analysis import (
    AnalysisReport,
    Finding,
    RaceStalenessSanitizer,
    certify_run,
    lint_source,
)
from repro.analysis.lint import lint_paths, render_findings
from repro.analysis.presets import run_sanitize, sanitize_presets
from repro.analysis.sanitizer import RULE_LOST_UPDATE, RULE_TORN_UPDATE
from repro.core.epoch_sgd import (
    EpochSGDProgram,
    collect_iteration_records,
    run_lock_free_sgd,
)
from repro.core.full_sgd import FullSGD
from repro.errors import ConfigurationError
from repro.objectives.noise import GaussianNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.runtime.simulator import Simulator
from repro.sched.contention_max import ContentionMaximizer
from repro.sched.random_sched import RandomScheduler
from repro.sched.replay import RecordingScheduler, ReplayScheduler
from repro.sched.stale_attack import StaleGradientAttack
from repro.shm.array import AtomicArray
from repro.shm.counter import AtomicCounter
from repro.shm.memory import SharedMemory


def _build_sim(scheduler, *, num_threads=4, iterations=60, seed=3,
               use_write=False, record_log=True):
    objective = IsotropicQuadratic(dim=2, noise=GaussianNoise(0.2))
    memory = SharedMemory(record_log=record_log)
    model = AtomicArray.allocate(memory, 2, name="model")
    model.load(np.array([2.0, -2.0]))
    counter = AtomicCounter.allocate(memory, name="iteration_counter")
    sim = Simulator(memory, scheduler, seed=seed)
    for index in range(num_threads):
        sim.spawn(
            EpochSGDProgram(
                model=model,
                counter=counter,
                objective=objective,
                step_size=0.05,
                max_iterations=iterations,
                use_write=use_write,
            ),
            name=f"worker-{index}",
        )
    return sim


class TestSanitizer:
    def test_racy_write_program_is_flagged(self):
        sim = _build_sim(RandomScheduler(seed=3), use_write=True)
        sanitizer = RaceStalenessSanitizer()
        sim.attach_analyzer(sanitizer)
        sim.run_analyzed()
        lost = [
            f
            for f in sanitizer.findings
            if f.rule == RULE_LOST_UPDATE and f.severity == "error"
        ]
        assert lost, "use_write ablation must produce lost-update findings"
        assert all(f.location.startswith("model[") for f in lost)
        assert sanitizer.counts[RULE_LOST_UPDATE] >= len(lost)

    def test_stock_epoch_sgd_is_clean(self):
        sim = _build_sim(RandomScheduler(seed=5))
        sanitizer = RaceStalenessSanitizer()
        sim.attach_analyzer(sanitizer)
        sim.run_analyzed()
        assert sanitizer.clean, [str(f) for f in sanitizer.findings]

    def test_full_sgd_is_clean(self):
        objective = IsotropicQuadratic(dim=2, noise=GaussianNoise(0.2))
        driver = FullSGD(
            objective,
            num_threads=4,
            epsilon=0.25,
            alpha0=0.05,
            iterations_per_epoch=40,
            num_epochs=2,
            x0=np.full(2, 2.0),
        )
        sanitizer = RaceStalenessSanitizer()
        result = driver.run(
            RandomScheduler(seed=7), seed=7, analyzers=(sanitizer,)
        )
        assert sanitizer.clean, [str(f) for f in sanitizer.findings]
        assert result.total_iterations == 80

    def test_requires_memory_log(self):
        sim = _build_sim(RandomScheduler(seed=1), record_log=False)
        with pytest.raises(ConfigurationError):
            sim.attach_analyzer(RaceStalenessSanitizer())

    def test_torn_update_on_mid_update_crash(self):
        # Adversarially crash thread 0 the moment it enters its update
        # phase: the partially applied multi-component gradient is a torn
        # update (annotations phase == "update", pending_gradient set).
        sim = _build_sim(RandomScheduler(seed=11), seed=11)
        sanitizer = RaceStalenessSanitizer()
        sim.attach_analyzer(sanitizer)
        while not sim.is_done:
            annotations = sim.annotations(0)
            if (
                annotations.get("phase") == "update"
                and annotations.get("pending_gradient") is not None
            ):
                sim.crash(0)
                break
            sim.step()
        sim.run_analyzed()
        torn = [f for f in sanitizer.findings if f.rule == RULE_TORN_UPDATE]
        assert torn and torn[0].severity == "warning"
        assert torn[0].thread_id == 0

    def test_run_analyzed_matches_run_fast_schedule(self):
        plain = _build_sim(RandomScheduler(seed=9), record_log=False)
        plain.run_fast()
        analyzed = _build_sim(RandomScheduler(seed=9))
        analyzed.attach_analyzer(RaceStalenessSanitizer())
        analyzed.run_analyzed(chunk=7)  # awkward chunk size on purpose
        assert analyzed.now == plain.now
        model = analyzed.memory.segment("model")
        np.testing.assert_array_equal(
            analyzed.memory.peek_range(model.base, model.length),
            plain.memory.peek_range(model.base, model.length),
        )
        records_a = collect_iteration_records(analyzed)
        records_b = collect_iteration_records(plain)
        assert [r.order_time for r in records_a] == [
            r.order_time for r in records_b
        ]

    def test_run_lock_free_sgd_accepts_analyzers(self):
        objective = IsotropicQuadratic(dim=2, noise=GaussianNoise(0.2))
        sanitizer = RaceStalenessSanitizer()
        baseline = run_lock_free_sgd(
            objective,
            RandomScheduler(seed=21),
            num_threads=3,
            step_size=0.05,
            iterations=45,
            seed=21,
        )
        analyzed = run_lock_free_sgd(
            objective,
            RandomScheduler(seed=21),
            num_threads=3,
            step_size=0.05,
            iterations=45,
            seed=21,
            analyzers=(sanitizer,),
        )
        assert sanitizer.clean
        assert analyzed.sim_steps == baseline.sim_steps
        np.testing.assert_array_equal(analyzed.x_final, baseline.x_final)


class TestLemmaCertificates:
    @pytest.mark.parametrize(
        "scheduler_factory",
        [
            lambda: RandomScheduler(seed=17),
            lambda: StaleGradientAttack(victim=1, runner=0, delay=8),
            lambda: ContentionMaximizer(),
        ],
        ids=["random", "stale-attack", "contention-max"],
    )
    def test_certificates_hold_under_adversaries(self, scheduler_factory):
        sim = _build_sim(scheduler_factory(), iterations=80, seed=17)
        sim.run_fast()
        records = collect_iteration_records(sim)
        certificates = certify_run(records, num_threads=4)
        assert [c.lemma for c in certificates] == ["6.1", "6.2", "6.4"]
        for certificate in certificates:
            assert certificate.holds, str(certificate)

    def test_certificate_violation_detected(self):
        sim = _build_sim(RandomScheduler(seed=2), iterations=40, seed=2)
        sim.run_fast()
        records = collect_iteration_records(sim)
        # Forge a duplicate claimed index: Lemma 6.1 must fail.
        forged = records + [records[-1]]
        certificates = certify_run(forged, num_threads=4)
        assert not certificates[0].holds


class TestReplayRoundTrip:
    def test_replayed_schedule_reproduces_the_report(self):
        recorder = RecordingScheduler(RandomScheduler(seed=13))
        sim = _build_sim(recorder, use_write=True, seed=13)
        first = RaceStalenessSanitizer()
        sim.attach_analyzer(first)
        sim.run_analyzed()

        replay = _build_sim(
            ReplayScheduler(recorder.schedule), use_write=True, seed=13
        )
        second = RaceStalenessSanitizer()
        replay.attach_analyzer(second)
        replay.run_analyzed(chunk=11)

        def report(sanitizer, sim_):
            run = sanitize_report_run(sanitizer, sim_)
            rep = AnalysisReport(runs=[run])
            return rep.to_json()

        def sanitize_report_run(sanitizer, sim_):
            from repro.analysis.report import RunAnalysis

            records = collect_iteration_records(sim_)
            return RunAnalysis(
                label="round-trip",
                steps=sim_.now,
                iterations=len(records),
                findings=list(sanitizer.findings),
                certificates=certify_run(records, num_threads=4),
            )

        assert report(first, sim) == report(second, replay)


class TestSanitizePresets:
    def test_racy_preset_fails(self):
        presets = sanitize_presets()
        report = run_sanitize((presets["racy"],), seeds=(1,))
        assert not report.passed
        assert any(f.rule == RULE_LOST_UPDATE for f in report.findings)

    def test_clean_presets_pass_and_reports_are_deterministic(self):
        presets = sanitize_presets()
        grid = (presets["e1"],)
        first = run_sanitize(grid, seeds=(1, 2))
        second = run_sanitize(grid, seeds=(1, 2))
        assert first.passed
        assert first.to_json() == second.to_json()
        assert first.render() == second.render()

    def test_jobs_do_not_change_the_report(self):
        presets = sanitize_presets()
        grid = (presets["e1"],)
        serial = run_sanitize(grid, seeds=(1, 2, 3, 4), jobs=1)
        parallel = run_sanitize(grid, seeds=(1, 2, 3, 4), jobs=2)
        assert serial.to_json() == parallel.to_json()


WALL_CLOCK_FIXTURE = '''
import time

def stamp():
    return time.time()
'''

RACY_PROGRAM_FIXTURE = '''
def program(model):
    value = yield model.read_op(0)
    yield model.write_op(0, value + 1.0)
'''

PRAGMA_FIXTURE = '''
def program(model):
    value = yield model.read_op(0)
    yield model.write_op(0, value + 1.0)  # repro: allow(RPL101)
'''

BAD_YIELD_FIXTURE = '''
def program(model):
    yield model.read_op(0)
    yield 42
'''

DIRECT_MUTATION_FIXTURE = '''
def program(self, ctx):
    value = yield self.model.read_op(0)
    self.model[0] = value + 1.0
    self.model.load([value])
    raw = self.model._values[0]
    yield self.model.fetch_add_op(0, -value)
'''

DIRECT_MUTATION_PRAGMA_FIXTURE = '''
def program(self, ctx):
    value = yield self.model.read_op(0)
    self.model.load([value])  # repro: allow(RPL103)
    yield self.model.fetch_add_op(0, -value)
'''

DRIVER_LOAD_FIXTURE = '''
def driver(model, x0):
    model.load(x0)
    model[0] = 1.0
    return model.snapshot()
'''

GLOBAL_RANDOM_FIXTURE = '''
import random
import numpy as np

def draw():
    a = random.random()
    b = np.random.randn(3)
    return a, b
'''

SET_ITERATION_FIXTURE = '''
def wobble(items):
    for item in {1, 2, 3}:
        pass
    for item in set(items):
        pass
'''

WALL_CLOCK_REPORT_FIXTURE = '''
class Report:
    def to_json(self):
        return {"steps": self.steps, "wall_secs": self.wall_secs}

    def as_dict(self):
        def rows():
            return [{"elapsed": 1.0}]
        return {"rows": rows(), "label": self.label}

def helper():
    # Same key names outside a report builder: not RPD204's business.
    return {"duration": 3, "monotonic": 4}
'''

WALL_CLOCK_REPORT_PRAGMA_FIXTURE = '''
def to_payload(run):
    return {
        "wall_secs": run.wall,  # repro: allow(RPD204)
        "steps": run.steps,
    }
'''

UNBOUNDED_RETRY_FIXTURE = '''
def program(register):
    while True:
        value = yield register.read_op()
        if value > 0:
            break
'''

BOUNDED_RETRY_FIXTURE = '''
def program(register, max_attempts):
    attempts = 0
    while True:
        value = yield register.read_op()
        if value > 0 or attempts >= max_attempts:
            break
        attempts += 1
'''

UNBOUNDED_RETRY_PRAGMA_FIXTURE = '''
def program(register):
    while True:  # repro: allow(RPL105)
        value = yield register.read_op()
        if value > 0:
            break
'''

UNBOUNDED_DRIVER_FIXTURE = '''
def poll(queue):
    # No op yields: not a simulated program, so RPL105 stays silent.
    while True:
        item = queue.get()
        if item is None:
            break
'''

SERVE_TIMING_FIXTURE = '''
import asyncio
import time

async def handler(policy):
    start = time.monotonic()
    time.sleep(0.1)
    now = time.time()
    await asyncio.sleep(0.5)
    await asyncio.wait_for(work(), timeout=2.0)
'''

SERVE_TIMING_INJECTED_FIXTURE = '''
import asyncio

async def handler(clock, policy):
    start = clock.monotonic()
    await clock.aio_sleep(policy.poll_interval)
    # Non-literal delays are the policy's business, not RPL106's.
    await asyncio.sleep(policy.poll_interval)
    await asyncio.wait_for(work(), timeout=policy.read_timeout)
'''

SERVE_TIMING_PRAGMA_FIXTURE = '''
import time

def tick():
    return time.monotonic()  # repro: allow(RPD201, RPL106)
'''

SPAN_NAME_FIXTURE = '''
from repro.obs.spans import trace_span

def instrumented(recorder, causal, spec):
    with trace_span("campaign.spec", spec=spec.name):
        pass
    with trace_span(f"campaign.{spec.name}"):
        pass
    with trace_span("campaign-" + spec.name):
        pass
    with trace_span("Campaign"):
        pass
    recorder.span("worker.run", key="attempt-1")
    causal.event(spec.name, det=True)
    unrelated.span(f"not.{spec.name}")
'''

SPAN_NAME_PRAGMA_FIXTURE = '''
def forwarder(causal, name, args):
    with causal.span(name, **args):  # repro: allow(RPL107)
        pass
'''


class TestLint:
    def test_wall_clock_is_flagged(self):
        findings = lint_source(WALL_CLOCK_FIXTURE, path="fixture.py")
        assert [f.rule for f in findings] == ["RPD201"]
        assert "time.time" in findings[0].message

    def test_non_atomic_rmw_is_flagged(self):
        findings = lint_source(RACY_PROGRAM_FIXTURE, path="fixture.py")
        assert any(f.rule == "RPL101" for f in findings)

    def test_pragma_suppresses_the_rule(self):
        findings = lint_source(PRAGMA_FIXTURE, path="fixture.py")
        assert not [f for f in findings if f.rule == "RPL101"]

    def test_non_operation_yield_is_flagged(self):
        findings = lint_source(BAD_YIELD_FIXTURE, path="fixture.py")
        assert any(f.rule == "RPL102" for f in findings)

    def test_direct_mutation_is_flagged(self):
        findings = lint_source(DIRECT_MUTATION_FIXTURE, path="fixture.py")
        hits = [f for f in findings if f.rule == "RPL103"]
        # The subscript store, the .load() call and the ._values reach.
        assert len(hits) == 3

    def test_direct_mutation_pragma_suppresses(self):
        findings = lint_source(
            DIRECT_MUTATION_PRAGMA_FIXTURE, path="fixture.py"
        )
        assert not [f for f in findings if f.rule == "RPL103"]

    def test_driver_mutation_is_not_flagged(self):
        # Bulk loads in drivers (no op yields -> not a program) are fine.
        findings = lint_source(DRIVER_LOAD_FIXTURE, path="fixture.py")
        assert not [f for f in findings if f.rule == "RPL103"]

    def test_global_random_is_flagged(self):
        findings = lint_source(GLOBAL_RANDOM_FIXTURE, path="fixture.py")
        assert sum(1 for f in findings if f.rule == "RPD202") == 2

    def test_set_iteration_is_flagged(self):
        findings = lint_source(SET_ITERATION_FIXTURE, path="fixture.py")
        assert sum(1 for f in findings if f.rule == "RPD203") == 2

    def test_wall_clock_report_keys_are_flagged(self):
        findings = lint_source(WALL_CLOCK_REPORT_FIXTURE, path="fixture.py")
        hits = [f for f in findings if f.rule == "RPD204"]
        # to_json's wall_secs + the nested helper's elapsed inside
        # as_dict; the free helper() dict is exempt.
        assert len(hits) == 2
        assert any("'wall_secs'" in f.message for f in hits)
        assert any("'elapsed'" in f.message for f in hits)
        assert all("helper" not in f.message for f in hits)

    def test_wall_clock_report_pragma_suppresses(self):
        findings = lint_source(
            WALL_CLOCK_REPORT_PRAGMA_FIXTURE, path="fixture.py"
        )
        assert not [f for f in findings if f.rule == "RPD204"]

    def test_unbounded_spin_is_flagged(self):
        findings = lint_source(UNBOUNDED_RETRY_FIXTURE, path="fixture.py")
        hits = [f for f in findings if f.rule == "RPL105"]
        assert len(hits) == 1
        assert "enumeration" in hits[0].message

    def test_bounded_retry_guard_passes(self):
        findings = lint_source(BOUNDED_RETRY_FIXTURE, path="fixture.py")
        assert not [f for f in findings if f.rule == "RPL105"]

    def test_unbounded_spin_pragma_suppresses(self):
        findings = lint_source(
            UNBOUNDED_RETRY_PRAGMA_FIXTURE, path="fixture.py"
        )
        assert not [f for f in findings if f.rule == "RPL105"]

    def test_non_program_loops_are_not_flagged(self):
        findings = lint_source(UNBOUNDED_DRIVER_FIXTURE, path="fixture.py")
        assert not [f for f in findings if f.rule == "RPL105"]

    def test_serve_timing_calls_are_flagged_under_serve(self):
        findings = lint_source(
            SERVE_TIMING_FIXTURE, path="src/repro/serve/handler.py"
        )
        hits = [f for f in findings if f.rule == "RPL106"]
        # time.monotonic, time.sleep, time.time, asyncio.sleep(0.5)
        # and asyncio.wait_for(..., timeout=2.0): all five.
        assert len(hits) == 5

    def test_serve_timing_outside_serve_is_silent(self):
        findings = lint_source(SERVE_TIMING_FIXTURE, path="src/other/mod.py")
        assert not [f for f in findings if f.rule == "RPL106"]

    def test_serve_injected_clock_and_policy_delays_pass(self):
        findings = lint_source(
            SERVE_TIMING_INJECTED_FIXTURE, path="src/repro/serve/handler.py"
        )
        assert not [f for f in findings if f.rule == "RPL106"]

    def test_serve_timing_pragma_suppresses(self):
        findings = lint_source(
            SERVE_TIMING_PRAGMA_FIXTURE, path="src/repro/serve/clockish.py"
        )
        assert not [f for f in findings if f.rule in ("RPL106", "RPD201")]

    def test_span_name_literals_pass_dynamic_names_flagged(self):
        findings = lint_source(SPAN_NAME_FIXTURE, path="fixture.py")
        hits = [f for f in findings if f.rule == "RPL107"]
        # The f-string, the concatenation, the non-dotted "Campaign"
        # literal, and causal.event(spec.name); the two good dotted
        # literals and the unrelated receiver stay silent.
        assert len(hits) == 4
        assert any("f-string" in f.message for f in hits)
        assert any("dynamic expression" in f.message for f in hits)
        assert any("dotted lowercase" in f.message for f in hits)

    def test_span_name_pragma_suppresses(self):
        findings = lint_source(SPAN_NAME_PRAGMA_FIXTURE, path="fixture.py")
        assert not [f for f in findings if f.rule == "RPL107"]

    def test_repo_sources_are_clean(self):
        findings = lint_paths(["src/repro"])
        assert findings == [], render_findings(findings)

    def test_findings_render_deterministically(self, tmp_path):
        target = tmp_path / "fixture.py"
        target.write_text(WALL_CLOCK_FIXTURE)
        first = render_findings(lint_paths([str(tmp_path)]))
        second = render_findings(lint_paths([str(tmp_path)]))
        assert first == second
        assert "RPD201" in first


class TestCli:
    def test_sanitize_cli_racy_fails(self, capsys):
        from repro.cli import main

        assert main(["sanitize", "--presets", "racy", "--seeds", "1"]) == 1
        out = capsys.readouterr().out
        assert "verdict: FAIL" in out
        assert "RS001" in out

    def test_sanitize_cli_clean_passes_and_writes_artifacts(
        self, capsys, tmp_path
    ):
        from repro.cli import main

        code = main(
            [
                "sanitize",
                "--presets",
                "e1",
                "--seeds",
                "1",
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 0
        assert "verdict: PASS" in capsys.readouterr().out
        assert (tmp_path / "analysis_report.txt").exists()
        assert (tmp_path / "analysis_report.json").exists()

    def test_sanitize_cli_rejects_unknown_preset(self, capsys):
        from repro.cli import main

        assert main(["sanitize", "--presets", "nope"]) == 2

    def test_lint_cli(self, capsys, tmp_path):
        from repro.cli import main

        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main(["lint", str(clean)]) == 0
        dirty = tmp_path / "dirty.py"
        dirty.write_text(WALL_CLOCK_FIXTURE)
        assert main(["lint", str(dirty)]) == 1
        assert main(["lint", str(tmp_path / "missing.py")]) == 2


class TestFindingModel:
    def test_monitor_violations_are_findings(self):
        from repro.faults.monitors import Violation

        violation = Violation(
            source="model-finite",
            rule="monitor:model-finite",
            message="model[0] is inf",
            time=12,
        )
        assert isinstance(violation, Finding)
        assert violation.monitor == "model-finite"
        assert str(violation) == "[model-finite @ t=12] model[0] is inf"
        assert violation.as_dict()["severity"] == "error"


MUTATING_DETECTOR_FIXTURE = '''
class QuietDetector:
    def check(self, sim):
        view = sim.memory.peek_range(0, 4)
        sim.memory.poke(0, 0.0)
        sim.memory.load([0.0])
        raw = sim.memory._values[0]
        return None
'''

MUTATING_DETECTOR_PRAGMA_FIXTURE = '''
class QuietDetector:
    def check(self, sim):
        sim.memory.poke(0, 0.0)  # repro: allow(RPL104)
        return None
'''

READ_ONLY_DETECTOR_FIXTURE = '''
import json

class HonestDetector:
    def check(self, sim):
        view = sim.memory.peek_range(0, 4)
        with open("config.json") as handle:
            config = json.load(handle)
        return None
'''

DETECTOR_BY_BASE_FIXTURE = '''
from repro.heal.detectors import HealthDetector

class Sneaky(HealthDetector):
    def check(self, sim):
        sim.memory.store(0, 1.0)
        return None
'''

NON_DETECTOR_POKE_FIXTURE = '''
class Driver:
    def prepare(self, sim):
        sim.memory.poke(0, 2.0)  # drivers may poke; not a detector
'''


class TestLintDetectorPurity:
    """RPL104: health detectors are read-only observers."""

    def test_mutating_detector_is_flagged_per_sin(self):
        findings = lint_source(MUTATING_DETECTOR_FIXTURE, path="fixture.py")
        hits = [f for f in findings if f.rule == "RPL104"]
        # The .poke() call, the memory.load() call and the ._values reach.
        assert len(hits) == 3
        assert all("QuietDetector" in f.message for f in hits)

    def test_pragma_suppresses(self):
        findings = lint_source(
            MUTATING_DETECTOR_PRAGMA_FIXTURE, path="fixture.py"
        )
        assert not [f for f in findings if f.rule == "RPL104"]

    def test_read_only_detector_is_clean(self):
        # peek_range is fine, and json.load is not a memory mutation.
        findings = lint_source(READ_ONLY_DETECTOR_FIXTURE, path="fixture.py")
        assert not [f for f in findings if f.rule == "RPL104"]

    def test_healthdetector_subclass_caught_by_base(self):
        findings = lint_source(DETECTOR_BY_BASE_FIXTURE, path="fixture.py")
        assert [f.rule for f in findings] == ["RPL104"]

    def test_non_detector_classes_exempt(self):
        findings = lint_source(NON_DETECTOR_POKE_FIXTURE, path="fixture.py")
        assert not [f for f in findings if f.rule == "RPL104"]

    def test_shipped_detectors_pass_their_own_rule(self):
        findings = lint_paths(["src/repro/heal"])
        assert findings == [], render_findings(findings)
