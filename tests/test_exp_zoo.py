"""The zoo grid's durability and determinism contract, plus the E13
wrapper and CLI: byte-identical reports across ``--jobs`` values and
across journal kill/resume, partial reports covering exactly the
journaled prefix, payload round-trips, config validation and the
``python -m repro zoo`` entry point."""

import functools
import json

import pytest

from repro.cli import main
from repro.durable.journal import RunJournal
from repro.durable.signals import GracefulShutdown
from repro.errors import ConfigurationError, InterruptedRunError
from repro.experiments import e13_algorithm_zoo as zoo
from repro.experiments.e13_algorithm_zoo import (
    E13Config,
    ZooConfig,
    ZooWorkload,
    outcome_from_payload,
    outcome_to_payload,
    partial_zoo_report,
    run_zoo,
    to_zoo_config,
    zoo_fingerprint,
)


class _TripAfter:
    """Journal wrapper that requests shutdown once k cells are recorded —
    a deterministic stand-in for SIGTERM arriving mid-grid."""

    def __init__(self, journal, shutdown, k):
        self._journal = journal
        self._shutdown = shutdown
        self._k = k

    def completed(self, namespace):
        return self._journal.completed(namespace)

    def record(self, namespace, seed, payload):
        self._journal.record(namespace, seed, payload)
        if self._journal.total_completed >= self._k:
            self._shutdown.requested = True
            self._shutdown.signal_name = "SIGTERM"


def _zoo_config(jobs=1):
    return ZooConfig(
        algorithms=("hogwild", "locked"),
        adversaries=("round-robin", "stale-attack"),
        seeds=(100, 101),
        workload=ZooWorkload(iterations=40),
        jobs=jobs,
    )


@functools.lru_cache(maxsize=None)
def _zoo_reference():
    """The uninterrupted serial zoo report every variant must match."""
    report = run_zoo(_zoo_config())
    return report.to_json(), tuple(report.outcomes)


class TestZooDeterminism:
    def test_jobs_2_report_is_byte_identical(self):
        reference, _ = _zoo_reference()
        report = run_zoo(_zoo_config(jobs=2))
        assert report.to_json() == reference

    def test_fingerprint_ignores_jobs_only(self):
        base = zoo_fingerprint(_zoo_config())
        assert zoo_fingerprint(_zoo_config(jobs=4)) == base
        different_seeds = ZooConfig(
            algorithms=("hogwild", "locked"),
            adversaries=("round-robin", "stale-attack"),
            seeds=(100, 102),
            workload=ZooWorkload(iterations=40),
        )
        assert zoo_fingerprint(different_seeds) != base

    def test_outcome_payload_round_trips_through_json(self):
        _, outcomes = _zoo_reference()
        for outcome in outcomes:
            payload = json.loads(json.dumps(outcome_to_payload(outcome)))
            assert outcome_from_payload(payload) == outcome


class TestZooKillResume:
    @pytest.mark.parametrize("k", [1, 3])
    def test_interrupt_then_resume_is_byte_identical(self, tmp_path, k):
        reference, _ = _zoo_reference()
        path = tmp_path / "journal.jsonl"
        config = _zoo_config()
        fingerprint = zoo_fingerprint(config)
        journal = RunJournal.open(path, fingerprint)
        shutdown = GracefulShutdown(install=False)
        with pytest.raises(InterruptedRunError):
            run_zoo(
                config,
                journal=_TripAfter(journal, shutdown, k),
                shutdown=shutdown,
            )
        journal.close()
        resumed = RunJournal.open(path, fingerprint, resume=True)
        assert resumed.total_completed >= k
        report = run_zoo(_zoo_config(), journal=resumed)
        resumed.close()
        assert report.to_json() == reference

    def test_partial_report_covers_exactly_the_journaled_prefix(
        self, tmp_path
    ):
        _, reference_outcomes = _zoo_reference()
        path = tmp_path / "journal.jsonl"
        config = _zoo_config()
        fingerprint = zoo_fingerprint(config)
        journal = RunJournal.open(path, fingerprint)
        shutdown = GracefulShutdown(install=False)
        with pytest.raises(InterruptedRunError):
            run_zoo(
                config,
                journal=_TripAfter(journal, shutdown, 3),
                shutdown=shutdown,
            )
        journal.close()
        resumed = RunJournal.open(path, fingerprint, resume=True)
        partial = partial_zoo_report(config, resumed)
        resumed.close()
        assert tuple(partial.outcomes) == reference_outcomes[:3]


class TestZooConfigValidation:
    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            ZooConfig(
                algorithms=("nonexistent",),
                adversaries=("round-robin",),
                seeds=(1,),
            )

    def test_unknown_adversary_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown adversary"):
            ZooConfig(
                algorithms=("hogwild",),
                adversaries=("nonexistent",),
                seeds=(1,),
            )

    def test_empty_axes_rejected(self):
        with pytest.raises(ConfigurationError):
            ZooConfig(algorithms=(), adversaries=("round-robin",), seeds=(1,))
        with pytest.raises(ConfigurationError):
            ZooConfig(algorithms=("hogwild",), adversaries=(), seeds=(1,))
        with pytest.raises(ConfigurationError):
            ZooConfig(
                algorithms=("hogwild",), adversaries=("round-robin",), seeds=()
            )


class TestE13:
    def test_small_grid_passes(self):
        config = E13Config(
            algorithms=["epoch-sgd", "leashed"],
            adversaries=["round-robin", "contention-max"],
            iterations=40,
            num_seeds=1,
        )
        result = zoo.run(config)
        assert result.experiment_id == "E13"
        assert result.passed
        # One series point per adversary, per algorithm.
        assert set(result.series) == {"epoch-sgd", "leashed"}
        assert all(len(v) == 2 for v in result.series.values())

    def test_full_exceeds_quick(self):
        quick, full = E13Config.quick(), E13Config.full()
        assert full.num_seeds > quick.num_seeds
        assert full.iterations > quick.iterations

    def test_to_zoo_config_spans_the_declared_grid(self):
        config = to_zoo_config(E13Config(num_seeds=3, base_seed=50))
        assert config.seeds == (50, 51, 52)
        assert set(config.algorithms) == set(E13Config().algorithms)


class TestZooCli:
    ARGS = [
        "zoo",
        "--algorithms",
        "hogwild,locked",
        "--adversaries",
        "round-robin,stale-attack",
        "--seeds",
        "2",
        "--iterations",
        "40",
    ]

    def test_zoo_writes_reports_and_exits_zero(self, tmp_path, capsys):
        out = tmp_path / "zoo"
        assert main(self.ARGS + ["--out", str(out)]) == 0
        assert (out / "zoo_report.json").exists()
        assert (out / "zoo_report.txt").exists()
        payload = json.loads((out / "zoo_report.json").read_text())
        assert payload["passed"] is True
        assert len(payload["outcomes"]) == 2 * 2 * 2
        assert "Algorithm zoo" in capsys.readouterr().out

    def test_unknown_algorithm_exits_2(self, tmp_path, capsys):
        code = main(
            ["zoo", "--algorithms", "bogus", "--out", str(tmp_path / "z")]
        )
        assert code == 2

    def test_jobs_2_cli_report_matches_serial(self, tmp_path):
        serial, parallel = tmp_path / "serial", tmp_path / "parallel"
        assert main(self.ARGS + ["--out", str(serial)]) == 0
        assert main(self.ARGS + ["--out", str(parallel), "--jobs", "2"]) == 0
        assert (serial / "zoo_report.json").read_bytes() == (
            parallel / "zoo_report.json"
        ).read_bytes()

    def test_journal_resume_cli_matches_fresh(self, tmp_path):
        fresh, journaled = tmp_path / "fresh", tmp_path / "journaled"
        journal = tmp_path / "zoo.jsonl"
        assert main(self.ARGS + ["--out", str(fresh)]) == 0
        assert (
            main(
                self.ARGS
                + ["--out", str(journaled), "--journal", str(journal)]
            )
            == 0
        )
        assert journal.exists()
        # Resuming from the complete journal recomputes nothing and still
        # emits identical bytes.
        resumed = tmp_path / "resumed"
        assert (
            main(
                self.ARGS
                + [
                    "--out",
                    str(resumed),
                    "--journal",
                    str(journal),
                    "--resume",
                ]
            )
            == 0
        )
        reference = (fresh / "zoo_report.json").read_bytes()
        assert (journaled / "zoo_report.json").read_bytes() == reference
        assert (resumed / "zoo_report.json").read_bytes() == reference
