"""Property-based tests of the shared-memory substrate (hypothesis).

Random programs of atomic operations are applied to the memory; the
recorded log must replay exactly, reads must be coherent, and fetch&add
accounting must balance — i.e. the memory really is an atomic,
sequentially consistent register set.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.shm.history import (
    check_fetch_add_totals,
    check_log_replay,
    check_read_coherence,
)
from repro.shm.memory import SharedMemory
from repro.shm.ops import (
    CompareAndSwap,
    FetchAdd,
    GuardedFetchAdd,
    Noop,
    Read,
    Write,
)

NUM_CELLS = 4

finite = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e6, max_value=1e6
)
address = st.integers(min_value=0, max_value=NUM_CELLS - 1)


def _operations():
    return st.one_of(
        st.builds(Read, address=address),
        st.builds(Write, address=address, value=finite),
        st.builds(FetchAdd, address=address, delta=finite),
        st.builds(CompareAndSwap, address=address, expected=finite, new=finite),
        st.builds(
            GuardedFetchAdd,
            address=address,
            delta=finite,
            guard_address=address,
            guard_expected=st.sampled_from([0.0, 1.0]),
        ),
        st.builds(Noop, address=address),
    )


@given(ops=st.lists(_operations(), min_size=1, max_size=60))
@settings(max_examples=200, deadline=None)
def test_log_replays_exactly(ops):
    memory = SharedMemory(record_log=True)
    memory.allocate(NUM_CELLS)
    for op in ops:
        memory.execute(op)
    final = check_log_replay(memory.log, {}, memory.size)
    for addr in range(NUM_CELLS):
        assert final.get(addr, 0.0) == memory.peek(addr)


@given(ops=st.lists(_operations(), min_size=1, max_size=60))
@settings(max_examples=200, deadline=None)
def test_reads_are_coherent(ops):
    memory = SharedMemory(record_log=True)
    memory.allocate(NUM_CELLS)
    for op in ops:
        memory.execute(op)
    check_read_coherence(memory.log)


@given(
    deltas=st.lists(finite, min_size=1, max_size=50),
    interleave_reads=st.booleans(),
)
@settings(max_examples=200, deadline=None)
def test_fetch_add_never_loses_updates(deltas, interleave_reads):
    """Linearizability content of fetch&add: final = initial + sum."""
    memory = SharedMemory(record_log=True)
    base = memory.allocate(1, initial=1.0)
    for delta in deltas:
        memory.execute(FetchAdd(base, delta))
        if interleave_reads:
            memory.execute(Read(base))
    check_fetch_add_totals(memory.log, [base], 1.0, {base: memory.peek(base)})


@given(ops=st.lists(_operations(), min_size=1, max_size=40))
@settings(max_examples=100, deadline=None)
def test_execution_is_deterministic(ops):
    """Replaying the identical op sequence yields identical memory."""
    images = []
    for _ in range(2):
        memory = SharedMemory(record_log=False)
        memory.allocate(NUM_CELLS)
        for op in ops:
            memory.execute(op)
        images.append([memory.peek(a) for a in range(NUM_CELLS)])
    assert images[0] == images[1]
