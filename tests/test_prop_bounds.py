"""Property-based tests of the bound calculators.

The bounds are the paper's deliverable; these properties pin down the
qualitative facts the text claims about them, over wide random parameter
ranges: positivity, the 1/T decay, monotone growth in the delay, the
√ vs linear growth orders, the exact crossover at τ = 4nd, and the
step-size orderings.
"""

import math

import hypothesis.strategies as st
import pytest
from hypothesis import assume, given, settings

from repro.theory.bounds import (
    contention_constant,
    corollary_6_7_failure_bound,
    corollary_6_7_step_size,
    theorem_3_1_failure_bound,
    theorem_3_1_step_size,
    theorem_6_3_failure_bound,
    theorem_6_3_step_size,
)
from repro.theory.lower_bound import required_delay, slowdown_factor

pos = st.floats(min_value=1e-3, max_value=1e3, allow_nan=False)
small_pos = st.floats(min_value=1e-3, max_value=10.0, allow_nan=False)
tau_values = st.floats(min_value=0.0, max_value=1e5, allow_nan=False)
thread_counts = st.integers(min_value=1, max_value=64)
dims = st.integers(min_value=1, max_value=64)
horizons = st.integers(min_value=1, max_value=10**9)


class TestBoundShapes:
    @given(c=pos, m2=pos, eps=small_pos, T=horizons, d0=pos)
    @settings(max_examples=200, deadline=None)
    def test_theorem_3_1_bound_in_unit_interval_and_decaying(
        self, c, m2, eps, T, d0
    ):
        b1 = theorem_3_1_failure_bound(T, eps, c, m2, d0)
        b2 = theorem_3_1_failure_bound(2 * T, eps, c, m2, d0)
        assert 0.0 <= b2 <= b1 <= 1.0

    @given(c=pos, m2=pos, L=pos, eps=small_pos, d0=pos, T=horizons,
           tau_a=tau_values, tau_b=tau_values)
    @settings(max_examples=200, deadline=None)
    def test_theorem_6_3_monotone_in_tau(
        self, c, m2, L, eps, d0, T, tau_a, tau_b
    ):
        lo, hi = sorted((tau_a, tau_b))
        assert theorem_6_3_failure_bound(
            T, eps, c, m2, L, lo, d0
        ) <= theorem_6_3_failure_bound(T, eps, c, m2, L, hi, d0)

    @given(c=pos, m2=pos, L=pos, eps=small_pos, d0=pos, T=horizons,
           n=thread_counts, d=dims, tau_a=tau_values, tau_b=tau_values)
    @settings(max_examples=200, deadline=None)
    def test_corollary_6_7_monotone_in_tau(
        self, c, m2, L, eps, d0, T, n, d, tau_a, tau_b
    ):
        lo, hi = sorted((tau_a, tau_b))
        assert corollary_6_7_failure_bound(
            T, eps, c, m2, L, lo, n, d, d0
        ) <= corollary_6_7_failure_bound(T, eps, c, m2, L, hi, n, d, d0)

    @given(c=pos, m2=pos, L=pos, eps=small_pos, n=thread_counts, d=dims)
    @settings(max_examples=200, deadline=None)
    def test_crossover_exactly_at_4nd(self, c, m2, L, eps, n, d):
        """The Cor 6.7 and Thm 6.3 *numerators* coincide at τ = 4nd, so
        the prescribed step sizes are equal there — and ordered on each
        side."""
        crossover = 4.0 * n * d
        alpha_new = corollary_6_7_step_size(c, m2, L, crossover, n, d, eps)
        alpha_old = theorem_6_3_step_size(c, m2, L, crossover, eps)
        assert alpha_new == pytest.approx(alpha_old, rel=1e-9)
        beyond = 4.0 * crossover
        assert corollary_6_7_step_size(
            c, m2, L, beyond, n, d, eps
        ) > theorem_6_3_step_size(c, m2, L, beyond, eps)
        before = crossover / 4.0
        assert corollary_6_7_step_size(
            c, m2, L, before, n, d, eps
        ) < theorem_6_3_step_size(c, m2, L, before, eps)

    @given(c=pos, m2=pos, L=pos, eps=small_pos, n=thread_counts, d=dims,
           tau=st.floats(min_value=0.1, max_value=1e5))
    @settings(max_examples=200, deadline=None)
    def test_step_sizes_positive_and_below_sequential(
        self, c, m2, L, eps, n, d, tau
    ):
        sequential = theorem_3_1_step_size(c, m2, eps)
        asynchronous = corollary_6_7_step_size(c, m2, L, tau, n, d, eps)
        assert 0.0 < asynchronous <= sequential

    @given(tau=st.floats(min_value=1.0, max_value=1e6), n=thread_counts)
    @settings(max_examples=200, deadline=None)
    def test_contention_constant_sqrt_scaling(self, tau, n):
        base = contention_constant(tau, n)
        assert contention_constant(4 * tau, n) == pytest.approx(2 * base)
        assert contention_constant(tau, n) == pytest.approx(
            2 * math.sqrt(tau * n)
        )

    @given(c=pos, m2=pos, L=pos, eps=small_pos, d0=pos, n=thread_counts,
           d=dims)
    @settings(max_examples=100, deadline=None)
    def test_sqrt_vs_linear_growth_orders(self, c, m2, L, eps, d0, n, d):
        """Quadrupling τ doubles the new bound's extra term but
        quadruples the old one's: measured on the un-truncated
        numerators via huge-T evaluations."""
        T = 10**12
        tau = 16.0 * n * d  # beyond the crossover

        # Guard against the min(1, .)/max(0, .) truncation: every bound
        # evaluated must be strictly interior for the ratios to reflect
        # the formula.
        evaluations = [
            theorem_6_3_failure_bound(T, eps, c, m2, L, 4 * tau, d0),
            corollary_6_7_failure_bound(T, eps, c, m2, L, 4 * tau, n, d, d0),
        ]
        assume(all(1e-15 < b < 0.99 for b in evaluations))

        def extra_new(t):
            return corollary_6_7_failure_bound(
                T, eps, c, m2, L, t, n, d, d0
            ) - corollary_6_7_failure_bound(T, eps, c, m2, L, 0.0, n, d, d0)

        def extra_old(t):
            return theorem_6_3_failure_bound(
                T, eps, c, m2, L, t, d0
            ) - theorem_6_3_failure_bound(T, eps, c, m2, L, 0.0, d0)

        assume(extra_new(tau) > 1e-15 and extra_old(tau) > 1e-15)
        new_ratio = extra_new(4 * tau) / extra_new(tau)
        old_ratio = extra_old(4 * tau) / extra_old(tau)
        assert new_ratio == pytest.approx(2.0, rel=1e-3)
        assert old_ratio == pytest.approx(4.0, rel=1e-3)


class TestLowerBoundCalculus:
    @given(alpha=st.floats(min_value=0.01, max_value=0.9))
    @settings(max_examples=200, deadline=None)
    def test_required_delay_is_minimal(self, alpha):
        tau = required_delay(alpha)
        assert 2 * (1 - alpha) ** tau <= alpha + 1e-12
        if tau > 1:
            assert 2 * (1 - alpha) ** (tau - 1) > alpha - 1e-12

    @given(
        alpha=st.floats(min_value=0.01, max_value=0.9),
        tau=st.integers(min_value=1, max_value=10**6),
        k=st.integers(min_value=2, max_value=10),
    )
    @settings(max_examples=200, deadline=None)
    def test_slowdown_linear_homogeneous(self, alpha, tau, k):
        assert slowdown_factor(alpha, k * tau) == pytest.approx(
            k * slowdown_factor(alpha, tau), rel=1e-9
        )

    @given(alpha=st.floats(min_value=0.01, max_value=0.9),
           tau=st.integers(min_value=1, max_value=10**6))
    @settings(max_examples=200, deadline=None)
    def test_slowdown_positive(self, alpha, tau):
        assert slowdown_factor(alpha, tau) > 0
