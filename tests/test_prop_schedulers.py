"""Property-based scheduler stress tests.

Every scheduler in the library, driven over randomized thread counts,
program lengths and seeds, must satisfy the basic liveness/sanity
contract: the simulation quiesces, every non-crashed thread finishes its
program, the counter accounting balances, and replays are faithful.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.runtime.program import FunctionProgram
from repro.runtime.simulator import Simulator
from repro.runtime.thread import ThreadState
from repro.sched.bounded_delay import BoundedDelayScheduler
from repro.sched.crash import CrashPlan, CrashScheduler
from repro.sched.priority_delay import PriorityDelayScheduler
from repro.sched.random_sched import RandomScheduler
from repro.sched.replay import RecordingScheduler, ReplayScheduler
from repro.sched.round_robin import RoundRobinScheduler
from repro.sched.sequential import SequentialScheduler
from repro.shm.counter import AtomicCounter
from repro.shm.memory import SharedMemory


@st.composite
def stress_cases(draw):
    return dict(
        num_threads=draw(st.integers(min_value=1, max_value=6)),
        rounds=draw(st.lists(
            st.integers(min_value=0, max_value=20), min_size=1, max_size=6
        )),
        seed=draw(st.integers(min_value=0, max_value=10**6)),
        kind=draw(st.sampled_from(
            ["sequential", "round_robin", "random", "bounded", "priority"]
        )),
        delay=draw(st.integers(min_value=1, max_value=50)),
    )


def _build(kind, seed, delay, num_threads):
    if kind == "sequential":
        return SequentialScheduler()
    if kind == "round_robin":
        return RoundRobinScheduler()
    if kind == "random":
        return RandomScheduler(seed=seed)
    if kind == "bounded":
        return BoundedDelayScheduler(delay, seed=seed, victims=[0])
    return PriorityDelayScheduler(victims=[0], delay=delay, seed=seed)


def _run_case(case, scheduler):
    memory = SharedMemory(record_log=False)
    counter = AtomicCounter.allocate(memory)
    sim = Simulator(memory, scheduler, seed=case["seed"])
    rounds = case["rounds"]
    for i in range(case["num_threads"]):
        per_thread = rounds[i % len(rounds)]

        def loop(ctx, k=per_thread):
            for _ in range(k):
                yield counter.increment_op()
            return "done"

        sim.spawn(FunctionProgram(loop))
    sim.run()
    return sim, counter


@given(case=stress_cases())
@settings(max_examples=60, deadline=None)
def test_every_scheduler_quiesces_and_balances(case):
    scheduler = _build(
        case["kind"], case["seed"], case["delay"], case["num_threads"]
    )
    sim, counter = _run_case(case, scheduler)
    assert sim.is_done
    assert all(t.state is ThreadState.FINISHED for t in sim.threads)
    expected = sum(
        case["rounds"][i % len(case["rounds"])]
        for i in range(case["num_threads"])
    )
    assert counter.count == expected
    assert sim.now == expected  # one step per increment, nothing wasted


@given(case=stress_cases())
@settings(max_examples=40, deadline=None)
def test_record_then_replay_is_identical(case):
    scheduler = _build(
        case["kind"], case["seed"], case["delay"], case["num_threads"]
    )
    recorder = RecordingScheduler(scheduler)
    sim_a, counter_a = _run_case(case, recorder)
    sim_b, counter_b = _run_case(case, ReplayScheduler(recorder.schedule))
    assert counter_a.count == counter_b.count
    assert sim_a.now == sim_b.now


@given(
    case=stress_cases(),
    crash_step=st.integers(min_value=0, max_value=10),
)
@settings(max_examples=40, deadline=None)
def test_crashes_never_deadlock(case, crash_step):
    if case["num_threads"] < 2:
        return  # nothing to crash
    inner = _build(
        case["kind"], case["seed"], case["delay"], case["num_threads"]
    )
    scheduler = CrashScheduler(
        inner, [CrashPlan(thread_id=1, after_steps=crash_step)]
    )
    sim, counter = _run_case(case, scheduler)
    assert sim.is_done
    survivors = [t for t in sim.threads if t.state is ThreadState.FINISHED]
    assert len(survivors) >= case["num_threads"] - 1
