"""Unit tests for AtomicRegister, AtomicArray and AtomicCounter handles."""

import numpy as np
import pytest

from repro.errors import InvalidOperationError
from repro.shm.array import AtomicArray
from repro.shm.counter import AtomicCounter
from repro.shm.ops import FetchAdd, GuardedFetchAdd, Read, Write
from repro.shm.register import AtomicRegister


class TestRegister:
    def test_op_constructors_bind_address(self, memory):
        reg = AtomicRegister(memory, memory.allocate(1))
        assert isinstance(reg.read_op(), Read)
        assert reg.read_op().address == reg.address
        assert reg.write_op(2.0) == Write(reg.address, 2.0)
        assert reg.fetch_add_op(1.5) == FetchAdd(reg.address, 1.5)
        assert reg.cas_op(0.0, 1.0).expected == 0.0

    def test_direct_operations_roundtrip(self, memory):
        reg = AtomicRegister(memory, memory.allocate(1))
        reg.write_direct(4.0)
        assert reg.read_direct() == 4.0
        assert reg.fetch_add_direct(1.0) == 4.0
        assert reg.value == 5.0

    def test_direct_cas(self, memory):
        reg = AtomicRegister(memory, memory.allocate(1, initial=1.0))
        assert reg.cas_direct(1.0, 2.0) is True
        assert reg.cas_direct(1.0, 3.0) is False
        assert reg.value == 2.0

    def test_direct_ops_are_logged(self, memory):
        reg = AtomicRegister(memory, memory.allocate(1))
        reg.write_direct(1.0)
        reg.read_direct()
        assert len(memory.log) == 2

    def test_guarded_fetch_add_op(self, memory):
        guard = AtomicRegister(memory, memory.allocate(1, initial=2.0))
        reg = AtomicRegister(memory, memory.allocate(1))
        op = reg.guarded_fetch_add_op(0.5, guard, 2.0)
        assert isinstance(op, GuardedFetchAdd)
        ok, prev = memory.execute(op)
        assert ok and prev == 0.0
        assert reg.value == 0.5


class TestArray:
    def test_allocate_and_snapshot(self, memory):
        array = AtomicArray.allocate(memory, 4, name="m", initial=1.0)
        snapshot = array.snapshot()
        np.testing.assert_allclose(snapshot, np.ones(4))

    def test_load_and_snapshot_roundtrip(self, memory):
        array = AtomicArray.allocate(memory, 3)
        values = np.array([1.0, -2.0, 3.5])
        array.load(values)
        np.testing.assert_allclose(array.snapshot(), values)

    def test_load_wrong_length(self, memory):
        array = AtomicArray.allocate(memory, 3)
        with pytest.raises(InvalidOperationError):
            array.load(np.zeros(2))

    def test_index_bounds(self, memory):
        array = AtomicArray.allocate(memory, 3)
        with pytest.raises(InvalidOperationError):
            array.read_op(3)
        with pytest.raises(InvalidOperationError):
            array.read_op(-1)

    def test_address_mapping_roundtrip(self, memory):
        memory.allocate(5)  # offset the base
        array = AtomicArray.allocate(memory, 4)
        for index in range(4):
            address = array.address_of(index)
            assert array.contains_address(address)
            assert array.index_of_address(address) == index
        assert not array.contains_address(array.base - 1)
        with pytest.raises(InvalidOperationError):
            array.index_of_address(array.base + 4)

    def test_per_entry_ops(self, memory):
        array = AtomicArray.allocate(memory, 2)
        memory.execute(array.fetch_add_op(1, 3.0))
        assert memory.execute(array.read_op(1)) == 3.0
        assert memory.execute(array.read_op(0)) == 0.0

    def test_iter_registers(self, memory):
        array = AtomicArray.allocate(memory, 3)
        registers = list(array)
        assert len(registers) == 3
        assert [r.address for r in registers] == [array.base + i for i in range(3)]

    def test_len(self, memory):
        assert len(AtomicArray.allocate(memory, 7)) == 7

    def test_zero_length_rejected(self, memory):
        with pytest.raises(InvalidOperationError):
            AtomicArray(memory, 0, 0)


class TestCounter:
    def test_increment_direct_returns_previous(self, memory):
        counter = AtomicCounter.allocate(memory, name="c")
        assert counter.increment_direct() == 0.0
        assert counter.increment_direct() == 1.0
        assert counter.count == 2

    def test_increment_op_descriptor(self, memory):
        counter = AtomicCounter.allocate(memory)
        op = counter.increment_op()
        assert isinstance(op, FetchAdd)
        assert op.delta == 1.0

    def test_counter_is_register(self, memory):
        counter = AtomicCounter.allocate(memory, initial=5.0)
        assert isinstance(counter, AtomicRegister)
        assert counter.value == 5.0
