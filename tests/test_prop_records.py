"""Property-based tests over iteration records: the accumulator
trajectory, the serializer round-trip, and record geometry helpers."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.core.results import accumulator_trajectory
from repro.metrics.serialize import record_from_dict, record_to_dict
from repro.runtime.events import IterationRecord
from repro.theory.contention import delay_sequence, interval_contention

DIM = 3

finite = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-100.0, max_value=100.0
)


@st.composite
def iteration_records(draw, max_count=12):
    """A structurally valid stream of iteration records.

    Times are made consistent (start < read_start <= read_end <=
    first_update <= end) and globally increasing enough to be a legal
    trace shape, though overlaps are allowed (that's the point).
    """
    count = draw(st.integers(min_value=1, max_value=max_count))
    records = []
    base = 0
    for index in range(count):
        start = base + draw(st.integers(min_value=0, max_value=3))
        read_start = start + 1 + draw(st.integers(min_value=0, max_value=3))
        read_end = read_start + DIM - 1
        gradient = np.array([draw(finite) for _ in range(DIM)])
        nonzero = [j for j in range(DIM) if gradient[j] != 0.0]
        update_times = [None] * DIM
        t = read_end
        for j in nonzero:
            t += 1 + draw(st.integers(min_value=0, max_value=2))
            update_times[j] = t
        end = t if nonzero else read_end
        first_update = update_times[nonzero[0]] if nonzero else None
        applied = [
            update_times[j] is not None
            and draw(st.booleans() if draw(st.booleans()) else st.just(True))
            for j in range(DIM)
        ]
        records.append(
            IterationRecord(
                time=end,
                thread_id=draw(st.integers(min_value=0, max_value=3)),
                index=index,
                epoch=draw(st.integers(min_value=0, max_value=2)),
                start_time=start,
                read_start_time=read_start,
                read_end_time=read_end,
                first_update_time=first_update,
                end_time=end,
                view=np.array([draw(finite) for _ in range(DIM)]),
                gradient=gradient,
                applied=applied,
                update_times=update_times,
                step_size=draw(
                    st.floats(min_value=1e-4, max_value=1.0,
                              allow_nan=False)
                ),
            )
        )
        base = start + 1
    return records


class TestAccumulatorTrajectory:
    @given(records=iteration_records())
    @settings(max_examples=100, deadline=None)
    def test_shape_and_initial_row(self, records):
        x0 = np.zeros(DIM)
        trajectory = accumulator_trajectory(x0, records)
        assert trajectory.shape == (len(records) + 1, DIM)
        np.testing.assert_array_equal(trajectory[0], x0)

    @given(records=iteration_records(), shift=finite)
    @settings(max_examples=100, deadline=None)
    def test_translation_equivariance(self, records, shift):
        """Shifting x0 shifts every x_t by the same vector."""
        x0 = np.zeros(DIM)
        shifted = x0 + shift
        base = accumulator_trajectory(x0, records)
        moved = accumulator_trajectory(shifted, records)
        np.testing.assert_allclose(moved, base + shift, rtol=1e-9, atol=1e-9)

    @given(records=iteration_records())
    @settings(max_examples=100, deadline=None)
    def test_steps_match_applied_deltas(self, records):
        x0 = np.zeros(DIM)
        trajectory = accumulator_trajectory(x0, records)
        for t, record in enumerate(records, start=1):
            delta = trajectory[t] - trajectory[t - 1]
            expected = -record.step_size * record.gradient * np.asarray(
                record.applied, dtype=float
            )
            np.testing.assert_allclose(delta, expected, rtol=1e-9, atol=1e-9)


class TestSerializationRoundtrip:
    @given(records=iteration_records(max_count=6))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_is_identity_on_analysis_fields(self, records):
        for record in records:
            clone = record_from_dict(record_to_dict(record))
            assert clone.order_time == record.order_time
            assert clone.start_time == record.start_time
            assert clone.end_time == record.end_time
            np.testing.assert_array_equal(clone.gradient, record.gradient)
            assert clone.applied == record.applied

    @given(records=iteration_records(max_count=8))
    @settings(max_examples=50, deadline=None)
    def test_contention_invariant_under_roundtrip(self, records):
        clones = [record_from_dict(record_to_dict(r)) for r in records]
        np.testing.assert_array_equal(
            interval_contention(records), interval_contention(clones)
        )
        np.testing.assert_array_equal(
            delay_sequence(records), delay_sequence(clones)
        )


class TestRecordGeometry:
    @given(records=iteration_records(max_count=8))
    @settings(max_examples=100, deadline=None)
    def test_overlap_is_symmetric(self, records):
        for a in records:
            for b in records:
                assert a.overlaps(b) == b.overlaps(a)

    @given(records=iteration_records(max_count=8))
    @settings(max_examples=100, deadline=None)
    def test_every_record_overlaps_itself(self, records):
        for record in records:
            assert record.overlaps(record)

    @given(records=iteration_records(max_count=8))
    @settings(max_examples=100, deadline=None)
    def test_delay_sequence_at_least_one(self, records):
        delays = delay_sequence(records)
        assert np.all(delays >= 1)

    @given(records=iteration_records(max_count=8))
    @settings(max_examples=100, deadline=None)
    def test_contention_bounded_by_count(self, records):
        contention = interval_contention(records)
        assert np.all(contention <= len(records) - 1)
        assert np.all(contention >= 0)
