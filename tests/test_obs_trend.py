"""Perf-trend observatory tests: metric flattening, content digests,
idempotent ledger ingestion, delta rows, and the CI regression gate."""

import json

from repro.obs.trend import (
    LEDGER_NAME,
    bench_digest,
    check_regressions,
    flatten_metrics,
    ingest,
    is_throughput_metric,
    load_ledger,
    render_trend,
    trend_rows,
)

BENCH = {
    "unix_time": 1754000000.0,
    "steps_per_sec": 1000.0,
    "passed": True,
    "cache": {"hit_speedup_x": 10.0, "entries": 3},
    "label": "quick",
}


def _write_bench(results_dir, name, payload):
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / f"BENCH_{name}.json").write_text(
        json.dumps(payload), encoding="utf-8"
    )


class TestFlattenAndDigest:
    def test_flatten_dotted_numeric_leaves_only(self):
        flat = flatten_metrics(BENCH)
        assert flat == {
            "steps_per_sec": 1000.0,
            "cache.hit_speedup_x": 10.0,
            "cache.entries": 3.0,
        }
        # Bools, strings, and the volatile stamp never become metrics.
        assert "passed" not in flat and "unix_time" not in flat

    def test_digest_ignores_unix_time_only(self):
        restamped = dict(BENCH, unix_time=9999.0)
        assert bench_digest(restamped) == bench_digest(BENCH)
        changed = dict(BENCH, steps_per_sec=999.0)
        assert bench_digest(changed) != bench_digest(BENCH)

    def test_throughput_metric_detection(self):
        assert is_throughput_metric("zoo.steps_per_sec")
        assert is_throughput_metric("cache.hit_speedup_x")
        assert is_throughput_metric("mixed.THROUGHPUT")
        assert not is_throughput_metric("latency_p99_s")


class TestIngest:
    def test_ingest_is_idempotent(self, tmp_path):
        _write_bench(tmp_path, "zoo", BENCH)
        added, ledger = ingest(tmp_path)
        assert added == 1 and len(ledger) == 1
        assert ledger[0]["bench"] == "BENCH_zoo"
        assert ledger[0]["source"] == "BENCH_zoo.json"
        assert ledger[0]["metrics"]["steps_per_sec"] == 1000.0
        # Unchanged content (even restamped) appends nothing.
        _write_bench(tmp_path, "zoo", dict(BENCH, unix_time=1.0))
        added2, ledger2 = ingest(tmp_path)
        assert added2 == 0 and len(ledger2) == 1
        # Changed content appends a second entry; history is kept.
        _write_bench(tmp_path, "zoo", dict(BENCH, steps_per_sec=1200.0))
        added3, ledger3 = ingest(tmp_path)
        assert added3 == 1 and len(ledger3) == 2
        on_disk = load_ledger(tmp_path / LEDGER_NAME)
        assert [e["metrics"]["steps_per_sec"] for e in on_disk] == [
            1000.0, 1200.0,
        ]

    def test_unreadable_bench_skipped(self, tmp_path):
        _write_bench(tmp_path, "zoo", BENCH)
        (tmp_path / "BENCH_broken.json").write_text("{not json")
        added, ledger = ingest(tmp_path)
        assert added == 1
        assert [e["bench"] for e in ledger] == ["BENCH_zoo"]


class TestRows:
    def test_rows_carry_deltas_against_previous_entry(self, tmp_path):
        _write_bench(tmp_path, "zoo", BENCH)
        ingest(tmp_path)
        _write_bench(tmp_path, "zoo", dict(BENCH, steps_per_sec=1100.0))
        _added, ledger = ingest(tmp_path)
        rows = {r["metric"]: r for r in trend_rows(ledger)}
        assert rows["steps_per_sec"]["value"] == 1100.0
        assert rows["steps_per_sec"]["previous"] == 1000.0
        assert rows["steps_per_sec"]["delta"] == 0.1
        rendered = render_trend(ledger)
        assert "BENCH_zoo" in rendered and "+10.0% vs previous" in rendered

    def test_empty_ledger_renders_hint(self):
        assert "--update" in render_trend([])


class TestGate:
    def test_regression_flagged_above_threshold(self, tmp_path):
        _write_bench(tmp_path, "zoo", BENCH)
        ingest(tmp_path)
        # 30% throughput drop: the 20% gate must fire, and only for the
        # higher-is-better metrics.
        _write_bench(
            tmp_path, "zoo",
            dict(BENCH, steps_per_sec=700.0, cache={"hit_speedup_x": 9.0}),
        )
        messages = check_regressions(tmp_path)
        assert len(messages) == 1
        assert "steps_per_sec" in messages[0] and "30.0%" in messages[0]

    def test_small_drop_passes(self, tmp_path):
        _write_bench(tmp_path, "zoo", BENCH)
        ingest(tmp_path)
        _write_bench(tmp_path, "zoo", dict(BENCH, steps_per_sec=900.0))
        assert check_regressions(tmp_path) == []

    def test_baseline_skips_own_digest(self, tmp_path):
        """A freshly ingested current state compares against the
        previous observation, not against itself."""
        _write_bench(tmp_path, "zoo", BENCH)
        ingest(tmp_path)
        _write_bench(tmp_path, "zoo", dict(BENCH, steps_per_sec=500.0))
        ingest(tmp_path)  # the regressed state is now the latest entry
        messages = check_regressions(tmp_path)
        assert len(messages) == 1 and "50.0%" in messages[0]

    def test_no_history_means_no_gate(self, tmp_path):
        _write_bench(tmp_path, "zoo", BENCH)
        assert check_regressions(tmp_path) == []
