"""Remaining coverage: dunder/reprs, edge branches, and small contracts
not naturally owned by another test file."""

import numpy as np
import pytest

from repro.core.results import SequentialRunResult
from repro.errors import (
    NoRunnableThreadError,
    ReproError,
    SimulationError,
    ThreadCrashedError,
    UnknownAddressError,
)
from repro.metrics.ascii_plot import ascii_plot
from repro.objectives.quadratic import IsotropicQuadratic
from repro.runtime.clock import Clock
from repro.runtime.program import FunctionProgram
from repro.runtime.rng import RngStream
from repro.runtime.simulator import Simulator
from repro.runtime.thread import ThreadState
from repro.sched.round_robin import RoundRobinScheduler
from repro.shm.array import AtomicArray
from repro.shm.register import AtomicRegister


class TestErrorHierarchy:
    def test_everything_is_a_repro_error(self):
        for error_type in (
            UnknownAddressError,
            SimulationError,
            ThreadCrashedError,
            NoRunnableThreadError,
        ):
            assert issubclass(error_type, ReproError)

    def test_unknown_address_carries_address(self):
        error = UnknownAddressError(42)
        assert error.address == 42
        assert "42" in str(error)

    def test_thread_crashed_carries_id(self):
        error = ThreadCrashedError(3)
        assert error.thread_id == 3


class TestReprs:
    def test_register_repr(self, memory):
        reg = AtomicRegister(memory, memory.allocate(1, initial=2.0))
        assert "value=2.0" in repr(reg)

    def test_array_repr(self, memory):
        array = AtomicArray.allocate(memory, 3)
        assert "length=3" in repr(array)

    def test_clock_repr(self):
        clock = Clock()
        clock.tick()
        assert "now=1" in repr(clock)

    def test_rng_repr(self):
        assert "entropy" in repr(RngStream.root(5))

    def test_thread_repr_and_context_repr(self, memory):
        sim = Simulator(memory, RoundRobinScheduler())
        reg = AtomicRegister(memory, memory.allocate(1))

        def body(ctx):
            yield reg.read_op()

        thread = sim.spawn(FunctionProgram(body, name="demo"))
        assert "demo" in repr(thread)
        assert "thread_id=0" in repr(thread.context)

    def test_simulator_repr(self, memory):
        sim = Simulator(memory, RoundRobinScheduler())
        assert "RoundRobinScheduler" in repr(sim)


class TestSequentialResultHelpers:
    def test_succeeded_property(self):
        result = SequentialRunResult(
            x_final=np.zeros(1),
            distances=np.array([1.0, 0.1]),
            hit_time=1,
            epsilon=0.25,
            iterations=1,
        )
        assert result.succeeded
        assert result.final_distance == pytest.approx(0.1)

    def test_not_succeeded(self):
        result = SequentialRunResult(
            x_final=np.ones(1),
            distances=np.array([1.0, 1.0]),
            hit_time=None,
            epsilon=0.25,
            iterations=1,
        )
        assert not result.succeeded


class TestThreadLifecycleEdges:
    def test_advancing_finished_thread_raises(self, memory):
        from repro.errors import ProgramError

        sim = Simulator(memory, RoundRobinScheduler())
        reg = AtomicRegister(memory, memory.allocate(1))

        def body(ctx):
            yield reg.read_op()

        thread = sim.spawn(FunctionProgram(body))
        sim.step()
        assert thread.state is ThreadState.FINISHED
        with pytest.raises(ProgramError):
            thread.advance(None)

    def test_crash_closes_generator(self, memory):
        closed = {}

        def body(ctx):
            try:
                while True:
                    yield reg.read_op()
            finally:
                closed["yes"] = True

        sim = Simulator(memory, RoundRobinScheduler())
        reg = AtomicRegister(memory, memory.allocate(1))
        sim.spawn(FunctionProgram(body))
        sim.spawn(FunctionProgram(body))
        sim.crash(0)
        assert closed.get("yes") is True

    def test_program_name_default(self):
        def my_function(ctx):
            yield  # pragma: no cover

        program = FunctionProgram(my_function)
        assert program.name == "my_function"


class TestAsciiPlotEdges:
    def test_eight_series_supported_nine_rejected(self):
        xs = [0, 1]
        eight = {f"s{i}": [i, i + 1] for i in range(8)}
        assert ascii_plot(xs, eight)
        nine = {f"s{i}": [i, i + 1] for i in range(9)}
        with pytest.raises(Exception):
            ascii_plot(xs, nine)

    def test_flat_series_plot(self):
        # Degenerate y-range must not divide by zero.
        text = ascii_plot([0, 1, 2], {"flat": [5.0, 5.0, 5.0]})
        assert "flat" in text

    def test_all_dropped_logy_rejected(self):
        with pytest.raises(Exception):
            ascii_plot([0, 1], {"s": [0.0, -1.0]}, logy=True)


class TestObjectiveNumericEdges:
    def test_distance_at_optimum_zero(self):
        objective = IsotropicQuadratic(dim=3)
        assert objective.distance_to_opt(objective.x_star) == 0.0

    def test_second_moment_zero_radius(self):
        objective = IsotropicQuadratic(dim=2)
        # At radius 0 only the noise term remains.
        assert objective.second_moment_bound(0.0) == pytest.approx(2.0)
