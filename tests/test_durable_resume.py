"""Kill/resume properties of the durable run layer: campaigns and
sanitize grids interrupted after k of m cells resume to byte-identical
final reports (across --jobs values), partial reports cover exactly the
journaled cells, real signals drive GracefulShutdown, and the CLI wires
it all together (--journal/--resume flags, exit codes, partial flush)."""

import functools
import json
import os
import signal

import pytest

from repro.analysis.presets import (
    partial_sanitize_report,
    run_sanitize,
    sanitize_fingerprint,
    sanitize_presets,
)
from repro.cli import main
from repro.durable.journal import RunJournal
from repro.durable.signals import GracefulShutdown
from repro.errors import InterruptedRunError
from repro.faults.campaign import (
    CampaignConfig,
    ChaosWorkload,
    campaign_fingerprint,
    partial_report,
    preset_specs,
    run_campaign,
)


class _TripAfter:
    """Journal wrapper that requests shutdown once k cells are recorded —
    a deterministic stand-in for SIGTERM arriving mid-grid."""

    def __init__(self, journal, shutdown, k):
        self._journal = journal
        self._shutdown = shutdown
        self._k = k

    def completed(self, namespace):
        return self._journal.completed(namespace)

    def record(self, namespace, seed, payload):
        self._journal.record(namespace, seed, payload)
        if self._journal.total_completed >= self._k:
            self._shutdown.requested = True
            self._shutdown.signal_name = "SIGTERM"


def _campaign_config(jobs=1):
    specs = preset_specs()
    return CampaignConfig(
        specs=(specs["none"], specs["prob-crash"]),
        seeds=(1, 2, 3),
        workload=ChaosWorkload(iterations=60),
        jobs=jobs,
    )


@functools.lru_cache(maxsize=None)
def _campaign_reference():
    """The uninterrupted campaign report (bytes) every resume must match."""
    report = run_campaign(_campaign_config())
    return report.to_json(), tuple(report.outcomes)


class TestCampaignKillResume:
    @pytest.mark.parametrize("jobs", [1, 4])
    @pytest.mark.parametrize("k", [1, 3, 5])
    def test_interrupt_after_k_cells_resumes_byte_identical(
        self, tmp_path, k, jobs
    ):
        reference, _ = _campaign_reference()
        path = tmp_path / "journal.jsonl"
        config = _campaign_config(jobs)
        fingerprint = campaign_fingerprint(config)
        journal = RunJournal.open(path, fingerprint)
        shutdown = GracefulShutdown(install=False)
        with pytest.raises(InterruptedRunError):
            run_campaign(
                config,
                journal=_TripAfter(journal, shutdown, k),
                shutdown=shutdown,
            )
        journal.close()
        resumed = RunJournal.open(path, fingerprint, resume=True)
        assert resumed.total_completed >= k
        report = run_campaign(_campaign_config(), journal=resumed)
        resumed.close()
        assert report.to_json() == reference

    def test_partial_report_covers_exactly_the_journaled_prefix(
        self, tmp_path
    ):
        _, reference_outcomes = _campaign_reference()
        path = tmp_path / "journal.jsonl"
        config = _campaign_config()
        fingerprint = campaign_fingerprint(config)
        journal = RunJournal.open(path, fingerprint)
        shutdown = GracefulShutdown(install=False)
        with pytest.raises(InterruptedRunError):
            run_campaign(
                config,
                journal=_TripAfter(journal, shutdown, 3),
                shutdown=shutdown,
            )
        journal.close()
        resumed = RunJournal.open(path, fingerprint, resume=True)
        partial = partial_report(config, resumed)
        resumed.close()
        # The serial grid stops at the cell boundary right after the
        # trip: exactly 3 cells, and they are the reference's prefix.
        assert tuple(partial.outcomes) == reference_outcomes[:3]

    def test_journal_written_under_jobs_4_resumes_under_jobs_1(
        self, tmp_path
    ):
        reference, _ = _campaign_reference()
        path = tmp_path / "journal.jsonl"
        parallel_config = _campaign_config(jobs=4)
        fingerprint = campaign_fingerprint(parallel_config)
        # The fingerprint must not depend on jobs, or cross-jobs resume
        # would be refused.
        assert fingerprint == campaign_fingerprint(_campaign_config())
        journal = RunJournal.open(path, fingerprint)
        shutdown = GracefulShutdown(install=False)
        with pytest.raises(InterruptedRunError):
            run_campaign(
                parallel_config,
                journal=_TripAfter(journal, shutdown, 2),
                shutdown=shutdown,
            )
        journal.close()
        resumed = RunJournal.open(path, fingerprint, resume=True)
        report = run_campaign(_campaign_config(jobs=1), journal=resumed)
        resumed.close()
        assert report.to_json() == reference


def _sanitize_grid():
    presets = sanitize_presets()
    return (presets["racy"], presets["e1"]), (1, 2)


@functools.lru_cache(maxsize=None)
def _sanitize_reference():
    chosen, seeds = _sanitize_grid()
    return run_sanitize(chosen, seeds=seeds).to_json()


class TestSanitizeKillResume:
    @pytest.mark.parametrize("k", [1, 3])
    def test_interrupt_after_k_cells_resumes_byte_identical(self, tmp_path, k):
        chosen, seeds = _sanitize_grid()
        path = tmp_path / "journal.jsonl"
        fingerprint = sanitize_fingerprint(chosen, seeds)
        journal = RunJournal.open(path, fingerprint)
        shutdown = GracefulShutdown(install=False)
        with pytest.raises(InterruptedRunError):
            run_sanitize(
                chosen,
                seeds=seeds,
                journal=_TripAfter(journal, shutdown, k),
                shutdown=shutdown,
            )
        journal.close()
        resumed = RunJournal.open(path, fingerprint, resume=True)
        assert resumed.total_completed >= k
        report = run_sanitize(chosen, seeds=seeds, journal=resumed)
        resumed.close()
        assert report.to_json() == _sanitize_reference()

    def test_parallel_interrupt_resumes_byte_identical(self, tmp_path):
        chosen, seeds = _sanitize_grid()
        path = tmp_path / "journal.jsonl"
        fingerprint = sanitize_fingerprint(chosen, seeds)
        journal = RunJournal.open(path, fingerprint)
        shutdown = GracefulShutdown(install=False)
        with pytest.raises(InterruptedRunError):
            run_sanitize(
                chosen,
                seeds=seeds,
                jobs=4,
                journal=_TripAfter(journal, shutdown, 1),
                shutdown=shutdown,
            )
        journal.close()
        resumed = RunJournal.open(path, fingerprint, resume=True)
        report = run_sanitize(chosen, seeds=seeds, journal=resumed)
        resumed.close()
        assert report.to_json() == _sanitize_reference()

    def test_partial_sanitize_report_counts_journaled_cells(self, tmp_path):
        chosen, seeds = _sanitize_grid()
        path = tmp_path / "journal.jsonl"
        fingerprint = sanitize_fingerprint(chosen, seeds)
        journal = RunJournal.open(path, fingerprint)
        shutdown = GracefulShutdown(install=False)
        with pytest.raises(InterruptedRunError):
            run_sanitize(
                chosen,
                seeds=seeds,
                journal=_TripAfter(journal, shutdown, 2),
                shutdown=shutdown,
            )
        journal.close()
        resumed = RunJournal.open(path, fingerprint, resume=True)
        partial = partial_sanitize_report(chosen, seeds, resumed)
        resumed.close()
        assert len(partial.runs) == 2
        assert [run.label for run in partial.runs] == [
            "racy/random/seed=1",
            "racy/random/seed=2",
        ]


def _let_signal_land():
    """Give the interpreter a bytecode boundary to run the handler on."""
    for _ in range(100):
        pass


class TestGracefulShutdownSignals:
    def test_sigint_requests_stop_then_check_raises(self):
        before = signal.getsignal(signal.SIGINT)
        with GracefulShutdown() as shutdown:
            assert not shutdown.requested
            os.kill(os.getpid(), signal.SIGINT)
            _let_signal_land()
            assert shutdown.requested
            assert shutdown.signal_name == "SIGINT"
            with pytest.raises(InterruptedRunError):
                shutdown.check()
        assert signal.getsignal(signal.SIGINT) is before

    def test_second_sigint_raises_keyboard_interrupt(self):
        with GracefulShutdown() as shutdown:
            os.kill(os.getpid(), signal.SIGINT)
            _let_signal_land()
            assert shutdown.requested
            with pytest.raises(KeyboardInterrupt):
                os.kill(os.getpid(), signal.SIGINT)
                _let_signal_land()

    def test_sigterm_requests_stop(self):
        before = signal.getsignal(signal.SIGTERM)
        with GracefulShutdown() as shutdown:
            os.kill(os.getpid(), signal.SIGTERM)
            _let_signal_land()
            assert shutdown.requested
            assert shutdown.signal_name == "SIGTERM"
        assert signal.getsignal(signal.SIGTERM) is before


_CLI_ARGS = [
    "--specs", "none,prob-crash",
    "--seeds", "2",
    "--iterations", "60",
]


class TestCliJournalFlags:
    def test_resume_without_journal_is_exit_2(self, capsys):
        assert main(["chaos", "--resume", *_CLI_ARGS]) == 2
        assert "--resume requires --journal" in capsys.readouterr().err
        assert main(["sanitize", "--resume", "--presets", "e1"]) == 2

    def test_fingerprint_mismatch_is_exit_2(self, tmp_path, capsys):
        journal = str(tmp_path / "journal.jsonl")
        assert main(["chaos", *_CLI_ARGS, "--journal", journal]) in (0, 1)
        # A different grid must be refused, not silently merged.
        assert (
            main(
                [
                    "chaos", "--specs", "none", "--seeds", "3",
                    "--iterations", "60", "--journal", journal, "--resume",
                ]
            )
            == 2
        )
        assert "refusing to resume" in capsys.readouterr().err

    def test_interrupted_cli_flushes_partial_and_resumes_identically(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.faults import campaign as campaign_module

        journal_path = str(tmp_path / "journal.jsonl")
        out_dir = tmp_path / "out"
        ref_dir = tmp_path / "ref"
        real_run = campaign_module.run_campaign

        def tripping_run(config, journal=None, shutdown=None, **kwargs):
            return real_run(
                config,
                journal=_TripAfter(journal, shutdown, 2),
                shutdown=shutdown,
                **kwargs,
            )

        monkeypatch.setattr(campaign_module, "run_campaign", tripping_run)
        code = main(
            [
                "chaos", *_CLI_ARGS,
                "--journal", journal_path, "--out", str(out_dir),
            ]
        )
        err = capsys.readouterr().err
        assert code == 130
        assert "resume with:" in err
        assert "--resume" in err
        partial = json.loads((out_dir / "chaos_report.partial.json").read_text())
        assert len(partial["outcomes"]) == 2
        assert (out_dir / "chaos_report.partial.txt").exists()

        # Rerunning the printed invocation finishes the grid and must
        # produce the same bytes as a never-interrupted CLI run.
        monkeypatch.setattr(campaign_module, "run_campaign", real_run)
        resume_code = main(
            [
                "chaos", *_CLI_ARGS,
                "--journal", journal_path, "--out", str(out_dir), "--resume",
            ]
        )
        reference_code = main(["chaos", *_CLI_ARGS, "--out", str(ref_dir)])
        capsys.readouterr()
        assert resume_code == reference_code
        assert (out_dir / "chaos_report.json").read_bytes() == (
            ref_dir / "chaos_report.json"
        ).read_bytes()


class TestTornTailEveryOffset:
    """Satellite: the serve layer's crash paths (SIGKILLed workers) can
    tear the journal at *any* byte.  Property: truncating the final
    record at every byte offset yields exactly the documented
    classification — a clean shorter journal (cut at a record boundary
    or a complete-but-unterminated line) or one DUR001 warning (a real
    torn tail) — never corruption errors, and resuming from the torn
    journal reproduces the uninterrupted report byte-identically across
    --jobs 1/4."""

    def _full_journal(self, tmp_path):
        config = _campaign_config()
        fingerprint = campaign_fingerprint(config)
        path = tmp_path / "full.jsonl"
        journal = RunJournal.open(path, fingerprint)
        run_campaign(config, journal=journal)
        journal.close()
        return path.read_bytes(), fingerprint

    def test_classification_at_every_byte_offset(self, tmp_path):
        data, fingerprint = self._full_journal(tmp_path)
        assert data.endswith(b"\n")
        body = data[:-1].split(b"\n")
        last = body[-1] + b"\n"
        prefix = data[: len(data) - len(last)]
        torn_path = tmp_path / "torn.jsonl"
        for cut in range(len(last)):
            torn_path.write_bytes(prefix + last[:cut])
            resumed = RunJournal.open(torn_path, fingerprint, resume=True)
            rules = [f.rule for f in resumed.findings]
            resumed.close()
            if cut == 0 or cut == len(last) - 1:
                # Record boundary, or a complete JSON line missing only
                # its newline: nothing was torn mid-record.
                assert rules == [], f"offset {cut}: {rules}"
            else:
                assert rules == ["DUR001"], f"offset {cut}: {rules}"

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_resume_from_torn_tail_byte_identical(self, tmp_path, jobs):
        reference, _ = _campaign_reference()
        data, fingerprint = self._full_journal(tmp_path)
        body = data[:-1].split(b"\n")
        last = body[-1] + b"\n"
        prefix = data[: len(data) - len(last)]
        # Representative offsets spanning every classification class:
        # boundary cut, 1-byte tear, mid-record tear, all-but-newline.
        for cut in (0, 1, len(last) // 2, len(last) - 1):
            torn_path = tmp_path / f"torn-{jobs}-{cut}.jsonl"
            torn_path.write_bytes(prefix + last[:cut])
            journal = RunJournal.open(torn_path, fingerprint, resume=True)
            config = _campaign_config(jobs)
            report = run_campaign(config, journal=journal)
            journal.close()
            assert report.to_json() == reference, f"offset {cut}"

    def test_trace_truncated_at_every_byte_offset(self, tmp_path):
        """DUR002 twin for metric traces: a torn final line is recovered
        at every offset; complete records always survive intact."""
        from repro.metrics.serialize import dump_records, load_records
        from repro.runtime.events import IterationRecord

        records = [
            IterationRecord(
                time=10 * i, thread_id=i % 2, index=i, epoch=0,
                start_time=10 * i, read_start_time=10 * i,
                read_end_time=10 * i + 1, first_update_time=10 * i + 2,
                end_time=10 * i + 3, step_size=0.05,
            )
            for i in range(3)
        ]
        full = tmp_path / "trace.jsonl"
        dump_records(records, full)
        data = full.read_bytes()
        body = data[:-1].split(b"\n")
        last = body[-1] + b"\n"
        prefix = data[: len(data) - len(last)]
        torn_path = tmp_path / "torn-trace.jsonl"
        for cut in range(len(last)):
            torn_path.write_bytes(prefix + last[:cut])
            findings = []
            recovered = load_records(torn_path, findings=findings)
            rules = [f.rule for f in findings]
            if cut == 0 or cut == len(last) - 1:
                expect = len(records) - (1 if cut == 0 else 0)
                assert len(recovered) == expect, f"offset {cut}"
                assert rules == [], f"offset {cut}: {rules}"
            else:
                assert len(recovered) == len(records) - 1, f"offset {cut}"
                assert rules == ["DUR002"], f"offset {cut}: {rules}"
            # Whatever survived is the exact uncorrupted prefix.
            for got, want in zip(recovered, records):
                assert got == want
