"""HTTP layer tests against a live in-process server on an ephemeral
port: endpoint routing, status-code mapping (202/200-cached/400/404/
405/408/429), response byte-determinism, health and metrics exposition,
and the slow-loris read cutoff."""

import asyncio
import json
import threading

from repro.obs.registry import MetricsRegistry
from repro.serve.cache import ResultCache
from repro.serve.loadgen import http_request
from repro.serve.server import JobServer
from repro.serve.supervisor import JobSupervisor, ServerPolicy

SPEC = {
    "kind": "chaos",
    "params": {"specs": ["none"], "seeds": 2, "iterations": 60},
}


class OkRunner:
    """Instant deterministic runner (no child processes)."""

    def run(self, job, watchdog, should_stop):
        return {
            "status": "ok",
            "result": {"passed": True, "fp": job.spec.fingerprint},
        }


class GatedRunner(OkRunner):
    def __init__(self):
        self.gate = threading.Event()

    def run(self, job, watchdog, should_stop):
        self.gate.wait(timeout=30.0)
        return super().run(job, watchdog, should_stop)


def _serve(test, policy=None, runner=None, metrics=None):
    """Run ``await test(server)`` against a started ephemeral server."""

    async def go():
        supervisor = JobSupervisor(
            policy if policy is not None else ServerPolicy(workers=1),
            cache=ResultCache(None),
            runner=runner if runner is not None else OkRunner(),
            metrics=metrics,
        )
        server = JobServer(supervisor, metrics=metrics)
        await server.start()
        try:
            await test(server)
        finally:
            await server.stop()
            await asyncio.get_event_loop().run_in_executor(
                None, supervisor.drain
            )

    asyncio.run(go())


async def _until_done(server, job_id, timeout=30.0):
    clock = server.clock
    deadline = clock.monotonic() + timeout
    while clock.monotonic() < deadline:
        status, _h, data = await http_request(
            "127.0.0.1", server.port, "GET", f"/jobs/{job_id}"
        )
        assert status == 200
        job = json.loads(data)["job"]
        if job["state"] in ("done", "failed", "interrupted", "cancelled"):
            return job
        await asyncio.sleep(0.02)
    raise AssertionError("job never reached a terminal state")


class TestSubmitLifecycle:
    def test_submit_poll_and_cached_resubmit_byte_identical(self):
        async def test(server):
            status, _h, first = await http_request(
                "127.0.0.1", server.port, "POST", "/jobs", body=SPEC
            )
            assert status == 202
            job = json.loads(first)["job"]
            assert job["cached"] is False
            done = await _until_done(server, job["id"])
            assert done["state"] == "done"
            # Resubmit: 200, cached marker, byte-identical result body.
            status2, _h2, second = await http_request(
                "127.0.0.1", server.port, "POST", "/jobs", body=SPEC
            )
            assert status2 == 200
            job2 = json.loads(second)["job"]
            assert job2["cached"] is True
            canonical = lambda j: json.dumps(  # noqa: E731
                j["result"], sort_keys=True, separators=(",", ":")
            )
            assert canonical(job2) == canonical(done)
            assert job2["digest"] == done["digest"]
            from repro.serve.specs import result_digest

            assert result_digest(job2["result"]) == job2["digest"]

        _serve(test)

    def test_jobs_listing_and_missing_job(self):
        async def test(server):
            await http_request(
                "127.0.0.1", server.port, "POST", "/jobs", body=SPEC
            )
            status, _h, data = await http_request(
                "127.0.0.1", server.port, "GET", "/jobs"
            )
            assert status == 200
            assert len(json.loads(data)["jobs"]) == 1
            status404, _h, _d = await http_request(
                "127.0.0.1", server.port, "GET", "/jobs/job-9999"
            )
            assert status404 == 404

        _serve(test)

    def test_progress_endpoint_reports_state(self):
        async def test(server):
            _s, _h, data = await http_request(
                "127.0.0.1", server.port, "POST", "/jobs", body=SPEC
            )
            job = json.loads(data)["job"]
            await _until_done(server, job["id"])
            status, _h, progress = await http_request(
                "127.0.0.1", server.port, "GET",
                f"/jobs/{job['id']}/progress",
            )
            assert status == 200
            body = json.loads(progress)
            assert body["id"] == job["id"]
            assert "cells_completed" in body

        _serve(test)


class TestErrorMapping:
    def test_malformed_json_answers_400(self):
        async def test(server):
            status, _h, data = await http_request(
                "127.0.0.1", server.port, "POST", "/jobs",
                raw_body=b"not json",
            )
            assert status == 400
            assert "error" in json.loads(data)

        _serve(test)

    def test_invalid_spec_answers_400_with_detail(self):
        async def test(server):
            status, _h, data = await http_request(
                "127.0.0.1", server.port, "POST", "/jobs",
                body={"kind": "chaos", "params": {"bogus": 1}},
            )
            assert status == 400
            assert "bogus" in json.loads(data)["error"]

        _serve(test)

    def test_unknown_endpoint_404_and_wrong_method_405(self):
        async def test(server):
            status, _h, _d = await http_request(
                "127.0.0.1", server.port, "GET", "/nope"
            )
            assert status == 404
            status405, _h, _d = await http_request(
                "127.0.0.1", server.port, "POST", "/jobs/job-0001"
            )
            assert status405 == 405

        _serve(test)

    def test_overload_answers_429_with_retry_after(self):
        runner = GatedRunner()

        async def test(server):
            # Worker busy + queue of 1 full -> third distinct spec shed.
            specs = [
                {"kind": "chaos",
                 "params": {"specs": ["none"], "base_seed": i}}
                for i in range(3)
            ]
            s1, _h, first = await http_request(
                "127.0.0.1", server.port, "POST", "/jobs", body=specs[0]
            )
            # Wait until the worker has popped the first job off the
            # queue, else the second submission races it for the slot.
            job_id = json.loads(first)["job"]["id"]
            for _ in range(500):
                _s, _h, data = await http_request(
                    "127.0.0.1", server.port, "GET", f"/jobs/{job_id}"
                )
                if json.loads(data)["job"]["state"] == "running":
                    break
                await asyncio.sleep(0.01)
            s2, _h, _d = await http_request(
                "127.0.0.1", server.port, "POST", "/jobs", body=specs[1]
            )
            s3, headers, data = await http_request(
                "127.0.0.1", server.port, "POST", "/jobs", body=specs[2]
            )
            assert (s1, s2) == (202, 202)
            assert s3 == 429
            assert float(headers["retry-after"]) == 1.0
            assert "retry" in json.loads(data)["error"]
            runner.gate.set()

        _serve(
            test,
            policy=ServerPolicy(workers=1, max_queue=1),
            runner=runner,
        )


class TestHealthAndMetrics:
    def test_healthz_shape(self):
        async def test(server):
            status, _h, data = await http_request(
                "127.0.0.1", server.port, "GET", "/healthz"
            )
            assert status == 200
            health = json.loads(data)
            assert health["status"] == "ok"
            assert set(health) == {"status", "jobs", "workers", "cache"}

        _serve(test)

    def test_metrics_exposition_counts_requests(self):
        metrics = MetricsRegistry()

        async def test(server):
            await http_request("127.0.0.1", server.port, "GET", "/healthz")
            status, headers, data = await http_request(
                "127.0.0.1", server.port, "GET", "/metrics"
            )
            assert status == 200
            assert headers["content-type"].startswith("text/plain")
            text = data.decode()
            assert "repro_serve_http_requests_total" in text
            assert "repro_serve_queue_depth" in text

        _serve(test, metrics=metrics)

    def test_metrics_404_without_registry(self):
        async def test(server):
            status, _h, _d = await http_request(
                "127.0.0.1", server.port, "GET", "/metrics"
            )
            assert status == 404

        _serve(test)


class TestSlowLoris:
    def test_stalled_request_cut_off_with_408(self):
        async def test(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(b"POST /jobs HT")  # ...and never finish
            await writer.drain()
            data = await asyncio.wait_for(reader.read(), timeout=10.0)
            assert b" 408 " in data.split(b"\r\n", 1)[0]
            writer.close()

        _serve(test, policy=ServerPolicy(workers=1, read_timeout=0.2))

    def test_oversized_body_rejected_413(self):
        async def test(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(
                b"POST /jobs HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n"
            )
            await writer.drain()
            data = await asyncio.wait_for(reader.read(), timeout=10.0)
            assert b" 413 " in data.split(b"\r\n", 1)[0]
            writer.close()

        _serve(test)


def _serve_workdir(test, tmp_path, policy=None, runner=None):
    """Like :func:`_serve` but with a workdir-backed supervisor, so
    causal tracing (spills, trace ids, ``/trace``) is live."""

    async def go():
        supervisor = JobSupervisor(
            policy if policy is not None else ServerPolicy(workers=1),
            workdir=tmp_path,
            runner=runner if runner is not None else OkRunner(),
        )
        server = JobServer(supervisor)
        await server.start()
        try:
            await test(server)
        finally:
            await server.stop()
            await asyncio.get_event_loop().run_in_executor(
                None, supervisor.drain
            )

    asyncio.run(go())


class TestMetricsExposition:
    def test_prometheus_content_type_and_trailing_newline(self):
        metrics = MetricsRegistry()

        async def test(server):
            _s, headers, data = await http_request(
                "127.0.0.1", server.port, "GET", "/metrics"
            )
            # The exact exposition-format header scrapers key on.
            assert headers["content-type"] == (
                "text/plain; version=0.0.4; charset=utf-8"
            )
            assert data.endswith(b"\n")
            assert not data.endswith(b"\n\n")

        _serve(test, metrics=metrics)


class TestLongPoll:
    def test_terminal_job_answers_immediately(self):
        async def test(server):
            _s, _h, data = await http_request(
                "127.0.0.1", server.port, "POST", "/jobs", body=SPEC
            )
            job = json.loads(data)["job"]
            await _until_done(server, job["id"])
            before = server.clock.monotonic()
            status, _h, body = await http_request(
                "127.0.0.1", server.port, "GET",
                f"/jobs/{job['id']}/progress?wait=30",
            )
            assert status == 200
            assert json.loads(body)["state"] == "done"
            # Terminal state short-circuits the hold: no 30s park.
            assert server.clock.monotonic() - before < 10.0

        _serve(test)

    def test_wait_is_clamped_to_policy_ceiling(self):
        runner = GatedRunner()

        async def test(server):
            _s, _h, data = await http_request(
                "127.0.0.1", server.port, "POST", "/jobs", body=SPEC
            )
            job = json.loads(data)["job"]
            before = server.clock.monotonic()
            status, _h, body = await http_request(
                "127.0.0.1", server.port, "GET",
                f"/jobs/{job['id']}/progress?wait=9999",
            )
            elapsed = server.clock.monotonic() - before
            assert status == 200
            assert json.loads(body)["state"] in ("queued", "running")
            # Held for ~long_poll_max (0.2s), not the requested 9999s.
            assert 0.1 <= elapsed < 10.0
            runner.gate.set()

        _serve(
            test,
            policy=ServerPolicy(
                workers=1, long_poll_max=0.2, poll_interval=0.02
            ),
            runner=runner,
        )

    def test_since_below_current_progress_returns_at_once(self):
        runner = GatedRunner()

        async def test(server):
            _s, _h, data = await http_request(
                "127.0.0.1", server.port, "POST", "/jobs", body=SPEC
            )
            job = json.loads(data)["job"]
            status, _h, body = await http_request(
                "127.0.0.1", server.port, "GET",
                f"/jobs/{job['id']}/progress?wait=30&since=-1",
            )
            assert status == 200  # 0 cells > since=-1 -> no hold
            runner.gate.set()

        _serve(
            test,
            policy=ServerPolicy(workers=1, long_poll_max=0.5),
            runner=runner,
        )

    def test_non_numeric_wait_rejected_400(self):
        async def test(server):
            _s, _h, data = await http_request(
                "127.0.0.1", server.port, "POST", "/jobs", body=SPEC
            )
            job = json.loads(data)["job"]
            status, _h, body = await http_request(
                "127.0.0.1", server.port, "GET",
                f"/jobs/{job['id']}/progress?wait=soon",
            )
            assert status == 400
            assert "numeric" in json.loads(body)["error"]

        _serve(test)

    def test_unknown_job_long_poll_404(self):
        async def test(server):
            status, _h, _d = await http_request(
                "127.0.0.1", server.port, "GET",
                "/jobs/job-9999/progress?wait=1",
            )
            assert status == 404

        _serve(test)


class TestTraceEndpoint:
    def test_trace_404_without_workdir(self):
        async def test(server):
            _s, _h, data = await http_request(
                "127.0.0.1", server.port, "POST", "/jobs", body=SPEC
            )
            job = json.loads(data)["job"]
            await _until_done(server, job["id"])
            status, _h, body = await http_request(
                "127.0.0.1", server.port, "GET", f"/jobs/{job['id']}/trace"
            )
            assert status == 404
            assert "tracing disabled" in json.loads(body)["error"]

        _serve(test)

    def test_stitched_trace_covers_request_admission_attempt(self, tmp_path):
        async def test(server):
            _s, _h, data = await http_request(
                "127.0.0.1", server.port, "POST", "/jobs", body=SPEC
            )
            job = json.loads(data)["job"]
            assert len(job["trace"]) == 16  # minted from the fingerprint
            await _until_done(server, job["id"])
            status, _h, body = await http_request(
                "127.0.0.1", server.port, "GET", f"/jobs/{job['id']}/trace"
            )
            assert status == 200
            events = json.loads(body)["traceEvents"]
            names = {e["name"] for e in events if e["ph"] == "X"}
            assert {"serve.request", "serve.admission",
                    "serve.attempt"} <= names
            # The admission flows from the request span: one s/f pair.
            assert any(e["ph"] == "s" for e in events)
            assert any(e["ph"] == "f" for e in events)

        _serve_workdir(test, tmp_path)

    def test_trace_header_honored_and_validated(self, tmp_path):
        async def test(server):
            wanted = "deadbeefcafef00d"
            _s, _h, data = await http_request(
                "127.0.0.1", server.port, "POST", "/jobs", body=SPEC,
                headers={"X-Repro-Trace-Id": wanted},
            )
            assert json.loads(data)["job"]["trace"] == wanted
            status, _h, body = await http_request(
                "127.0.0.1", server.port, "POST", "/jobs",
                body={"kind": "chaos",
                      "params": {"specs": ["none"], "base_seed": 9}},
                headers={"X-Repro-Trace-Id": "NOT-HEX!"},
            )
            assert status == 400
            assert "trace id" in json.loads(body)["error"]

        _serve_workdir(test, tmp_path)
