"""The resilience grid's durability and determinism contract, plus the
E14 wrapper and CLI: byte-identical reports across ``--jobs`` values and
across journal kill/resume, partial reports covering exactly the
journaled prefix, payload round-trips, config validation, heal metrics
lines and the ``python -m repro heal`` entry point."""

import functools
import json

import pytest

from repro.cli import main
from repro.durable.journal import RunJournal
from repro.durable.signals import GracefulShutdown
from repro.errors import ConfigurationError, InterruptedRunError
from repro.experiments.e14_resilience import (
    E14Config,
    HealGridConfig,
    HealWorkload,
    heal_fingerprint,
    heal_metrics_lines,
    heal_plan_specs,
    outcome_from_payload,
    outcome_to_payload,
    partial_heal_report,
    run_heal_grid,
    to_heal_config,
)


class _TripAfter:
    """Journal wrapper that requests shutdown once k cells are recorded —
    a deterministic stand-in for SIGTERM arriving mid-grid."""

    def __init__(self, journal, shutdown, k):
        self._journal = journal
        self._shutdown = shutdown
        self._k = k

    def completed(self, namespace):
        return self._journal.completed(namespace)

    def record(self, namespace, seed, payload):
        self._journal.record(namespace, seed, payload)
        if self._journal.total_completed >= self._k:
            self._shutdown.requested = True
            self._shutdown.signal_name = "SIGTERM"


def _heal_config(jobs=1):
    return HealGridConfig(
        algorithms=("epoch-sgd",),
        plans=("none", "nan-poison"),
        seeds=(8000, 8001),
        workload=HealWorkload(iterations=200),
        jobs=jobs,
    )


@functools.lru_cache(maxsize=None)
def _heal_reference():
    """The uninterrupted serial heal report every variant must match."""
    report = run_heal_grid(_heal_config())
    return report.to_json(), tuple(report.outcomes)


class TestHealGridDeterminism:
    def test_jobs_2_report_is_byte_identical(self):
        reference, _ = _heal_reference()
        report = run_heal_grid(_heal_config(jobs=2))
        assert report.to_json() == reference

    def test_grid_detects_rolls_back_and_recovers(self):
        _, outcomes = _heal_reference()
        poisoned = [o for o in outcomes if o.plan == "nan-poison"]
        assert all(o.health == "healthy" for o in outcomes)
        assert all(o.converged for o in outcomes)
        assert any(o.recovered for o in poisoned)
        assert all(o.rollbacks >= 1 for o in poisoned)
        clean = [o for o in outcomes if o.plan == "none"]
        assert all(o.rollbacks == 0 and not o.recovered for o in clean)

    def test_fingerprint_ignores_jobs_only(self):
        base = heal_fingerprint(_heal_config())
        assert heal_fingerprint(_heal_config(jobs=4)) == base
        different = HealGridConfig(
            algorithms=("epoch-sgd",),
            plans=("none", "nan-poison"),
            seeds=(8000, 8002),
            workload=HealWorkload(iterations=200),
        )
        assert heal_fingerprint(different) != base

    def test_outcome_payload_round_trips_through_json(self):
        _, outcomes = _heal_reference()
        for outcome in outcomes:
            payload = json.loads(json.dumps(outcome_to_payload(outcome)))
            assert outcome_from_payload(payload) == outcome

    def test_metrics_lines_are_pure_and_grid_ordered(self):
        _, outcomes = _heal_reference()
        lines = heal_metrics_lines(_heal_config(), list(outcomes))
        assert [line["kind"] for line in lines[:-1]] == ["cell"] * (
            len(outcomes)
        )
        aggregate = lines[-1]
        assert aggregate["kind"] == "aggregate"
        assert aggregate["rollbacks"] == sum(o.rollbacks for o in outcomes)
        assert lines == heal_metrics_lines(_heal_config(), list(outcomes))


class TestHealKillResume:
    @pytest.mark.parametrize("k", [1, 2])
    def test_interrupt_then_resume_is_byte_identical(self, tmp_path, k):
        reference, _ = _heal_reference()
        path = tmp_path / "journal.jsonl"
        config = _heal_config()
        fingerprint = heal_fingerprint(config)
        journal = RunJournal.open(path, fingerprint)
        shutdown = GracefulShutdown(install=False)
        with pytest.raises(InterruptedRunError):
            run_heal_grid(
                config,
                journal=_TripAfter(journal, shutdown, k),
                shutdown=shutdown,
            )
        journal.close()
        resumed = RunJournal.open(path, fingerprint, resume=True)
        assert resumed.total_completed >= k
        report = run_heal_grid(_heal_config(), journal=resumed)
        resumed.close()
        assert report.to_json() == reference

    def test_partial_report_covers_exactly_the_journaled_prefix(
        self, tmp_path
    ):
        _, reference_outcomes = _heal_reference()
        path = tmp_path / "journal.jsonl"
        config = _heal_config()
        fingerprint = heal_fingerprint(config)
        journal = RunJournal.open(path, fingerprint)
        shutdown = GracefulShutdown(install=False)
        with pytest.raises(InterruptedRunError):
            run_heal_grid(
                config,
                journal=_TripAfter(journal, shutdown, 2),
                shutdown=shutdown,
            )
        journal.close()
        resumed = RunJournal.open(path, fingerprint, resume=True)
        partial = partial_heal_report(config, resumed)
        resumed.close()
        assert tuple(partial.outcomes) == reference_outcomes[:2]


class TestHealConfigValidation:
    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            HealGridConfig(
                algorithms=("bogus",), plans=("none",), seeds=(1,)
            )

    def test_unknown_plan_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown plan"):
            HealGridConfig(
                algorithms=("epoch-sgd",), plans=("bogus",), seeds=(1,)
            )

    def test_empty_axes_rejected(self):
        with pytest.raises(ConfigurationError):
            HealGridConfig(algorithms=(), plans=("none",), seeds=(1,))
        with pytest.raises(ConfigurationError):
            HealGridConfig(algorithms=("epoch-sgd",), plans=(), seeds=(1,))
        with pytest.raises(ConfigurationError):
            HealGridConfig(
                algorithms=("epoch-sgd",), plans=("none",), seeds=()
            )

    def test_every_named_plan_is_buildable(self):
        from repro.sched.random_sched import RandomScheduler

        for name, spec in sorted(heal_plan_specs().items()):
            engine = spec.build(
                RandomScheduler(seed=1), seed=1, num_threads=4
            )
            assert engine is not None, name


class TestE14:
    def test_quick_grid_passes_with_recoveries(self):
        from repro.experiments.e14_resilience import run

        config = E14Config(
            algorithms=["epoch-sgd"],
            plans=["none", "nan-poison"],
            num_seeds=2,
        )
        result = run(config)
        assert result.experiment_id == "E14"
        assert result.passed
        assert "rolled back" in result.notes

    def test_to_heal_config_spans_the_declared_grid(self):
        config = to_heal_config(E14Config.quick())
        assert config.plans == ("none", "bit-flip", "nan-poison", "dup-write")
        assert len(config.seeds) == E14Config.quick().num_seeds

    def test_full_exceeds_quick(self):
        quick, full = E14Config.quick(), E14Config.full()
        assert len(full.plans) > len(quick.plans)
        assert full.num_seeds > quick.num_seeds


class TestHealCli:
    ARGS = [
        "heal",
        "--algorithms",
        "epoch-sgd",
        "--plans",
        "none,nan-poison",
        "--seeds",
        "2",
        "--iterations",
        "200",
    ]

    def test_heal_writes_reports_and_exits_zero(self, tmp_path, capsys):
        out = tmp_path / "heal"
        assert main(self.ARGS + ["--out", str(out)]) == 0
        assert (out / "heal_report.json").exists()
        assert (out / "heal_report.txt").exists()
        payload = json.loads((out / "heal_report.json").read_text())
        assert payload["passed"] is True
        assert payload["recovered_cells"] >= 1
        assert len(payload["outcomes"]) == 1 * 2 * 2
        assert "Resilience grid" in capsys.readouterr().out

    def test_unknown_plan_exits_2(self, tmp_path, capsys):
        code = main(
            ["heal", "--plans", "bogus", "--out", str(tmp_path / "h")]
        )
        assert code == 2
        assert "unknown plan" in capsys.readouterr().err

    def test_jobs_2_cli_report_matches_serial(self, tmp_path):
        serial, parallel = tmp_path / "serial", tmp_path / "parallel"
        assert main(self.ARGS + ["--out", str(serial)]) == 0
        assert main(self.ARGS + ["--out", str(parallel), "--jobs", "2"]) == 0
        assert (serial / "heal_report.json").read_bytes() == (
            parallel / "heal_report.json"
        ).read_bytes()

    def test_journal_resume_cli_matches_fresh(self, tmp_path):
        fresh, journaled = tmp_path / "fresh", tmp_path / "journaled"
        journal = tmp_path / "heal.jsonl"
        assert main(self.ARGS + ["--out", str(fresh)]) == 0
        assert (
            main(
                self.ARGS
                + ["--out", str(journaled), "--journal", str(journal)]
            )
            == 0
        )
        assert journal.exists()
        resumed = tmp_path / "resumed"
        assert (
            main(
                self.ARGS
                + [
                    "--out",
                    str(resumed),
                    "--journal",
                    str(journal),
                    "--resume",
                ]
            )
            == 0
        )
        assert (fresh / "heal_report.json").read_bytes() == (
            resumed / "heal_report.json"
        ).read_bytes()

    def test_metrics_snapshot_written(self, tmp_path):
        metrics = tmp_path / "heal_metrics.jsonl"
        assert main(self.ARGS + ["--metrics", str(metrics)]) == 0
        lines = [
            json.loads(line)
            for line in metrics.read_text().splitlines()
            if line.strip()
        ]
        assert lines[-1]["kind"] == "aggregate"
        assert lines[-1]["rollbacks"] >= 1
