"""Unit tests for the adaptive adversaries (greedy ascent, stale-gradient
attack, priority delay)."""

import numpy as np
import pytest

from repro.core.epoch_sgd import run_lock_free_sgd
from repro.metrics.trace import iterations_to_stay_below
from repro.objectives.noise import ZeroNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.sched.adaptive import GreedyAscentAdversary
from repro.sched.priority_delay import PriorityDelayScheduler
from repro.sched.random_sched import RandomScheduler
from repro.sched.stale_attack import StaleGradientAttack
from repro.theory.contention import tau_max


class TestGreedyAscent:
    def test_prefers_the_most_harmful_pending_update(self):
        """With two pending fetch&adds — one pushing the model away from
        x*, one pulling it closer — the adversary schedules the harmful
        one."""
        from repro.runtime.program import FunctionProgram
        from repro.runtime.simulator import Simulator
        from repro.shm.array import AtomicArray
        from repro.shm.memory import SharedMemory

        memory = SharedMemory()
        model = AtomicArray.allocate(memory, 2)
        model.load(np.array([1.0, 1.0]))
        adversary = GreedyAscentAdversary(model, np.zeros(2))
        sim = Simulator(memory, adversary, seed=0)

        def helpful(ctx):
            yield model.fetch_add_op(0, -0.5)  # toward x*

        def harmful(ctx):
            yield model.fetch_add_op(1, +0.5)  # away from x*

        sim.spawn(FunctionProgram(helpful))
        sim.spawn(FunctionProgram(harmful))
        record = sim.step()
        assert record.thread_id == 1  # the harmful update goes first

    def test_falls_back_to_round_robin_without_harmful_updates(self):
        from repro.runtime.program import FunctionProgram
        from repro.runtime.simulator import Simulator
        from repro.shm.array import AtomicArray
        from repro.shm.memory import SharedMemory

        memory = SharedMemory()
        model = AtomicArray.allocate(memory, 1)
        model.load(np.array([2.0]))
        adversary = GreedyAscentAdversary(model, np.zeros(1))
        sim = Simulator(memory, adversary, seed=0)

        def reader(ctx):
            yield model.read_op(0)
            yield model.read_op(0)

        sim.spawn(FunctionProgram(reader))
        sim.spawn(FunctionProgram(reader))
        order = [sim.step().thread_id for _ in range(4)]
        assert sorted(order) == [0, 0, 1, 1]

    def test_still_converges_under_adaptive_adversary(self):
        """The adversary can reorder but not invent updates: on a convex
        objective with small alpha, lock-free SGD still converges."""
        from repro.core.epoch_sgd import EpochSGDProgram
        from repro.runtime.simulator import Simulator
        from repro.shm.array import AtomicArray
        from repro.shm.counter import AtomicCounter
        from repro.shm.memory import SharedMemory

        objective = IsotropicQuadratic(dim=2, noise=ZeroNoise())
        memory = SharedMemory(record_log=False)
        model = AtomicArray.allocate(memory, 2, name="model")
        model.load(np.array([4.0, -4.0]))
        counter = AtomicCounter.allocate(memory)
        sim = Simulator(memory, GreedyAscentAdversary(model, objective.x_star),
                        seed=1)
        for _ in range(3):
            sim.spawn(EpochSGDProgram(model, counter, objective, 0.05, 300))
        sim.run()
        assert objective.distance_to_opt(model.snapshot()) < 1e-3


class TestStaleGradientAttack:
    def test_slowdown_grows_with_delay(self):
        objective = IsotropicQuadratic(dim=1, noise=ZeroNoise())
        x0 = np.array([10.0])
        target = 1e-4 * 10.0
        times = []
        for delay in (20, 120):
            result = run_lock_free_sgd(
                objective,
                StaleGradientAttack(victim=1, runner=0, delay=delay),
                num_threads=2,
                step_size=0.1,
                iterations=1500,
                x0=x0,
                seed=0,
            )
            times.append(iterations_to_stay_below(result.distances, target))
        assert times[0] is not None and times[1] is not None
        assert times[1] > 1.5 * times[0]

    def test_victim_updates_are_stale(self):
        objective = IsotropicQuadratic(dim=1, noise=ZeroNoise())
        result = run_lock_free_sgd(
            objective,
            StaleGradientAttack(victim=1, runner=0, delay=40),
            num_threads=2,
            step_size=0.1,
            iterations=200,
            x0=np.array([10.0]),
            seed=0,
        )
        assert tau_max(result.records) >= 40

    def test_rounds_budget(self):
        objective = IsotropicQuadratic(dim=1, noise=ZeroNoise())
        result = run_lock_free_sgd(
            objective,
            StaleGradientAttack(victim=1, runner=0, delay=50, rounds=2),
            num_threads=2,
            step_size=0.1,
            iterations=400,
            x0=np.array([10.0]),
            seed=0,
        )
        # After the budget the schedule is fair, so the run completes.
        assert result.iterations == 400

    def test_invalid_delay_rejected(self):
        with pytest.raises(ValueError):
            StaleGradientAttack(delay=-1)

    def test_terminates_with_single_runnable_thread(self):
        # Victim alone (runner crashes early) must not deadlock.
        objective = IsotropicQuadratic(dim=1, noise=ZeroNoise())
        result = run_lock_free_sgd(
            objective,
            StaleGradientAttack(victim=0, runner=1, delay=10),
            num_threads=1,
            step_size=0.1,
            iterations=20,
            x0=np.array([1.0]),
            seed=0,
        )
        assert result.iterations == 20


class TestPriorityDelay:
    def test_inflates_tau_max(self):
        objective = IsotropicQuadratic(dim=2)
        x0 = np.array([2.0, 2.0])
        plain = run_lock_free_sgd(
            objective, RandomScheduler(seed=1), num_threads=3,
            step_size=0.02, iterations=200, x0=x0, seed=1,
        )
        delayed = run_lock_free_sgd(
            objective,
            PriorityDelayScheduler(victims=[0], delay=100, seed=1),
            num_threads=3, step_size=0.02, iterations=200, x0=x0, seed=1,
        )
        assert tau_max(delayed.records) > tau_max(plain.records)

    def test_zero_delay_behaves_like_random(self):
        objective = IsotropicQuadratic(dim=2)
        result = run_lock_free_sgd(
            objective,
            PriorityDelayScheduler(victims=[0], delay=0, seed=1),
            num_threads=3, step_size=0.02, iterations=100,
            x0=np.array([1.0, 1.0]), seed=1,
        )
        assert result.iterations == 100

    def test_invalid_delay_rejected(self):
        with pytest.raises(ValueError):
            PriorityDelayScheduler(victims=[0], delay=-5)

    def test_run_completes_despite_holds(self):
        objective = IsotropicQuadratic(dim=2)
        result = run_lock_free_sgd(
            objective,
            PriorityDelayScheduler(victims=[0, 1], delay=50, seed=2),
            num_threads=2, step_size=0.02, iterations=60,
            x0=np.array([1.0, 1.0]), seed=2,
        )
        assert result.iterations == 60
