"""Tests for the CLI and the trace serializer."""

import json

import numpy as np
import pytest

from repro.cli import REGISTRY, build_parser, main
from repro.core.epoch_sgd import run_lock_free_sgd
from repro.errors import ConfigurationError
from repro.metrics.serialize import (
    dump_records,
    load_records,
    record_from_dict,
    record_to_dict,
)
from repro.objectives.noise import GaussianNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.sched.random_sched import RandomScheduler
from repro.theory.contention import interval_contention, tau_max


class TestCli:
    def test_registry_covers_all_experiments(self):
        assert set(REGISTRY) == {
            "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10",
            "E11", "E12", "E13", "E14", "E15", "F1", "A1", "A2",
        }

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in REGISTRY:
            assert key in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "E99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_f1_and_write_artifact(self, tmp_path, capsys):
        code = main(["run", "F1", "--out", str(tmp_path), "--no-plot"])
        assert code == 0
        out = capsys.readouterr().out
        assert "verdict: PASS" in out
        artifact = tmp_path / "F1.txt"
        assert artifact.exists()
        assert "update matrix" in artifact.read_text()

    def test_run_all_iterates_registry(self, tmp_path, capsys, monkeypatch):
        """`run all` visits every registered experiment (registry shrunk
        to the fast ones for the test)."""
        import repro.cli as cli

        small = {key: cli.REGISTRY[key] for key in ("F1",)}
        monkeypatch.setattr(cli, "REGISTRY", small)
        code = cli.main(["run", "all", "--out", str(tmp_path), "--no-plot"])
        assert code == 0
        assert (tmp_path / "F1.txt").exists()

    def test_experiment_titles_nonempty(self):
        from repro.cli import REGISTRY, _experiment_title

        for module, _config in REGISTRY.values():
            assert _experiment_title(module)

    def test_report_summarizes_artifacts(self, tmp_path, capsys):
        (tmp_path / "E1.txt").write_text("stuff\nverdict: PASS\n")
        (tmp_path / "E2.txt").write_text("stuff\nverdict: FAIL\n")
        code = main(["report", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 1  # one failure
        assert "E1" in out and "PASS" in out
        assert "E2" in out and "FAIL" in out
        assert "missing" in out  # the other experiments

    def test_report_all_passing_exit_zero(self, tmp_path, capsys):
        (tmp_path / "E1.txt").write_text("verdict: PASS\n")
        assert main(["report", str(tmp_path)]) == 0

    def test_report_missing_directory(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope")]) == 2

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scale_choice_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "E1", "--scale", "huge"])


@pytest.fixture
def trace():
    objective = IsotropicQuadratic(dim=3, noise=GaussianNoise(0.4))
    result = run_lock_free_sgd(
        objective, RandomScheduler(seed=1), num_threads=3,
        step_size=0.05, iterations=40, x0=np.full(3, 2.0), seed=1,
    )
    return result.records


class TestSerialize:
    def test_roundtrip_preserves_fields(self, trace):
        for record in trace:
            clone = record_from_dict(record_to_dict(record))
            assert clone.index == record.index
            assert clone.thread_id == record.thread_id
            assert clone.start_time == record.start_time
            assert clone.first_update_time == record.first_update_time
            assert clone.end_time == record.end_time
            assert clone.step_size == record.step_size
            np.testing.assert_array_equal(clone.view, record.view)
            np.testing.assert_array_equal(clone.gradient, record.gradient)
            assert clone.applied == record.applied
            assert clone.update_times == record.update_times

    def test_roundtrip_preserves_contention_analysis(self, trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        written = dump_records(trace, path)
        assert written == len(trace)
        loaded = load_records(path)
        assert tau_max(loaded) == tau_max(trace)
        np.testing.assert_array_equal(
            interval_contention(loaded), interval_contention(trace)
        )

    def test_file_is_json_lines(self, trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        dump_records(trace, path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == len(trace)
        payload = json.loads(lines[0])
        assert "gradient" in payload and "start_time" in payload

    def test_blank_lines_skipped(self, trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        dump_records(trace[:2], path)
        path.write_text(path.read_text() + "\n\n")
        assert len(load_records(path)) == 2

    def test_corrupt_json_reported_with_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(ConfigurationError, match="bad.jsonl:1"):
            load_records(path)

    def test_missing_field_rejected(self):
        with pytest.raises(ConfigurationError):
            record_from_dict({"time": 1})

    def test_unknown_keys_ignored(self, trace):
        payload = record_to_dict(trace[0])
        payload["future_field"] = "whatever"
        clone = record_from_dict(payload)
        assert clone.index == trace[0].index
