"""Unit tests for the bound calculators and the lower-bound calculus."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.theory.bounds import (
    contention_constant,
    corollary_6_7_failure_bound,
    corollary_6_7_step_size,
    slowdown_versus_sequential,
    theorem_3_1_failure_bound,
    theorem_3_1_step_size,
    theorem_6_3_failure_bound,
    theorem_6_3_step_size,
    theorem_6_5_failure_bound,
    theorem_6_5_precondition,
)
from repro.theory.lower_bound import (
    adversarial_contraction,
    attack_variance,
    max_tolerable_delay,
    required_delay,
    sequential_contraction,
    slowdown_factor,
)
from repro.theory.plog import plog


class TestTheorem31:
    def test_step_size_formula(self):
        assert theorem_3_1_step_size(2.0, 10.0, 0.5, 0.8) == pytest.approx(
            2.0 * 0.5 * 0.8 / 10.0
        )

    def test_bound_decays_as_one_over_t(self):
        kwargs = dict(epsilon=0.5, strong_convexity=1.0, second_moment=10.0,
                      x0_distance=3.0)
        b1 = theorem_3_1_failure_bound(iterations=1000, **kwargs)
        b2 = theorem_3_1_failure_bound(iterations=2000, **kwargs)
        assert b2 == pytest.approx(b1 / 2)

    def test_bound_clipped_to_one(self):
        assert theorem_3_1_failure_bound(
            iterations=1, epsilon=0.01, strong_convexity=1.0,
            second_moment=100.0, x0_distance=10.0,
        ) == 1.0

    def test_exact_formula(self):
        T, eps, c, m2, d0 = 500, 0.5, 1.0, 10.0, 3.0
        expected = m2 / (c**2 * eps * T) * plog(math.e * d0**2 / eps)
        assert theorem_3_1_failure_bound(T, eps, c, m2, d0) == pytest.approx(
            expected
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            theorem_3_1_step_size(0.0, 1.0, 0.1)
        with pytest.raises(ConfigurationError):
            theorem_3_1_failure_bound(0, 0.1, 1.0, 1.0, 1.0)


class TestTheorem63:
    def test_tau_zero_matches_sequential(self):
        assert theorem_6_3_step_size(1.0, 10.0, 1.0, 0.0, 0.5) == pytest.approx(
            theorem_3_1_step_size(1.0, 10.0, 0.5)
        )
        assert theorem_6_3_failure_bound(
            100, 0.5, 1.0, 10.0, 1.0, 0.0, 2.0
        ) == pytest.approx(theorem_3_1_failure_bound(100, 0.5, 1.0, 10.0, 2.0))

    def test_penalty_is_linear_in_tau(self):
        def numerator(tau):
            # Recover the numerator from the bound at large T.
            T = 10**9
            bound = theorem_6_3_failure_bound(T, 0.5, 1.0, 10.0, 1.0, tau, 2.0)
            return bound * T

        base = numerator(0)
        slope1 = numerator(10) - base
        slope2 = numerator(20) - base
        assert slope2 == pytest.approx(2 * slope1)

    def test_negative_tau_rejected(self):
        with pytest.raises(ConfigurationError):
            theorem_6_3_step_size(1.0, 1.0, 1.0, -1.0, 0.1)


class TestCorollary67:
    def test_contention_constant(self):
        assert contention_constant(9.0, 4) == pytest.approx(12.0)
        with pytest.raises(ConfigurationError):
            contention_constant(-1.0, 4)
        with pytest.raises(ConfigurationError):
            contention_constant(1.0, 0)

    def test_penalty_is_sqrt_in_tau(self):
        def numerator(tau):
            T = 10**9
            bound = corollary_6_7_failure_bound(
                T, 0.5, 1.0, 10.0, 1.0, tau, 4, 2, 2.0
            )
            return bound * T

        base = numerator(0)
        gain1 = numerator(16) - base
        gain2 = numerator(64) - base
        assert gain2 == pytest.approx(2 * gain1)  # sqrt(64/16) = 2

    def test_step_size_consistent_with_bound_numerator(self):
        c, m2, L, tau, n, d, eps = 1.0, 10.0, 1.0, 25.0, 4, 2, 0.5
        alpha = corollary_6_7_step_size(c, m2, L, tau, n, d, eps)
        M = math.sqrt(m2)
        C = contention_constant(tau, n)
        denominator = m2 + 2 * math.sqrt(eps) * L * M * C * math.sqrt(d)
        assert alpha == pytest.approx(c * eps / denominator)

    def test_beats_theorem_63_past_crossover(self):
        c, m2, L, n, d, eps, d0, T = 1.0, 10.0, 1.0, 4, 2, 0.5, 2.0, 10**7
        crossover = 4 * n * d
        before = crossover / 4
        after = crossover * 4
        assert corollary_6_7_failure_bound(
            T, eps, c, m2, L, before, n, d, d0
        ) > theorem_6_3_failure_bound(T, eps, c, m2, L, before, d0)
        assert corollary_6_7_failure_bound(
            T, eps, c, m2, L, after, n, d, d0
        ) < theorem_6_3_failure_bound(T, eps, c, m2, L, after, d0)

    def test_slowdown_factor_formula(self):
        got = slowdown_versus_sequential(0.25, 20.0, 1.0, 16.0, 4, 2)
        M = math.sqrt(20.0)
        extra = 4 * 0.5 * 1.0 * M * math.sqrt(64) * math.sqrt(2)
        assert got == pytest.approx((20.0 + extra) / 20.0)


class TestTheorem65:
    def test_precondition_boundary(self):
        # alpha^2 * H * L * M * C * sqrt(d) exactly 1 -> False; below -> True.
        assert theorem_6_5_precondition(0.1, 1.0, 1.0, 1.0, 99.0, 1)
        assert not theorem_6_5_precondition(0.1, 1.0, 1.0, 1.0, 100.0, 1)

    def test_bound_formula(self):
        got = theorem_6_5_failure_bound(
            iterations=100, initial_value=50.0, alpha=0.01,
            lipschitz_H=2.0, lipschitz=1.0, gradient_bound=3.0,
            contention=10.0, dim=4,
        )
        discount = 1 - 0.01**2 * 2.0 * 1.0 * 3.0 * 10.0 * 2.0
        assert got == pytest.approx(min(1.0, 50.0 / (discount * 100)))

    def test_violated_precondition_raises(self):
        with pytest.raises(ConfigurationError):
            theorem_6_5_failure_bound(
                iterations=100, initial_value=1.0, alpha=1.0,
                lipschitz_H=10.0, lipschitz=1.0, gradient_bound=1.0,
                contention=10.0, dim=1,
            )


class TestTheorem51Calculus:
    def test_required_delay_satisfies_condition(self):
        for alpha in (0.05, 0.1, 0.3):
            tau = required_delay(alpha)
            assert 2 * (1 - alpha) ** tau <= alpha
            assert 2 * (1 - alpha) ** (tau - 1) > alpha or tau == 1

    def test_contraction_formulas(self):
        assert sequential_contraction(0.1, 10) == pytest.approx(0.9**10)
        assert adversarial_contraction(0.1, 100) == pytest.approx(
            abs(0.9**100 - 0.1)
        )

    def test_slowdown_linear_in_tau(self):
        s1 = slowdown_factor(0.1, 100)
        s2 = slowdown_factor(0.1, 200)
        assert s2 == pytest.approx(2 * s1)

    def test_slowdown_matches_paper_expression(self):
        alpha, tau = 0.2, 50
        expected = tau * math.log(1 - alpha) / (math.log(alpha) - math.log(2))
        assert slowdown_factor(alpha, tau) == pytest.approx(expected)

    def test_attack_variance_closed_form(self):
        alpha, tau, sigma = 0.1, 5, 2.0
        contraction_sq = 0.81
        geometric = sum(contraction_sq**k for k in range(tau))
        expected = alpha**2 * sigma**2 * (1 + geometric)
        assert attack_variance(alpha, tau, sigma) == pytest.approx(expected)

    def test_max_tolerable_delay_consistent(self):
        alpha = 0.15
        boundary = max_tolerable_delay(alpha)
        assert required_delay(alpha) == max(1, math.ceil(boundary))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            required_delay(1.5)
        with pytest.raises(ConfigurationError):
            slowdown_factor(0.1, 0)
        with pytest.raises(ConfigurationError):
            attack_variance(0.1, 1, -1.0)
