"""Unit tests for the extension algorithms: momentum SGD, staleness-aware
SGD, and the DCAS-retry-loop epoch isolation."""

import numpy as np
import pytest

from repro.core.epoch_sgd import run_lock_free_sgd
from repro.core.full_sgd import FullSGD
from repro.core.momentum import (
    MomentumSGDProgram,
    fit_implicit_momentum,
    run_momentum_sgd,
)
from repro.core.sequential import run_sequential_sgd
from repro.core.staleness_aware import StalenessAwareSGDProgram
from repro.errors import ConfigurationError
from repro.metrics.trace import iterations_to_stay_below
from repro.objectives.noise import GaussianNoise, ZeroNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.sched.priority_delay import PriorityDelayScheduler
from repro.sched.random_sched import RandomScheduler
from repro.sched.round_robin import RoundRobinScheduler
from repro.sched.stale_attack import StaleGradientAttack


class TestSequentialMomentum:
    def test_zero_momentum_matches_plain_sgd(self):
        objective = IsotropicQuadratic(dim=2, noise=GaussianNoise(0.3))
        x0 = np.array([2.0, -2.0])
        plain = run_sequential_sgd(objective, 0.05, 100, x0=x0, seed=1)
        heavy = run_momentum_sgd(objective, 0.05, 0.0, 100, x0=x0, seed=1)
        np.testing.assert_allclose(plain.distances, heavy.distances)

    def test_momentum_accelerates_noiseless_quadratic(self):
        objective = IsotropicQuadratic(dim=1, noise=ZeroNoise())
        x0 = np.array([10.0])
        plain = run_momentum_sgd(objective, 0.05, 0.0, 200, x0=x0)
        accelerated = run_momentum_sgd(objective, 0.05, 0.5, 200, x0=x0)
        assert accelerated.final_distance < plain.final_distance

    def test_hit_time_recorded(self):
        objective = IsotropicQuadratic(dim=1, noise=ZeroNoise())
        result = run_momentum_sgd(
            objective, 0.1, 0.3, 200, x0=np.array([5.0]), epsilon=0.25
        )
        assert result.hit_time is not None

    def test_validation(self):
        objective = IsotropicQuadratic(dim=1)
        with pytest.raises(ConfigurationError):
            run_momentum_sgd(objective, 0.0, 0.5, 10)
        with pytest.raises(ConfigurationError):
            run_momentum_sgd(objective, 0.1, 1.0, 10)
        with pytest.raises(ConfigurationError):
            run_momentum_sgd(objective, 0.1, -0.1, 10)


class TestLockFreeMomentum:
    def _factory(self, objective, alpha, beta, T):
        def factory(model, counter, thread_index):
            return MomentumSGDProgram(model, counter, objective, alpha, beta, T)

        return factory

    def test_converges(self):
        objective = IsotropicQuadratic(dim=2, noise=GaussianNoise(0.3))
        x0 = np.array([3.0, -3.0])
        result = run_lock_free_sgd(
            objective, RandomScheduler(seed=2), num_threads=4,
            step_size=0.05, iterations=400, x0=x0, seed=2, epsilon=0.25,
            program_factory=self._factory(objective, 0.05, 0.5, 400),
        )
        assert result.succeeded

    def test_records_carry_velocity(self):
        objective = IsotropicQuadratic(dim=2, noise=ZeroNoise())
        x0 = np.array([2.0, -2.0])
        result = run_lock_free_sgd(
            objective, RoundRobinScheduler(), num_threads=2,
            step_size=0.1, iterations=20, x0=x0, seed=3,
            program_factory=self._factory(objective, 0.1, 0.5, 20),
        )
        # x_final must equal x0 plus all applied -alpha*velocity deltas.
        total = x0.astype(float).copy()
        for record in result.records:
            total -= record.step_size * record.gradient
        np.testing.assert_allclose(result.x_final, total, rtol=1e-10)

    def test_validation(self, memory):
        from repro.shm.array import AtomicArray
        from repro.shm.counter import AtomicCounter

        objective = IsotropicQuadratic(dim=2)
        model = AtomicArray.allocate(memory, 2)
        counter = AtomicCounter.allocate(memory)
        with pytest.raises(ConfigurationError):
            MomentumSGDProgram(model, counter, objective, 0.1, 1.5, 10)


class TestImplicitMomentumFit:
    def test_recovers_zero_for_sequential(self):
        objective = IsotropicQuadratic(dim=2, noise=ZeroNoise())
        x0 = np.array([5.0, -5.0])
        run = run_momentum_sgd(objective, 0.1, 0.0, 150, x0=x0)
        beta = fit_implicit_momentum(
            run.distances, objective, 0.1, 150, x0,
            betas=np.linspace(0, 0.9, 10), seeds=1,
        )
        assert beta == 0.0

    def test_recovers_planted_momentum(self):
        objective = IsotropicQuadratic(dim=2, noise=ZeroNoise())
        x0 = np.array([5.0, -5.0])
        run = run_momentum_sgd(objective, 0.1, 0.4, 150, x0=x0)
        beta = fit_implicit_momentum(
            run.distances, objective, 0.1, 150, x0,
            betas=np.linspace(0, 0.8, 9), seeds=1,
        )
        assert beta == pytest.approx(0.4, abs=0.11)

    def test_asynchrony_increases_fitted_momentum(self):
        objective = IsotropicQuadratic(dim=2, noise=ZeroNoise())
        x0 = np.array([5.0, -5.0])
        alpha = 0.12
        fitted = []
        for n in (1, 8):
            result = run_lock_free_sgd(
                objective, RoundRobinScheduler(), num_threads=n,
                step_size=alpha, iterations=200, x0=x0, seed=0,
            )
            fitted.append(
                fit_implicit_momentum(
                    result.distances, objective, alpha,
                    len(result.distances) - 1, x0,
                    betas=np.linspace(0, 0.95, 20), seeds=1,
                )
            )
        assert fitted[1] > fitted[0]


class TestStalenessAware:
    def _factory(self, objective, alpha, T, damping=1.0):
        def factory(model, counter, thread_index):
            return StalenessAwareSGDProgram(
                model, counter, objective, alpha, T, damping=damping
            )

        return factory

    def test_converges_under_benign_schedule(self):
        objective = IsotropicQuadratic(dim=2, noise=GaussianNoise(0.3))
        x0 = np.array([3.0, -3.0])
        result = run_lock_free_sgd(
            objective, RandomScheduler(seed=4), num_threads=4,
            step_size=0.05, iterations=400, x0=x0, seed=4, epsilon=0.25,
            program_factory=self._factory(objective, 0.05, 400),
        )
        assert result.succeeded

    def test_zero_damping_matches_plain_trajectory_shape(self):
        objective = IsotropicQuadratic(dim=2, noise=ZeroNoise())
        x0 = np.array([2.0, -2.0])
        aware = run_lock_free_sgd(
            objective, RoundRobinScheduler(), num_threads=2,
            step_size=0.1, iterations=40, x0=x0, seed=5,
            program_factory=self._factory(objective, 0.1, 40, damping=0.0),
        )
        for record in aware.records:
            assert record.step_size == 0.1  # no damping applied

    def test_damping_shrinks_step_under_delay(self):
        objective = IsotropicQuadratic(dim=2, noise=ZeroNoise())
        x0 = np.array([2.0, -2.0])
        result = run_lock_free_sgd(
            objective,
            PriorityDelayScheduler(victims=[0], delay=150, seed=6),
            num_threads=3, step_size=0.1, iterations=60, x0=x0, seed=6,
            program_factory=self._factory(objective, 0.1, 60),
        )
        effective = [r.step_size for r in result.records]
        assert min(effective) < 0.1  # some update was damped

    def test_defeats_weak_but_not_adaptive_adversary(self):
        objective = IsotropicQuadratic(dim=1, noise=ZeroNoise())
        x0 = np.array([10.0])
        target = 1e-3 * 10.0
        times = {}
        for phase in ("observe", "update"):
            result = run_lock_free_sgd(
                objective,
                StaleGradientAttack(victim=1, runner=0, delay=100,
                                    freeze_phase=phase),
                num_threads=2, step_size=0.1, iterations=1200, x0=x0, seed=7,
                program_factory=self._factory(objective, 0.1, 1200),
            )
            times[phase] = iterations_to_stay_below(result.distances, target)
        assert times["observe"] is not None and times["update"] is not None
        assert times["update"] > 1.5 * times["observe"]

    def test_validation(self, memory):
        from repro.shm.array import AtomicArray
        from repro.shm.counter import AtomicCounter

        objective = IsotropicQuadratic(dim=2)
        model = AtomicArray.allocate(memory, 2)
        counter = AtomicCounter.allocate(memory)
        with pytest.raises(ConfigurationError):
            StalenessAwareSGDProgram(model, counter, objective, 0.1, 10,
                                     damping=-1.0)


class TestDcasLoopIsolation:
    def test_same_result_as_guarded_fetch_add_when_uncontended(self):
        """With one thread the DCAS loop never retries, so both guarded
        implementations produce the same model."""
        objective = IsotropicQuadratic(dim=2, noise=GaussianNoise(0.3))
        x0 = np.array([2.0, -2.0])
        results = []
        for use_dcas in (False, True):
            driver = FullSGD(
                objective, num_threads=1, epsilon=0.1, alpha0=0.1,
                iterations_per_epoch=40, num_epochs=3, x0=x0,
                use_dcas_loop=use_dcas,
            )
            results.append(driver.run(RoundRobinScheduler(), seed=8))
        np.testing.assert_allclose(results[0].r, results[1].r, rtol=1e-12)

    def test_dcas_loop_costs_extra_steps(self):
        objective = IsotropicQuadratic(dim=2, noise=GaussianNoise(0.3))
        x0 = np.array([2.0, -2.0])
        steps = []
        for use_dcas in (False, True):
            driver = FullSGD(
                objective, num_threads=3, epsilon=0.1, alpha0=0.1,
                iterations_per_epoch=60, num_epochs=3, x0=x0,
                use_dcas_loop=use_dcas,
            )
            steps.append(driver.run(RandomScheduler(seed=9), seed=9).sim_steps)
        assert steps[1] > steps[0]

    def test_dcas_loop_still_rejects_stale_epochs(self):
        objective = IsotropicQuadratic(dim=2, noise=GaussianNoise(0.3))
        x0 = np.array([2.0, -2.0])
        driver = FullSGD(
            objective, num_threads=3, epsilon=0.05, alpha0=0.1,
            iterations_per_epoch=60, num_epochs=4, x0=x0, use_dcas_loop=True,
        )
        out = driver.run(
            PriorityDelayScheduler(victims=[0], delay=400, seed=10), seed=10
        )
        assert out.rejected_updates > 0
        # Consistency: model equals x0 + applied deltas.
        total = x0.astype(float).copy()
        for record in out.records:
            delta = -record.step_size * record.gradient
            total = total + delta * np.asarray(record.applied, dtype=float)
        np.testing.assert_allclose(out.r, total, rtol=1e-9, atol=1e-12)

    def test_dcas_loop_converges_under_contention(self):
        objective = IsotropicQuadratic(dim=2, noise=GaussianNoise(0.3))
        x0 = np.array([2.0, -2.0])
        driver = FullSGD(
            objective, num_threads=4, epsilon=0.05, alpha0=0.1,
            iterations_per_epoch=200, x0=x0, use_dcas_loop=True,
        )
        out = driver.run(RandomScheduler(seed=11), seed=11)
        assert out.distance <= (0.05**0.5) * 2.0
