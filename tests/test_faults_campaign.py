"""Tests for the chaos campaign runner and its CLI surface: grid
execution, per-spec aggregation, deterministic byte-identical reports
(serial and parallel), and the ``python -m repro chaos`` command."""

import json

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.faults.campaign import (
    CampaignConfig,
    ChaosWorkload,
    FaultSpec,
    preset_specs,
    run_campaign,
    summarize,
)
from repro.faults.spec import ProbabilisticCrashSpec

#: Small grid used across tests: faults on, everything converges fast.
_WORKLOAD = ChaosWorkload(iterations=120)


def _config(**overrides):
    defaults = dict(
        specs=(
            preset_specs()["none"],
            FaultSpec(
                "p", (ProbabilisticCrashSpec(rate=0.01, max_crashes=2),)
            ),
        ),
        seeds=(1, 2),
        workload=_WORKLOAD,
    )
    defaults.update(overrides)
    return CampaignConfig(**defaults)


class TestCampaignGrid:
    def test_grid_covers_every_spec_seed_cell(self):
        report = run_campaign(_config())
        assert len(report.outcomes) == 4
        assert [(o.spec, o.seed) for o in report.outcomes] == [
            ("none", 1), ("none", 2), ("p", 1), ("p", 2),
        ]
        assert len(report.summaries) == 2

    def test_faultless_spec_is_a_clean_baseline(self):
        report = run_campaign(_config())
        baseline = next(s for s in report.summaries if s.spec == "none")
        assert baseline.survival_rate == 1.0
        assert baseline.mean_crashed == 0.0
        assert baseline.violations == 0

    def test_survivors_converge_with_monitors_clean(self):
        report = run_campaign(_config())
        assert report.clean
        assert report.all_converged
        assert report.passed
        assert report.render().endswith("verdict: PASS")

    def test_crashed_threads_are_respawned_and_counted(self):
        report = run_campaign(_config(seeds=(1, 2, 3, 4)))
        faulty = [o for o in report.outcomes if o.spec == "p"]
        assert any(o.crashed > 0 for o in faulty)
        for outcome in faulty:
            assert outcome.respawned == outcome.crashed
            assert outcome.threads == _WORKLOAD.num_threads + outcome.respawned

    def test_no_recovery_leaves_crashes_unrepaired(self):
        report = run_campaign(_config(recover=False, seeds=(1, 2, 3)))
        faulty = [o for o in report.outcomes if o.spec == "p"]
        assert any(o.crashed > 0 for o in faulty)
        assert all(o.respawned == 0 for o in faulty)
        # Lock freedom: survivors still converge without replacements.
        assert report.all_converged

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            _config(specs=())
        with pytest.raises(ConfigurationError):
            _config(seeds=())


class TestCampaignDeterminism:
    def test_rerun_produces_identical_bytes(self):
        first = run_campaign(_config())
        second = run_campaign(_config())
        assert first.to_json() == second.to_json()

    def test_parallel_identical_to_serial(self):
        serial = run_campaign(_config(seeds=(1, 2, 3, 4)))
        parallel = run_campaign(_config(seeds=(1, 2, 3, 4), jobs=2))
        assert parallel.to_json() == serial.to_json()

    def test_json_is_loadable_and_timestamp_free(self):
        payload = json.loads(run_campaign(_config()).to_json())
        assert set(payload) == {
            "summaries", "outcomes", "clean", "all_converged", "passed",
        }
        assert payload["passed"] is True
        keys = set().union(*(o.keys() for o in payload["outcomes"]))
        keys |= set().union(*(s.keys() for s in payload["summaries"]))
        # Determinism: nothing wall-clock-dependent is serialized.
        assert not {"time", "timestamp", "date", "duration"} & keys


class TestPresets:
    def test_every_preset_builds_a_scheduler(self):
        from repro.sched.random_sched import RandomScheduler

        for name, spec in preset_specs().items():
            assert spec.name == name
            engine = spec.build(RandomScheduler(seed=0), seed=0)
            assert engine.name == name

    def test_summarize_groups_by_spec(self):
        report = run_campaign(_config())
        regrouped = summarize(report.outcomes)
        assert [s.spec for s in regrouped] == ["none", "p"]
        assert [s.runs for s in regrouped] == [2, 2]


class TestChaosCli:
    _ARGS = [
        "chaos", "--specs", "prob-crash", "--seeds", "2",
        "--iterations", "120",
    ]

    def test_chaos_command_passes_and_writes_artifacts(self, tmp_path, capsys):
        code = main(self._ARGS + ["--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "verdict: PASS" in out
        assert (tmp_path / "chaos_report.txt").read_text().rstrip().endswith(
            "verdict: PASS"
        )
        payload = json.loads((tmp_path / "chaos_report.json").read_text())
        assert payload["passed"] is True

    def test_chaos_reruns_are_byte_identical(self, tmp_path, capsys):
        main(self._ARGS + ["--out", str(tmp_path / "a")])
        main(self._ARGS + ["--out", str(tmp_path / "b")])
        capsys.readouterr()
        assert (tmp_path / "a" / "chaos_report.json").read_bytes() == (
            tmp_path / "b" / "chaos_report.json"
        ).read_bytes()

    def test_unknown_spec_rejected(self, capsys):
        assert main(["chaos", "--specs", "no-such-fault"]) == 2
        assert "unknown fault spec" in capsys.readouterr().err

    def test_no_monitors_no_recovery_flags(self, capsys):
        code = main(
            self._ARGS
            + ["--no-monitors", "--no-recovery", "--seeds", "1"]
        )
        assert code == 0
        assert "verdict: PASS" in capsys.readouterr().out


class TestLineageAccounting:
    """Respawn denials and per-lineage crash tallies surface in rendered
    campaign reports and survive the journal codec (satellite of the
    recovery report)."""

    def _denied_report(self):
        config = _config(
            specs=(
                FaultSpec(
                    "crashy",
                    (ProbabilisticCrashSpec(rate=0.05, max_crashes=3),),
                ),
            ),
            seeds=(1, 2, 3),
            max_respawns=0,
        )
        return run_campaign(config)

    def test_respawn_denied_counted_and_rendered(self):
        report = self._denied_report()
        denied = sum(o.respawn_denied for o in report.outcomes)
        crashed = sum(o.crashed for o in report.outcomes)
        assert crashed >= 1, "crash spec never fired; rates too low"
        assert denied == crashed  # zero respawn budget denies every one
        text = report.render()
        assert "denied" in text.splitlines()[1]
        assert any(
            line.startswith("LINEAGES spec=crashy") for line in text.splitlines()
        ), text
        summary = next(s for s in report.summaries if s.spec == "crashy")
        assert summary.respawn_denied == denied

    def test_crash_tally_lists_each_crashed_lineage(self):
        report = self._denied_report()
        for outcome in report.outcomes:
            assert sum(c for _tid, c in outcome.crash_tally) == outcome.crashed
            for thread_id, count in outcome.crash_tally:
                assert 0 <= thread_id and count >= 1

    def test_lineage_fields_survive_the_journal_codec(self):
        from repro.faults.campaign import (
            outcome_from_payload,
            outcome_to_payload,
        )

        report = self._denied_report()
        for outcome in report.outcomes:
            payload = json.loads(json.dumps(outcome_to_payload(outcome)))
            rebuilt = outcome_from_payload(payload)
            assert rebuilt.respawn_denied == outcome.respawn_denied
            assert rebuilt.crash_tally == outcome.crash_tally

    def test_json_report_carries_the_new_fields(self):
        report = self._denied_report()
        payload = json.loads(report.to_json())
        assert all("respawn_denied" in o for o in payload["outcomes"])
        assert all("crash_tally" in o for o in payload["outcomes"])
        assert any(s["respawn_denied"] > 0 for s in payload["summaries"])

    def test_clean_campaign_prints_no_lineage_lines(self):
        report = run_campaign(_config())
        lines = report.render().splitlines()
        # The baseline grid has no denials and no repeat-crash lineage,
        # so the LINEAGES detail stays out of the report.
        assert not any(line.startswith("LINEAGES") for line in lines)
