"""Unit tests for the serve layer's pure pieces: job-spec validation
and fingerprinting, the certified result cache (digests, write-once,
corruption recovery), and the injectable clock seam."""

import asyncio
import json

import pytest

from repro.errors import ConfigurationError
from repro.serve.cache import ResultCache
from repro.serve.clock import FakeServeClock, ServeClock
from repro.serve.specs import (
    JOB_KINDS,
    execute_spec,
    journal_fingerprint,
    parse_job_spec,
    result_digest,
)


class TestParseJobSpec:
    def test_defaults_fill_and_canonicalize(self):
        spec = parse_job_spec({"kind": "chaos"})
        assert spec.kind == "chaos"
        assert spec.params["specs"] == ["prob-crash", "torn-update"]
        assert spec.jobs == 1
        assert len(spec.fingerprint) == 64

    def test_every_kind_parses_with_defaults(self):
        for kind in JOB_KINDS:
            payload = {"kind": kind}
            if kind == "experiment":
                payload["params"] = {"id": "E1"}
            spec = parse_job_spec(payload)
            assert spec.kind == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown job kind"):
            parse_job_spec({"kind": "mystery"})

    def test_non_object_rejected(self):
        with pytest.raises(ConfigurationError, match="JSON object"):
            parse_job_spec([1, 2, 3])

    def test_unknown_param_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown chaos param"):
            parse_job_spec({"kind": "chaos", "params": {"bogus": 1}})

    def test_unknown_top_level_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown job spec field"):
            parse_job_spec({"kind": "chaos", "extra": True})

    def test_bad_param_value_rejected(self):
        with pytest.raises(ConfigurationError, match="bad chaos param"):
            parse_job_spec({"kind": "chaos", "params": {"seeds": "many"}})

    def test_unknown_fault_spec_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault spec"):
            parse_job_spec({"kind": "chaos", "params": {"specs": ["nope"]}})

    def test_experiment_requires_id(self):
        with pytest.raises(ConfigurationError, match="requires param 'id'"):
            parse_job_spec({"kind": "experiment"})

    def test_experiment_id_case_insensitive(self):
        low = parse_job_spec({"kind": "experiment", "params": {"id": "e1"}})
        up = parse_job_spec({"kind": "experiment", "params": {"id": "E1"}})
        assert low.fingerprint == up.fingerprint

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown experiment id"):
            parse_job_spec({"kind": "experiment", "params": {"id": "E99"}})

    def test_jobs_below_one_rejected(self):
        with pytest.raises(ConfigurationError, match="'jobs' must be >= 1"):
            parse_job_spec({"kind": "chaos", "jobs": 0})


class TestFingerprints:
    def test_jobs_knob_excluded_from_fingerprint(self):
        one = parse_job_spec({"kind": "chaos", "jobs": 1})
        four = parse_job_spec({"kind": "chaos", "jobs": 4})
        assert one.fingerprint == four.fingerprint

    def test_params_change_the_fingerprint(self):
        a = parse_job_spec({"kind": "chaos"})
        b = parse_job_spec({"kind": "chaos", "params": {"seeds": 3}})
        assert a.fingerprint != b.fingerprint

    def test_kinds_never_collide(self):
        prints = set()
        for kind in ("chaos", "sanitize", "zoo", "heal", "verify"):
            prints.add(parse_job_spec({"kind": kind}).fingerprint)
        assert len(prints) == 5

    def test_journal_fingerprint_matches_cli_fingerprint(self):
        """A serve-side journal must resume under the plain CLI: the
        journal is pinned to the same inner fingerprint the matching
        command computes."""
        from repro.faults.campaign import campaign_fingerprint

        spec = parse_job_spec(
            {"kind": "chaos", "params": {"specs": ["none"], "seeds": 2}}
        )
        from repro.serve.specs import _chaos_config

        assert journal_fingerprint(spec) == campaign_fingerprint(
            _chaos_config(spec.params)
        )


class TestExecuteSpec:
    def test_chaos_result_matches_direct_run(self):
        """The serve execution path adds nothing to the result: it is
        the driver's own report, canonically serialized."""
        from repro.faults.campaign import run_campaign
        from repro.serve.specs import _chaos_config

        payload = {
            "kind": "chaos",
            "params": {"specs": ["none"], "seeds": 2, "iterations": 60},
        }
        spec = parse_job_spec(payload)
        result = execute_spec(payload)
        direct = run_campaign(_chaos_config(spec.params))
        assert result["passed"] == direct.passed
        assert result["report"] == json.loads(direct.to_json())
        assert result["text"] == direct.render()

    def test_progress_fires_per_cell(self):
        counts = []
        execute_spec(
            {
                "kind": "chaos",
                "params": {"specs": ["none"], "seeds": 2, "iterations": 60},
            },
            progress=counts.append,
        )
        assert counts == [1, 2]

    def test_result_digest_is_canonical(self):
        a = result_digest({"b": 1, "a": [1, 2]})
        b = result_digest({"a": [1, 2], "b": 1})
        assert a == b
        assert a != result_digest({"a": [1, 2], "b": 2})


class TestResultCache:
    def test_miss_then_hit_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("f" * 64) is None
        digest = cache.put("f" * 64, {"passed": True})
        hit = cache.get("f" * 64)
        assert hit == {"digest": digest, "result": {"passed": True}}
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_persists_across_instances(self, tmp_path):
        first = ResultCache(tmp_path)
        digest = first.put("a" * 64, {"value": 3})
        second = ResultCache(tmp_path)
        hit = second.get("a" * 64)
        assert hit is not None and hit["digest"] == digest

    def test_memory_only_mode(self):
        cache = ResultCache(None)
        cache.put("b" * 64, {"x": 1})
        assert cache.get("b" * 64) is not None

    def test_write_once_keeps_first_and_counts_mismatch(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = cache.put("c" * 64, {"answer": 1})
        second = cache.put("c" * 64, {"answer": 2})
        assert second == first
        assert cache.get("c" * 64)["result"] == {"answer": 1}
        assert cache.stats()["mismatches"] == 1

    def test_corrupt_disk_entry_dropped_not_served(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("d" * 64, {"ok": True})
        path = tmp_path / f"{'d' * 64}.json"
        entry = json.loads(path.read_text())
        entry["result"]["ok"] = False  # bit-flip without fixing digest
        path.write_text(json.dumps(entry))
        fresh = ResultCache(tmp_path)
        assert fresh.get("d" * 64) is None
        assert fresh.stats()["corrupt"] == 1
        assert not path.exists()  # self-healed: bad entry removed

    def test_unparseable_disk_entry_is_a_miss(self, tmp_path):
        path = tmp_path / f"{'e' * 64}.json"
        path.write_text("torn{")
        cache = ResultCache(tmp_path)
        assert cache.get("e" * 64) is None
        assert cache.stats()["corrupt"] == 1


class TestServeClock:
    def test_fake_clock_advances_without_blocking(self):
        clock = FakeServeClock()
        clock.sleep(2.5)
        clock.advance(0.5)
        assert clock.monotonic() == 3.0
        assert clock.sleeps == [2.5]

    def test_fake_aio_sleep_records_and_returns(self):
        clock = FakeServeClock()

        async def go():
            await clock.aio_sleep(1.5)

        asyncio.run(go())
        assert clock.sleeps == [1.5]
        assert clock.monotonic() == 1.5

    def test_real_clock_sleep_zero_is_free(self):
        ServeClock().sleep(0.0)  # must not block or raise

    def test_real_wait_for_enforces_timeout(self):
        async def go():
            with pytest.raises(asyncio.TimeoutError):
                await ServeClock().wait_for(asyncio.Event().wait(), 0.05)

        asyncio.run(go())
