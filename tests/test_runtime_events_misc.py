"""Unit tests for the event types, the FullSGD epoch-event stream, the
Lemma 6.1 incomplete-iteration bound, and experiment-runner details."""

import numpy as np
import pytest

from repro.core.epoch_sgd import run_lock_free_sgd
from repro.core.full_sgd import FullSGD, FullSGDThreadProgram
from repro.objectives.noise import GaussianNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.runtime.events import (
    CrashEvent,
    EpochEvent,
    IterationRecord,
    SpawnEvent,
    StepRecord,
)
from repro.runtime.simulator import Simulator
from repro.sched.random_sched import RandomScheduler
from repro.sched.priority_delay import PriorityDelayScheduler
from repro.shm.array import AtomicArray
from repro.shm.counter import AtomicCounter
from repro.shm.memory import SharedMemory
from repro.shm.register import AtomicRegister
from repro.theory.contention import max_incomplete_iterations


class TestEventTypes:
    def test_iteration_record_order_time_prefers_first_update(self):
        record = IterationRecord(
            time=9, thread_id=0, start_time=0, first_update_time=5, end_time=9
        )
        assert record.order_time == 5

    def test_iteration_record_order_time_falls_back_to_end(self):
        record = IterationRecord(
            time=9, thread_id=0, start_time=0, first_update_time=None,
            end_time=9,
        )
        assert record.order_time == 9

    def test_overlaps_boundary_inclusive(self):
        a = IterationRecord(time=5, thread_id=0, start_time=0, end_time=5)
        b = IterationRecord(time=9, thread_id=1, start_time=5, end_time=9)
        assert a.overlaps(b)
        c = IterationRecord(time=9, thread_id=1, start_time=6, end_time=9)
        assert not a.overlaps(c)

    def test_epoch_event_defaults(self):
        event = EpochEvent(time=3, thread_id=1, epoch=2, learning_rate=0.05)
        assert event.kind == "start"

    def test_step_record_fields(self):
        from repro.shm.ops import Read

        record = StepRecord(time=1, thread_id=2, op=Read(0), result=1.5)
        assert record.result == 1.5


class TestEpochEventStream:
    def _run(self, scheduler, seed=3):
        objective = IsotropicQuadratic(dim=2, noise=GaussianNoise(0.3))
        memory = SharedMemory(record_log=False)
        model = AtomicArray.allocate(memory, 2, name="model")
        model.load(np.array([2.0, -2.0]))
        counter = AtomicCounter.allocate(memory)
        epoch_register = AtomicRegister(memory, memory.allocate(1))
        sim = Simulator(memory, scheduler, seed=seed)
        from repro.core.schedules import EpochHalvingRate

        for _ in range(3):
            sim.spawn(
                FullSGDThreadProgram(
                    model, counter, epoch_register, objective,
                    EpochHalvingRate(0.1), iterations_per_epoch=30,
                    num_epochs=4,
                )
            )
        sim.run()
        return sim

    def test_each_epoch_started_exactly_once(self):
        sim = self._run(RandomScheduler(seed=4))
        epoch_events = [e for e in sim.trace if isinstance(e, EpochEvent)]
        epochs = sorted(e.epoch for e in epoch_events)
        # Epoch 0 needs no CAS; epochs 1..3 each ratcheted exactly once.
        assert epochs == [1, 2, 3]

    def test_epoch_events_monotone_in_time(self):
        sim = self._run(RandomScheduler(seed=5))
        epoch_events = [e for e in sim.trace if isinstance(e, EpochEvent)]
        times = [e.time for e in sorted(epoch_events, key=lambda e: e.epoch)]
        assert times == sorted(times)

    def test_epoch_event_carries_halved_rate(self):
        sim = self._run(RandomScheduler(seed=6))
        for event in sim.trace:
            if isinstance(event, EpochEvent):
                assert event.learning_rate == pytest.approx(
                    0.1 / (2**event.epoch)
                )


class TestLemma61Incomplete:
    def test_bounded_by_thread_count_on_real_traces(self):
        objective = IsotropicQuadratic(dim=3, noise=GaussianNoise(0.4))
        x0 = np.full(3, 2.0)
        for n in (2, 4, 8):
            for scheduler in (
                RandomScheduler(seed=7),
                PriorityDelayScheduler(victims=[0], delay=60, seed=7),
            ):
                result = run_lock_free_sgd(
                    objective, scheduler, num_threads=n, step_size=0.02,
                    iterations=150, x0=x0, seed=7,
                )
                assert max_incomplete_iterations(result.records) <= n

    def test_synthetic_cases(self):
        def rec(first, end, tid=0):
            return IterationRecord(
                time=end, thread_id=tid, start_time=first - 1,
                first_update_time=first, end_time=end,
            )

        # Three nested in-flight iterations.
        records = [rec(0, 10), rec(1, 9), rec(2, 8)]
        assert max_incomplete_iterations(records) == 3
        # Sequential: never more than 1.
        records = [rec(0, 1), rec(2, 3), rec(4, 5)]
        assert max_incomplete_iterations(records) == 1
        # Point updates (first == end) are never in flight.
        records = [rec(5, 5)]
        assert max_incomplete_iterations(records) == 0
        assert max_incomplete_iterations([]) == 0


class TestSimulatorTraceComposition:
    def test_trace_contains_spawns_then_iterations(self):
        objective = IsotropicQuadratic(dim=2, noise=GaussianNoise(0.3))
        result = run_lock_free_sgd(
            objective, RandomScheduler(seed=8), num_threads=2,
            step_size=0.05, iterations=10, x0=np.array([1.0, 1.0]), seed=8,
        )
        assert len(result.records) == 10

    def test_crash_event_emitted(self):
        from repro.runtime.program import FunctionProgram

        memory = SharedMemory()
        counter = AtomicCounter.allocate(memory)
        sim = Simulator(memory, RandomScheduler(seed=9))

        def loop(ctx):
            for _ in range(5):
                yield counter.increment_op()

        sim.spawn(FunctionProgram(loop))
        sim.spawn(FunctionProgram(loop))
        sim.crash(1)
        sim.run()
        kinds = [type(e).__name__ for e in sim.trace]
        assert kinds.count("SpawnEvent") == 2
        assert kinds.count("CrashEvent") == 1
