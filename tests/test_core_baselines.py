"""Unit tests for the Hogwild and locked-SGD baselines."""

import numpy as np
import pytest

from repro.core.epoch_sgd import run_lock_free_sgd
from repro.core.hogwild import HogwildProgram
from repro.core.locked import LockedSGDProgram
from repro.errors import ConfigurationError
from repro.objectives.noise import ZeroNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.sched.random_sched import RandomScheduler
from repro.shm.register import AtomicRegister


@pytest.fixture
def clean():
    return IsotropicQuadratic(dim=2, noise=ZeroNoise())


def locked_factory(objective, step_size, iterations):
    """Factory wiring a shared lock register into every thread program."""
    state = {}

    def factory(model, counter, thread_index):
        if "lock" not in state:
            memory = model.memory
            state["lock"] = AtomicRegister(memory, memory.allocate(1, name="lock"))
        return LockedSGDProgram(
            model=model,
            counter=counter,
            lock=state["lock"],
            objective=objective,
            step_size=step_size,
            max_iterations=iterations,
        )

    return factory


class TestHogwild:
    def test_is_epoch_sgd_with_defaults(self, clean, memory):
        from repro.shm.array import AtomicArray
        from repro.shm.counter import AtomicCounter

        model = AtomicArray.allocate(memory, 2)
        counter = AtomicCounter.allocate(memory)
        program = HogwildProgram(model, counter, clean, 0.1, 10)
        assert program.guard is None
        assert program.accumulate is False
        assert program.use_write is False

    def test_converges(self, clean):
        x0 = np.array([3.0, -3.0])

        def factory(model, counter, thread_index):
            return HogwildProgram(model, counter, clean, 0.05, 200)

        result = run_lock_free_sgd(
            clean, RandomScheduler(seed=1), num_threads=4, step_size=0.05,
            iterations=200, x0=x0, seed=1, program_factory=factory,
        )
        assert clean.distance_to_opt(result.x_final) < 0.05


class TestLockedSGD:
    def test_views_always_consistent(self, clean):
        """Under the global lock every view equals the model state at
        lock acquisition — the accumulator trajectory visits it."""
        x0 = np.array([2.0, 2.0])
        result = run_lock_free_sgd(
            clean, RandomScheduler(seed=2), num_threads=3, step_size=0.1,
            iterations=40, x0=x0, seed=2,
            program_factory=locked_factory(clean, 0.1, 40),
        )
        from repro.core.results import accumulator_trajectory

        trajectory = accumulator_trajectory(x0, result.records)
        for record in result.records:
            assert np.any(
                np.all(np.isclose(trajectory, record.view, atol=1e-12), axis=1)
            )

    def test_iterations_serialized(self, clean):
        """No two locked iterations' critical sections overlap: ordering
        by first update equals ordering by read start."""
        x0 = np.array([2.0, 2.0])
        result = run_lock_free_sgd(
            clean, RandomScheduler(seed=3), num_threads=3, step_size=0.1,
            iterations=30, x0=x0, seed=3,
            program_factory=locked_factory(clean, 0.1, 30),
        )
        reads = [r.read_start_time for r in result.records]
        assert reads == sorted(reads)
        for earlier, later in zip(result.records, result.records[1:]):
            assert earlier.end_time < later.read_start_time

    def test_lock_overhead_costs_steps(self, clean):
        """Same iteration budget costs more shared-memory steps with the
        lock than without (the coarse-grained-locking penalty)."""
        x0 = np.array([2.0, 2.0])
        locked = run_lock_free_sgd(
            clean, RandomScheduler(seed=4), num_threads=4, step_size=0.1,
            iterations=50, x0=x0, seed=4,
            program_factory=locked_factory(clean, 0.1, 50),
        )
        lock_free = run_lock_free_sgd(
            clean, RandomScheduler(seed=4), num_threads=4, step_size=0.1,
            iterations=50, x0=x0, seed=4,
        )
        assert locked.sim_steps > lock_free.sim_steps

    def test_spin_steps_reported(self, clean):
        x0 = np.array([2.0, 2.0])
        from repro.shm.memory import SharedMemory
        from repro.shm.array import AtomicArray
        from repro.shm.counter import AtomicCounter
        from repro.runtime.simulator import Simulator

        memory = SharedMemory(record_log=False)
        model = AtomicArray.allocate(memory, 2)
        model.load(x0)
        counter = AtomicCounter.allocate(memory)
        lock = AtomicRegister(memory, memory.allocate(1))
        sim = Simulator(memory, RandomScheduler(seed=5), seed=5)
        for _ in range(4):
            sim.spawn(LockedSGDProgram(model, counter, lock, clean, 0.1, 40))
        sim.run()
        total_spins = sum(r["spin_steps"] for r in sim.results().values())
        assert total_spins > 0  # contention really happened
        assert lock.value == 0.0  # lock released at quiescence

    def test_invalid_step_size(self, clean, memory):
        from repro.shm.array import AtomicArray
        from repro.shm.counter import AtomicCounter

        model = AtomicArray.allocate(memory, 2)
        counter = AtomicCounter.allocate(memory)
        lock = AtomicRegister(memory, memory.allocate(1))
        with pytest.raises(ConfigurationError):
            LockedSGDProgram(model, counter, lock, clean, 0.0, 10)
