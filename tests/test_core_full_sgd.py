"""Unit tests for Algorithm 2 (FullSGD) and its epoch machinery."""

import math

import numpy as np
import pytest

from repro.core.full_sgd import FullSGD, recommended_num_epochs
from repro.errors import ConfigurationError
from repro.objectives.noise import GaussianNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.sched.priority_delay import PriorityDelayScheduler
from repro.sched.random_sched import RandomScheduler
from repro.sched.stale_attack import StaleGradientAttack


@pytest.fixture
def noisy():
    return IsotropicQuadratic(dim=2, noise=GaussianNoise(0.3))


class TestEpochFormula:
    def test_matches_closed_form(self):
        alpha0, M, n, eps = 0.1, 5.0, 4, 0.01
        target = 2 * alpha0 * M * n / math.sqrt(eps)
        assert recommended_num_epochs(alpha0, M, n, eps) == (
            math.ceil(math.log2(target)) + 1
        )

    def test_at_least_one_epoch(self):
        assert recommended_num_epochs(1e-6, 0.1, 1, 100.0) == 1

    def test_smaller_epsilon_needs_more_epochs(self):
        more = recommended_num_epochs(0.1, 5.0, 4, 0.001)
        fewer = recommended_num_epochs(0.1, 5.0, 4, 0.1)
        assert more > fewer

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            recommended_num_epochs(0.0, 1.0, 1, 0.1)
        with pytest.raises(ConfigurationError):
            recommended_num_epochs(0.1, 1.0, 0, 0.1)


class TestFullSGDRun:
    def test_reaches_target_under_random_schedule(self, noisy):
        driver = FullSGD(
            noisy, num_threads=3, epsilon=0.05, alpha0=0.1,
            iterations_per_epoch=300, x0=np.array([2.0, -2.0]),
        )
        out = driver.run(RandomScheduler(seed=1), seed=1)
        assert out.distance <= math.sqrt(0.05) * 1.5  # single run, slack
        assert out.num_epochs == driver.num_epochs
        assert out.total_iterations == driver.num_epochs * 300

    def test_step_sizes_halve(self, noisy):
        driver = FullSGD(
            noisy, num_threads=2, epsilon=0.1, alpha0=0.2,
            iterations_per_epoch=100, num_epochs=4,
        )
        out = driver.run(RandomScheduler(seed=2), seed=2)
        assert out.step_sizes == [0.2, 0.1, 0.05, 0.025]

    def test_iterations_tagged_with_epochs(self, noisy):
        driver = FullSGD(
            noisy, num_threads=2, epsilon=0.1, alpha0=0.2,
            iterations_per_epoch=50, num_epochs=3,
        )
        out = driver.run(RandomScheduler(seed=3), seed=3)
        epochs = {r.epoch for r in out.records}
        assert epochs == {0, 1, 2}
        for record in out.records:
            assert record.epoch == record.index // 50
            assert record.step_size == 0.2 / (2**record.epoch)

    def test_stale_cross_epoch_updates_rejected(self, noisy):
        """Under a heavy delay adversary, some updates must be guard-
        rejected, and rejected deltas must not appear in the model."""
        driver = FullSGD(
            noisy, num_threads=3, epsilon=0.05, alpha0=0.1,
            iterations_per_epoch=60, num_epochs=4,
            x0=np.array([2.0, -2.0]),
        )
        out = driver.run(
            PriorityDelayScheduler(victims=[0], delay=400, seed=4), seed=4
        )
        assert out.rejected_updates > 0
        # Model equals the sum of *applied* deltas only.
        total = np.array([2.0, -2.0])
        for record in out.records:
            delta = -record.step_size * record.gradient
            total = total + delta * np.asarray(record.applied, dtype=float)
        np.testing.assert_allclose(out.r, total, rtol=1e-9, atol=1e-12)

    def test_survives_stale_gradient_attack(self, noisy):
        driver = FullSGD(
            noisy, num_threads=2, epsilon=0.05, alpha0=0.1,
            iterations_per_epoch=300, x0=np.array([2.0, -2.0]),
        )
        out = driver.run(StaleGradientAttack(victim=1, runner=0, delay=50),
                         seed=5)
        assert out.distance <= math.sqrt(0.05) * 2.0

    def test_accumulators_cover_final_epoch(self, noisy):
        driver = FullSGD(
            noisy, num_threads=2, epsilon=0.1, alpha0=0.2,
            iterations_per_epoch=50, num_epochs=3,
        )
        out = driver.run(RandomScheduler(seed=6), seed=6)
        final_epoch = driver.num_epochs - 1
        alpha_final = driver.schedule.rate(final_epoch)
        expected = {tid: np.zeros(2) for tid in out.accumulators}
        for record in out.records:
            if record.epoch == final_epoch:
                expected[record.thread_id] -= alpha_final * record.gradient
        for tid, acc in out.accumulators.items():
            np.testing.assert_allclose(acc, expected[tid], rtol=1e-10,
                                       atol=1e-12)

    def test_determinism(self, noisy):
        driver = FullSGD(
            noisy, num_threads=2, epsilon=0.1, alpha0=0.2,
            iterations_per_epoch=50, num_epochs=3,
        )
        a = driver.run(RandomScheduler(seed=7), seed=7)
        b = driver.run(RandomScheduler(seed=7), seed=7)
        np.testing.assert_array_equal(a.r, b.r)
        assert a.sim_steps == b.sim_steps

    def test_guard_ablation_flag(self, noisy):
        driver = FullSGD(
            noisy, num_threads=2, epsilon=0.1, alpha0=0.2,
            iterations_per_epoch=50, num_epochs=3, use_guard=False,
        )
        out = driver.run(RandomScheduler(seed=8), seed=8)
        assert out.rejected_updates == 0  # nothing can be rejected

    def test_invalid_config(self, noisy):
        with pytest.raises(ConfigurationError):
            FullSGD(noisy, num_threads=0, epsilon=0.1, alpha0=0.1,
                    iterations_per_epoch=10)
        with pytest.raises(ConfigurationError):
            FullSGD(noisy, num_threads=2, epsilon=-1.0, alpha0=0.1,
                    iterations_per_epoch=10)
