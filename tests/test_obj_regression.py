"""Unit tests for least squares, ridge, logistic and sparse objectives
plus the dataset generators."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.objectives.datasets import make_classification, make_regression
from repro.objectives.least_squares import LeastSquares, RidgeRegression
from repro.objectives.logistic import LogisticRegression
from repro.objectives.sparse import SeparableQuadratic
from repro.runtime.rng import RngStream


@pytest.fixture(scope="module")
def regression_data():
    return make_regression(num_points=60, dim=4, noise_sigma=0.1, seed=3)


class TestDatasets:
    def test_regression_shapes(self, regression_data):
        design, targets, x_true = regression_data
        assert design.shape == (60, 4)
        assert targets.shape == (60,)
        assert x_true.shape == (4,)

    def test_regression_signal_dominates_noise(self, regression_data):
        design, targets, x_true = regression_data
        residual = targets - design @ x_true
        assert np.std(residual) < 0.5 * np.std(targets)

    def test_regression_determinism(self):
        a = make_regression(20, 3, seed=9)
        b = make_regression(20, 3, seed=9)
        np.testing.assert_array_equal(a[0], b[0])

    def test_regression_rejects_underdetermined(self):
        with pytest.raises(ConfigurationError):
            make_regression(num_points=2, dim=5)

    def test_classification_labels(self):
        _, labels, _ = make_classification(50, 3, seed=1)
        assert set(np.unique(labels)) <= {-1.0, 1.0}

    def test_classification_flip_fraction_validated(self):
        with pytest.raises(ConfigurationError):
            make_classification(10, 2, flip_fraction=0.7)


class TestLeastSquares:
    def test_x_star_is_least_squares_solution(self, regression_data):
        design, targets, _ = regression_data
        objective = LeastSquares(design, targets)
        expected, *_ = np.linalg.lstsq(design, targets, rcond=None)
        np.testing.assert_allclose(objective.x_star, expected, atol=1e-8)

    def test_gradient_zero_at_optimum(self, regression_data):
        design, targets, _ = regression_data
        objective = LeastSquares(design, targets)
        assert np.linalg.norm(objective.gradient(objective.x_star)) < 1e-10

    def test_oracle_unbiased(self, regression_data):
        design, targets, _ = regression_data
        objective = LeastSquares(design, targets)
        rng = RngStream.root(0)
        x = np.ones(4)
        mean = np.mean(
            [objective.stochastic_gradient(x, rng)[0] for _ in range(6000)],
            axis=0,
        )
        np.testing.assert_allclose(mean, objective.gradient(x), atol=0.2)

    def test_strong_convexity_is_min_eigenvalue(self, regression_data):
        design, targets, _ = regression_data
        objective = LeastSquares(design, targets)
        eigenvalues = np.linalg.eigvalsh(design.T @ design / len(targets))
        assert objective.strong_convexity == pytest.approx(eigenvalues[0])

    def test_rejects_rank_deficient(self):
        design = np.ones((10, 2))  # rank 1
        with pytest.raises(ConfigurationError):
            LeastSquares(design, np.ones(10))

    def test_rejects_shape_mismatch(self, regression_data):
        design, targets, _ = regression_data
        with pytest.raises(ConfigurationError):
            LeastSquares(design, targets[:-1])

    def test_second_moment_bound_holds_on_ball(self, regression_data):
        design, targets, _ = regression_data
        objective = LeastSquares(design, targets)
        rng = RngStream.root(4)
        radius = 1.0
        bound = objective.second_moment_bound(radius)
        x = objective.x_star + radius * np.array([1.0, 0, 0, 0]) / 1.0
        estimate = np.mean(
            [
                np.sum(objective.stochastic_gradient(x, rng)[0] ** 2)
                for _ in range(3000)
            ]
        )
        assert estimate <= bound * 1.05


class TestRidge:
    def test_optimum_solves_regularized_normal_equations(self, regression_data):
        design, targets, _ = regression_data
        lam = 0.5
        objective = RidgeRegression(design, targets, regularization=lam)
        m, d = design.shape
        expected = np.linalg.solve(
            design.T @ design / m + lam * np.eye(d), design.T @ targets / m
        )
        np.testing.assert_allclose(objective.x_star, expected, atol=1e-10)

    def test_gradient_zero_at_optimum(self, regression_data):
        design, targets, _ = regression_data
        objective = RidgeRegression(design, targets, regularization=0.3)
        assert np.linalg.norm(objective.gradient(objective.x_star)) < 1e-10

    def test_strong_convexity_includes_lambda(self, regression_data):
        design, targets, _ = regression_data
        plain = LeastSquares(design, targets)
        ridge = RidgeRegression(design, targets, regularization=0.7)
        assert ridge.strong_convexity == pytest.approx(
            plain.strong_convexity + 0.7
        )

    def test_rejects_nonpositive_lambda(self, regression_data):
        design, targets, _ = regression_data
        with pytest.raises(ConfigurationError):
            RidgeRegression(design, targets, regularization=0.0)

    def test_oracle_unbiased(self, regression_data):
        design, targets, _ = regression_data
        objective = RidgeRegression(design, targets, regularization=0.2)
        rng = RngStream.root(1)
        x = np.full(4, 0.5)
        mean = np.mean(
            [objective.stochastic_gradient(x, rng)[0] for _ in range(6000)],
            axis=0,
        )
        np.testing.assert_allclose(mean, objective.gradient(x), atol=0.2)


class TestLogistic:
    @pytest.fixture(scope="class")
    def logistic(self):
        design, labels, _ = make_classification(80, 3, seed=5)
        return LogisticRegression(design, labels, regularization=0.1)

    def test_optimum_has_zero_gradient(self, logistic):
        assert np.linalg.norm(logistic.gradient(logistic.x_star)) < 1e-6

    def test_value_decreases_toward_optimum(self, logistic):
        far = logistic.x_star + np.ones(3)
        assert logistic.value(far) > logistic.value(logistic.x_star)

    def test_oracle_unbiased(self, logistic):
        rng = RngStream.root(2)
        x = np.zeros(3)
        mean = np.mean(
            [logistic.stochastic_gradient(x, rng)[0] for _ in range(6000)],
            axis=0,
        )
        np.testing.assert_allclose(mean, logistic.gradient(x), atol=0.1)

    def test_gradient_finite_difference(self, logistic):
        x = np.array([0.3, -0.2, 0.1])
        eps = 1e-6
        for j in range(3):
            e = np.zeros(3)
            e[j] = eps
            numeric = (logistic.value(x + e) - logistic.value(x - e)) / (2 * eps)
            assert numeric == pytest.approx(logistic.gradient(x)[j], abs=1e-5)

    def test_strong_convexity_is_lambda(self, logistic):
        assert logistic.strong_convexity == 0.1

    def test_rejects_bad_labels(self):
        design, labels, _ = make_classification(20, 2, seed=0)
        labels = labels.copy()
        labels[0] = 0.5
        with pytest.raises(ConfigurationError):
            LogisticRegression(design, labels)


class TestSeparableQuadratic:
    def test_gradients_are_one_sparse(self):
        objective = SeparableQuadratic(np.array([1.0, 2.0, 3.0]))
        rng = RngStream.root(0)
        x = np.array([1.0, 1.0, 1.0])
        for _ in range(20):
            gradient, sample = objective.stochastic_gradient(x, rng)
            assert np.count_nonzero(gradient) <= 1
        assert objective.gradient_sparsity == 1

    def test_oracle_unbiased(self):
        objective = SeparableQuadratic(np.array([1.0, 2.0]), noise_sigma=0.1)
        rng = RngStream.root(1)
        x = np.array([2.0, -1.0])
        mean = np.mean(
            [objective.stochastic_gradient(x, rng)[0] for _ in range(8000)],
            axis=0,
        )
        np.testing.assert_allclose(mean, objective.gradient(x), atol=0.1)

    def test_constants(self):
        objective = SeparableQuadratic(np.array([0.5, 2.0]), noise_sigma=0.3)
        assert objective.strong_convexity == 0.5
        assert objective.lipschitz_expected == pytest.approx(
            np.sqrt(0.25 + 4.0)
        )
        assert objective.second_moment_bound(1.0) == pytest.approx(
            2 * 4.0 + 2 * 0.09
        )

    def test_rejects_bad_curvatures(self):
        with pytest.raises(ConfigurationError):
            SeparableQuadratic(np.array([1.0, -1.0]))
        with pytest.raises(ConfigurationError):
            SeparableQuadratic(np.array([]))
