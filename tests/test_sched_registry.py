"""Determinism of the scheduler registry.

Every registered kind, built twice with the same seed, must drive a
fixed workload through the identical schedule — the property the verify
tier's re-execution backtracking, the journal fingerprints and replay
all lean on.  A scheduler whose decisions depend on anything but
(seed, simulation state) would silently break all three.
"""

import numpy as np

from repro.core.epoch_sgd import run_lock_free_sgd
from repro.objectives.noise import GaussianNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.sched.registry import build_scheduler, scheduler_names
from repro.sched.replay import RecordingScheduler


def _recorded_schedule(scheduler):
    objective = IsotropicQuadratic(dim=2, noise=GaussianNoise(0.3))
    recorder = RecordingScheduler(scheduler)
    result = run_lock_free_sgd(
        objective,
        recorder,
        num_threads=3,
        step_size=0.05,
        iterations=24,
        x0=np.array([2.0, -2.0]),
        seed=7,
    )
    return recorder.schedule, result.x_final


class TestRegistryDeterminism:
    def test_every_kind_is_deterministic_under_a_fixed_seed(self):
        for kind in scheduler_names():
            first_schedule, first_x = _recorded_schedule(
                build_scheduler(kind, seed=3)
            )
            second_schedule, second_x = _recorded_schedule(
                build_scheduler(kind, seed=3)
            )
            assert first_schedule == second_schedule, (
                f"scheduler kind {kind!r} produced two different schedules "
                "from the same seed"
            )
            np.testing.assert_array_equal(first_x, second_x)

    def test_registry_is_sorted_and_nonempty(self):
        names = scheduler_names()
        assert names
        assert list(names) == sorted(names)
