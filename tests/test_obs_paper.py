"""Tests for the paper-aligned derived metrics (repro.obs.paper),
including the live-counters-vs-post-hoc-certifiers cross-check."""

import json

import numpy as np
import pytest

from repro.analysis.lemmas import certify_run
from repro.core.epoch_sgd import run_lock_free_sgd
from repro.obs.paper import (
    PaperTracker,
    merge_paper_metrics,
    paper_metrics,
    publish_paper_metrics,
    tau_histogram_buckets,
)
from repro.obs.registry import NULL, MetricsRegistry
from repro.objectives.noise import GaussianNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.sched.bounded_delay import BoundedDelayScheduler
from repro.theory.contention import (
    delay_sequence,
    lemma_6_2_window_counts,
    tau_max,
)

NUM_THREADS = 4


def _adversarial_run(seed=7, iterations=200, metrics=None):
    objective = IsotropicQuadratic(dim=2, noise=GaussianNoise(0.3))
    return run_lock_free_sgd(
        objective,
        BoundedDelayScheduler(16, seed=seed, victims=[0], bias=0.9),
        num_threads=NUM_THREADS,
        step_size=0.05,
        iterations=iterations,
        x0=np.full(2, 1.5),
        seed=seed,
        metrics=metrics,
    )


class TestTauHistogramBuckets:
    def test_cumulative_with_inf(self):
        buckets = tau_histogram_buckets([0, 1, 3, 5, 1000], buckets=(1, 4, 16))
        assert buckets == [[1, 2], [4, 3], [16, 4], ["+Inf", 5]]

    def test_empty(self):
        assert tau_histogram_buckets([], buckets=(1, 2))[-1] == ["+Inf", 0]


class TestPaperMetrics:
    def test_cross_checks_post_hoc_certifiers(self):
        """The acceptance-criterion cross-check: every quantity in the
        live snapshot agrees with the post-hoc certification of the
        same trace (same shared checkers underneath)."""
        records = _adversarial_run().records
        obs = paper_metrics(records, num_threads=NUM_THREADS)
        by_lemma = {
            c.lemma: c for c in certify_run(records, num_threads=NUM_THREADS)
        }
        assert obs["lemma_6_1_violations"] == int(by_lemma["6.1"].measured)
        assert obs["window_bad_max"] == by_lemma["6.2"].measured
        assert obs["window_bound"] == by_lemma["6.2"].bound
        assert obs["lemma_6_2_holds"] == by_lemma["6.2"].holds
        assert obs["indicator_sum_max"] == by_lemma["6.4"].measured
        assert obs["indicator_sum_bound"] == by_lemma["6.4"].bound
        assert obs["lemma_6_4_holds"] == by_lemma["6.4"].holds
        assert obs["tau_max"] == tau_max(records)
        assert obs["window_counts"] == lemma_6_2_window_counts(
            records, window_multiplier=2, num_threads=NUM_THREADS
        )
        delays = delay_sequence(records)
        assert obs["tau_histogram"][-1] == ["+Inf", delays.size]
        assert obs["delay_max"] == int(delays.max())

    def test_live_registry_agrees_with_post_hoc(self):
        """Counters populated during an instrumented run match the
        post-hoc paper_metrics of the same trace."""
        registry = MetricsRegistry()
        result = _adversarial_run(metrics=registry)
        obs = paper_metrics(result.records, num_threads=NUM_THREADS)
        snapshot = registry.snapshot()
        assert snapshot["repro_iterations_total"] == obs["iterations"]
        assert snapshot["repro_tau_max"] == obs["tau_max"]
        assert snapshot["repro_delay_max"] == obs["delay_max"]
        assert snapshot["repro_window_bad_max"] == obs["window_bad_max"]
        assert (
            snapshot["repro_indicator_sum_max"] == obs["indicator_sum_max"]
        )
        assert (
            snapshot["repro_lemma_6_1_violations_total"]
            == obs["lemma_6_1_violations"]
        )
        assert (
            snapshot["repro_tau_delay"]["count"]
            == obs["tau_histogram"][-1][1]
        )

    def test_deterministic_and_json_safe(self):
        first = paper_metrics(
            _adversarial_run().records, num_threads=NUM_THREADS
        )
        second = paper_metrics(
            _adversarial_run().records, num_threads=NUM_THREADS
        )
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_empty_trace(self):
        obs = paper_metrics([], num_threads=NUM_THREADS)
        assert obs["iterations"] == 0
        assert obs["tau_max"] == 0
        assert obs["lemma_6_2_holds"] and obs["lemma_6_4_holds"]


class TestMergePaperMetrics:
    def test_merges_extremes_and_sums(self):
        records = _adversarial_run().records
        cell = paper_metrics(records, num_threads=NUM_THREADS)
        merged = merge_paper_metrics([cell, cell])
        assert merged["cells"] == 2
        assert merged["iterations"] == 2 * cell["iterations"]
        assert merged["tau_max"] == cell["tau_max"]
        assert merged["tau_histogram"][-1][1] == 2 * cell["tau_histogram"][-1][1]
        assert merged["lemma_6_2_holds"] and merged["lemma_6_4_holds"]

    def test_empty(self):
        assert merge_paper_metrics([]) == {}
        assert merge_paper_metrics([{}, None]) == {}


class TestPublish:
    def test_null_registry_is_noop(self):
        publish_paper_metrics(NULL, {"iterations": 5, "tau_max": 3})
        publish_paper_metrics(None, {"iterations": 5})

    def test_publishes_counters_gauges_histogram(self):
        registry = MetricsRegistry()
        snapshot = paper_metrics(
            _adversarial_run().records, num_threads=NUM_THREADS
        )
        publish_paper_metrics(registry, snapshot)
        publish_paper_metrics(registry, snapshot)  # second run accumulates
        sampled = registry.snapshot()
        assert sampled["repro_iterations_total"] == 2 * snapshot["iterations"]
        assert sampled["repro_tau_max"] == snapshot["tau_max"]  # gauge: max


class TestPaperTracker:
    def test_streaming_snapshot_matches_one_shot(self):
        records = _adversarial_run().records
        tracker = PaperTracker(num_threads=NUM_THREADS)
        half = len(records) // 2
        tracker.ingest(records[:half])
        tracker.ingest(records[half:])
        assert tracker.iterations == len(records)
        assert tracker.snapshot() == paper_metrics(
            records, num_threads=NUM_THREADS
        )
