"""Tests for the Algorithm interface, its registry and the unified driver.

Pins the zoo contract: the registry holds exactly the built-in variants,
every variant completes under every panel adversary, the fidelity modes
(``run`` vs ``run_fast``) land on identical machine states, and the
variant-specific counters surface through ``result.extras``.
"""

import numpy as np
import pytest

from repro.core.algorithm import (
    LEMMAS,
    Algorithm,
    algorithm_names,
    algorithm_registry,
    build_zoo_simulation,
    get_algorithm,
    register_algorithm,
    run_algorithm,
)
from repro.durable.checkpoint import state_digest
from repro.errors import ConfigurationError
from repro.objectives.noise import GaussianNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.sched.registry import build_scheduler
from repro.sched.round_robin import RoundRobinScheduler

EXPECTED_NAMES = (
    "epoch-sgd",
    "full-sgd",
    "hogwild",
    "leashed",
    "locked",
    "momentum",
    "staleness-aware",
)

PANEL_ADVERSARIES = (
    "round-robin",
    "random",
    "bounded-delay",
    "stale-attack",
    "contention-max",
)


def _objective(dim=2):
    return IsotropicQuadratic(dim=dim, noise=GaussianNoise(0.2))


class TestRegistry:
    def test_builtin_names(self):
        assert algorithm_names() == EXPECTED_NAMES

    def test_registry_returns_classes(self):
        registry = algorithm_registry()
        for name, cls in registry.items():
            assert cls.name == name
            assert issubclass(cls, Algorithm)
            assert cls.title

    def test_unknown_algorithm_raises(self):
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            get_algorithm("nonexistent-sgd")

    def test_duplicate_name_rejected(self):
        class Duplicate(Algorithm):
            name = "hogwild"  # already taken by the built-in

            def build(self, setup):  # pragma: no cover - never called
                return []

        with pytest.raises(ConfigurationError, match="already registered"):
            register_algorithm(Duplicate)
        # The built-in registration is untouched.
        assert algorithm_registry()["hogwild"] is not Duplicate

    def test_empty_name_rejected(self):
        class Nameless(Algorithm):
            def build(self, setup):  # pragma: no cover - never called
                return []

        with pytest.raises(ConfigurationError, match="non-empty"):
            register_algorithm(Nameless)

    def test_unknown_lemma_rejected(self):
        class BadLemmas(Algorithm):
            name = "bad-lemmas-variant"
            lemmas = ("6.1", "9.9")

            def build(self, setup):  # pragma: no cover - never called
                return []

        with pytest.raises(ConfigurationError, match="unknown lemma"):
            register_algorithm(BadLemmas)
        # Rejected before insertion: the bad name never lands.
        assert "bad-lemmas-variant" not in algorithm_registry()

    def test_lemma_applicability(self):
        assert get_algorithm("locked").lemma_applicability() == {
            "6.1": True,
            "6.2": False,
            "6.4": False,
        }
        assert get_algorithm("leashed").lemma_applicability() == {
            "6.1": True,
            "6.2": False,
            "6.4": False,
        }
        for name in ("epoch-sgd", "hogwild", "momentum", "staleness-aware"):
            applicability = get_algorithm(name).lemma_applicability()
            assert applicability == {lemma: True for lemma in LEMMAS}


class TestUnifiedDriver:
    @pytest.mark.parametrize("adversary", PANEL_ADVERSARIES)
    @pytest.mark.parametrize("name", EXPECTED_NAMES)
    def test_every_algorithm_under_every_adversary(self, name, adversary):
        iterations = 20
        result = run_algorithm(
            get_algorithm(name),
            _objective(),
            build_scheduler(adversary, seed=3),
            num_threads=3,
            step_size=0.05,
            iterations=iterations,
            x0=np.full(2, 2.0),
            seed=3,
        )
        assert len(result.records) == iterations
        assert sum(result.thread_iterations.values()) == iterations
        # The counter hands out unique, gap-free iteration indices.
        assert sorted(r.index for r in result.records) == list(
            range(iterations)
        )
        assert np.all(np.isfinite(result.x_final))

    @pytest.mark.parametrize("name", EXPECTED_NAMES)
    def test_run_and_run_fast_land_on_identical_state(self, name):
        digests = []
        snapshots = []
        for mode in ("run", "run_fast"):
            sim, model, _x0 = build_zoo_simulation(
                get_algorithm(name),
                _objective(),
                RoundRobinScheduler(),
                num_threads=3,
                step_size=0.05,
                iterations=24,
                x0=np.full(2, 2.0),
                seed=5,
            )
            getattr(sim, mode)()
            digests.append(state_digest(sim))
            snapshots.append(model.snapshot())
        assert digests[0] == digests[1]
        assert np.array_equal(snapshots[0], snapshots[1])

    def test_locked_reports_spin_steps(self):
        result = run_algorithm(
            get_algorithm("locked"),
            _objective(),
            RoundRobinScheduler(),
            num_threads=4,
            step_size=0.05,
            iterations=40,
            x0=np.full(2, 2.0),
            seed=1,
        )
        assert result.extras["spin_steps"] > 0

    def test_leashed_reports_cas_failures_under_contention(self):
        result = run_algorithm(
            get_algorithm("leashed"),
            _objective(dim=1),
            RoundRobinScheduler(),
            num_threads=4,
            step_size=0.05,
            iterations=40,
            x0=np.full(1, 2.0),
            seed=1,
        )
        assert result.extras["cas_failures"] > 0

    def test_leashed_zero_retries_drops_components(self):
        result = run_algorithm(
            get_algorithm("leashed", max_cas_retries=0),
            _objective(dim=1),
            RoundRobinScheduler(),
            num_threads=4,
            step_size=0.05,
            iterations=40,
            x0=np.full(1, 2.0),
            seed=1,
        )
        assert result.extras["dropped_components"] > 0

    def test_build_count_mismatch_raises(self):
        class HalfBuilt(Algorithm):
            name = "half-built"

            def build(self, setup):
                inner = get_algorithm("hogwild").build(setup)
                return inner[:1]  # wrong: one program for many threads

        with pytest.raises(ConfigurationError, match="program"):
            build_zoo_simulation(
                HalfBuilt(),
                _objective(),
                RoundRobinScheduler(),
                num_threads=3,
                step_size=0.05,
                iterations=10,
            )

    def test_invalid_thread_count_raises(self):
        with pytest.raises(ConfigurationError, match="num_threads"):
            build_zoo_simulation(
                get_algorithm("hogwild"),
                _objective(),
                RoundRobinScheduler(),
                num_threads=0,
                step_size=0.05,
                iterations=10,
            )
