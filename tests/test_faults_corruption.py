"""Tests for the value-corruption fault family: bit flips, NaN/Inf
poisoning, duplicated/dropped writes — spec validation at build time,
deterministic injection under the plan seed, ``run()``/``run_fast()``
identity, and suppression windows."""

import numpy as np
import pytest

from repro.core.algorithm import build_zoo_simulation, get_algorithm
from repro.errors import ConfigurationError
from repro.faults.campaign import corruption_specs
from repro.faults.spec import (
    BitFlipSpec,
    DroppedWriteSpec,
    DuplicateWriteSpec,
    FaultSpec,
    PoisonSpec,
    ProbabilisticCrashSpec,
)
from repro.objectives.noise import GaussianNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.sched.random_sched import RandomScheduler


def _run(spec, seed=5, iterations=150, fast=True):
    """One epoch-sgd run under ``spec``; returns (digest, corruptions)."""
    engine = spec.build(RandomScheduler(seed=seed), seed=seed, num_threads=4)
    sim, _model, _x0 = build_zoo_simulation(
        get_algorithm("epoch-sgd"),
        IsotropicQuadratic(dim=2, noise=GaussianNoise(0.2)),
        engine,
        num_threads=4,
        step_size=0.05,
        iterations=iterations,
        x0=np.full(2, 2.0),
        seed=seed,
    )
    if fast:
        sim.run_fast()
    else:
        sim.run()
    return sim.state_digest(), engine.corruptions


class TestSpecValidation:
    """S2: malformed corruption plans are rejected when built."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda r: BitFlipSpec(rate=r),
            lambda r: PoisonSpec(rate=r),
            lambda r: DuplicateWriteSpec(rate=r),
            lambda r: DroppedWriteSpec(rate=r),
        ],
    )
    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_rate_outside_unit_interval_rejected(self, factory, rate):
        with pytest.raises(ConfigurationError, match=r"rate must be in"):
            factory(rate)

    def test_poison_mode_validated(self):
        with pytest.raises(ConfigurationError, match="mode"):
            PoisonSpec(rate=0.1, mode="zero")

    def test_nonexistent_victim_rejected_at_build_time(self):
        spec = FaultSpec(
            "bad", (DuplicateWriteSpec(rate=0.1, victims=(7,)),)
        )
        with pytest.raises(ConfigurationError, match="non-existent thread"):
            spec.build(RandomScheduler(seed=1), seed=1, num_threads=4)

    def test_crash_victim_validated_too(self):
        spec = FaultSpec(
            "bad", (ProbabilisticCrashSpec(rate=0.1, victims=(4,)),)
        )
        with pytest.raises(ConfigurationError, match="non-existent thread"):
            spec.build(RandomScheduler(seed=1), seed=1, num_threads=4)

    def test_valid_victims_accepted(self):
        spec = FaultSpec(
            "ok", (DuplicateWriteSpec(rate=0.1, victims=(0, 3)),)
        )
        engine = spec.build(RandomScheduler(seed=1), seed=1, num_threads=4)
        assert engine is not None

    def test_build_without_thread_count_skips_victim_check(self):
        spec = FaultSpec(
            "late", (DuplicateWriteSpec(rate=0.1, victims=(7,)),)
        )
        assert spec.build(RandomScheduler(seed=1), seed=1) is not None


class TestCorruptionDeterminism:
    @pytest.mark.parametrize(
        "name",
        ["bit-flip", "nan-poison", "inf-poison", "dup-write", "drop-write"],
    )
    def test_identical_reruns(self, name):
        spec = corruption_specs()[name]
        assert _run(spec) == _run(spec)

    @pytest.mark.parametrize(
        "name",
        ["bit-flip", "nan-poison", "inf-poison", "dup-write", "drop-write"],
    )
    def test_run_and_run_fast_agree(self, name):
        spec = corruption_specs()[name]
        assert _run(spec, fast=True) == _run(spec, fast=False)

    def test_seed_changes_the_pattern(self):
        spec = corruption_specs()["nan-poison"]
        digests = {_run(spec, seed=s)[0] for s in range(5, 10)}
        assert len(digests) > 1

    def test_corruption_perturbs_the_run(self):
        clean, zero = _run(FaultSpec("none", ()))
        poisoned, fired = _run(corruption_specs()["nan-poison"])
        assert zero == 0
        assert fired >= 1
        assert poisoned != clean

    def test_max_corruptions_caps_events(self):
        spec = FaultSpec(
            "capped", (PoisonSpec(rate=0.5, mode="nan", max_corruptions=2),)
        )
        _digest, fired = _run(spec)
        assert fired == 2

    def test_composes_with_crash_plan(self):
        spec = FaultSpec(
            "mixed",
            (
                PoisonSpec(rate=0.01, mode="nan", max_corruptions=1),
                ProbabilisticCrashSpec(rate=0.01, max_crashes=1),
            ),
        )
        assert _run(spec) == _run(spec)


class TestSuppressionWindows:
    def test_full_window_disarms_everything(self):
        spec = corruption_specs()["nan-poison"]
        engine = spec.build(RandomScheduler(seed=5), seed=5, num_threads=4)
        engine.set_suppression([(0, 10**9)])
        sim, _model, _x0 = build_zoo_simulation(
            get_algorithm("epoch-sgd"),
            IsotropicQuadratic(dim=2, noise=GaussianNoise(0.2)),
            engine,
            num_threads=4,
            step_size=0.05,
            iterations=150,
            x0=np.full(2, 2.0),
            seed=5,
        )
        sim.run_fast()
        assert engine.corruptions == 0

    def test_windows_do_not_change_the_unsuppressed_suffix_draws(self):
        # Identical windows on both engines -> identical outcomes; the
        # suppressed interval skips RNG draws entirely, so the pattern
        # is a pure function of (spec, seed, windows).
        spec = corruption_specs()["bit-flip"]

        def run_with_windows(windows):
            engine = spec.build(
                RandomScheduler(seed=5), seed=5, num_threads=4
            )
            engine.set_suppression(windows)
            sim, _m, _x = build_zoo_simulation(
                get_algorithm("epoch-sgd"),
                IsotropicQuadratic(dim=2, noise=GaussianNoise(0.2)),
                engine,
                num_threads=4,
                step_size=0.05,
                iterations=150,
                x0=np.full(2, 2.0),
                seed=5,
            )
            sim.run_fast()
            return sim.state_digest(), engine.corruptions

        windows = [(30, 200)]
        assert run_with_windows(windows) == run_with_windows(windows)
        assert run_with_windows(windows) != run_with_windows([])
