"""Adversaries driving the zoo programs through the unified driver.

Satellite coverage for :mod:`repro.sched.priority_delay` and
:mod:`repro.sched.adaptive` against registry-built algorithms, plus the
livelock regression: phase-parking adversaries must not starve lock-based
variants now that spinlock waiters publish ``blocked``.
"""

import numpy as np
import pytest

from repro.core.algorithm import build_zoo_simulation, get_algorithm, run_algorithm
from repro.obs.paper import paper_metrics
from repro.objectives.noise import GaussianNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.sched.adaptive import AdaptiveAdversary, GreedyAscentAdversary
from repro.sched.registry import build_scheduler
from repro.sched.round_robin import RoundRobinScheduler

THREADS = 4
ITERATIONS = 40


def _objective(dim=2):
    return IsotropicQuadratic(dim=dim, noise=GaussianNoise(0.2))


def _run(name, scheduler, dim=2, seed=9):
    return run_algorithm(
        get_algorithm(name),
        _objective(dim=dim),
        scheduler,
        num_threads=THREADS,
        step_size=0.05,
        iterations=ITERATIONS,
        x0=np.full(dim, 2.0),
        seed=seed,
    )


class TestPriorityDelayOnZoo:
    @pytest.mark.parametrize("name", ["epoch-sgd", "locked", "leashed"])
    def test_drives_zoo_programs_to_completion(self, name):
        result = _run(name, build_scheduler("priority-delay", seed=9))
        assert len(result.records) == ITERATIONS
        assert sum(result.thread_iterations.values()) == ITERATIONS

    def test_delay_dial_raises_tau(self):
        baseline = _run("epoch-sgd", RoundRobinScheduler())
        delayed = _run(
            "epoch-sgd",
            build_scheduler("priority-delay", seed=9, victims=(1,), delay=30),
        )
        tau_base = paper_metrics(baseline.records, num_threads=THREADS)
        tau_delayed = paper_metrics(delayed.records, num_threads=THREADS)
        assert tau_delayed["tau_max"] >= tau_base["tau_max"]
        # The victim's updates were actually parked: some iteration spent
        # at least ``delay`` steps between opening and first update.
        spans = [
            r.first_update_time - r.start_time
            for r in delayed.records
            if r.first_update_time is not None
        ]
        assert max(spans) >= 30


class TestAdaptiveOnZoo:
    @pytest.mark.parametrize("name", ["hogwild", "momentum", "locked"])
    def test_greedy_ascent_drives_zoo_programs(self, name):
        objective = _objective()
        sim, model, _x0 = build_zoo_simulation(
            get_algorithm(name),
            objective,
            RoundRobinScheduler(),  # placeholder, swapped below
            num_threads=THREADS,
            step_size=0.05,
            iterations=ITERATIONS,
            x0=np.full(2, 2.0),
            seed=9,
        )
        sim.scheduler = GreedyAscentAdversary(model, objective.x_star)
        sim.run()
        done = sum(
            sim.results()[tid].get("iterations", 0)
            for tid in sim.results()
            if isinstance(sim.results()[tid], dict)
        )
        assert done == ITERATIONS

    def test_blocked_helper_defaults_false(self):
        sim, _model, _x0 = build_zoo_simulation(
            get_algorithm("hogwild"),
            _objective(),
            RoundRobinScheduler(),
            num_threads=2,
            step_size=0.05,
            iterations=4,
            seed=0,
        )
        # Lock-free programs never publish ``blocked``.
        assert AdaptiveAdversary.blocked(sim, 0) is False
        sim.run()
        assert AdaptiveAdversary.blocked(sim, 0) is False


class TestLivelockRegression:
    """Phase-parking adversaries vs the spinlock: before waiters published
    ``blocked``, contention-max and stale-attack spun them forever."""

    @pytest.mark.parametrize("adversary", ["contention-max", "stale-attack"])
    def test_locked_completes_under_parking_adversaries(self, adversary):
        result = _run("locked", build_scheduler(adversary, seed=9))
        assert len(result.records) == ITERATIONS

    def test_round_robin_schedule_unchanged_for_lock_free(self):
        # The blocked-awareness must not perturb lock-free variants:
        # contention-max picks the same schedule it always did (no
        # ``blocked`` annotations exist to filter on).
        from repro.durable.checkpoint import state_digest

        digests = []
        for _ in range(2):
            sim, _model, _x0 = build_zoo_simulation(
                get_algorithm("hogwild"),
                _objective(),
                build_scheduler("contention-max"),
                num_threads=THREADS,
                step_size=0.05,
                iterations=20,
                x0=np.full(2, 2.0),
                seed=2,
            )
            sim.run()
            digests.append(state_digest(sim))
        assert digests[0] == digests[1]
