"""Tests for the verification tier (DESIGN.md §16).

Covers the independence relation, the sleep-set enumerator (coverage vs
the brute-force tree on tiny hand-rolled programs), the verify grid
engine (clean certificates, mutant counterexamples, replay determinism,
byte-identical parallel/journaled reports), the SMT lemma queries and
the report model.
"""

import itertools
import json

import pytest

from repro.durable.journal import RunJournal
from repro.errors import ConfigurationError
from repro.runtime.program import FunctionProgram
from repro.runtime.simulator import Simulator
from repro.shm.counter import AtomicCounter
from repro.shm.memory import SharedMemory
from repro.shm.ops import (
    CompareAndSwap,
    DoubleCompareSingleSwap,
    FetchAdd,
    Noop,
    Operation,
    Read,
    Write,
)
from repro.shm.register import AtomicRegister
from repro.verify import (
    SmtConfig,
    VerifyConfig,
    VerifyScope,
    check_lemma_6_4,
    check_theorem_5_1,
    enumerate_schedules,
    ops_conflict,
    run_smt_queries,
    run_verify,
    solver_available,
    verify_fingerprint,
    verify_variant_names,
)
from repro.verify.engine import _verify_worker, partial_verify_report
from repro.verify.enumerator import frontier_digest
from repro.verify.report import (
    Counterexample,
    VerifyCellOutcome,
    cell_passed,
    outcome_from_payload,
    outcome_to_payload,
)
from repro.verify.smt import _window_sums


class TestIndependence:
    def test_reads_commute(self):
        assert not ops_conflict(Read(0), Read(0))

    def test_write_conflicts_with_read_on_same_cell(self):
        assert ops_conflict(Write(3, 1.0), Read(3))
        assert ops_conflict(Read(3), Write(3, 1.0))

    def test_disjoint_addresses_commute(self):
        assert not ops_conflict(Write(0, 1.0), Write(1, 2.0))
        assert not ops_conflict(FetchAdd(0, 1.0), FetchAdd(1, 1.0))

    def test_fetch_adds_on_same_cell_conflict(self):
        # The returned pre-values swap with the order.
        assert ops_conflict(FetchAdd(2, 1.0), FetchAdd(2, 1.0))

    def test_cas_is_a_writer(self):
        assert ops_conflict(CompareAndSwap(1, 0.0, 2.0), Read(1))

    def test_dcss_guard_read_conflicts_with_guard_writer(self):
        dcss = DoubleCompareSingleSwap(
            address=2, expected=0.0, new=1.0, guard_address=0
        )
        assert ops_conflict(dcss, Write(0, 9.0))
        # But a plain read of the guard commutes with the DCSS.
        assert not ops_conflict(dcss, Read(0))

    def test_noop_commutes_with_everything_known(self):
        assert not ops_conflict(Noop(0), Write(0, 1.0))

    def test_unknown_opcode_conflicts_with_everything(self):
        class Mystery(Operation):
            pass

        assert ops_conflict(Mystery(0), Noop(5))
        assert ops_conflict(Noop(5), Mystery(0))


# ---------------------------------------------------------------------------
# Tiny factories for enumerator tests
# ---------------------------------------------------------------------------


def _writer_body(reg, values):
    def body(ctx, reg=reg, values=values):
        for v in values:
            yield reg.write_op(float(v))

    return body


def independent_factory(scheduler):
    """Two threads, two writes each, to disjoint registers."""
    memory = SharedMemory(record_log=True)
    sim = Simulator(memory, scheduler, seed=0)
    for tid in range(2):
        reg = AtomicRegister(memory, memory.allocate(1))
        sim.spawn(
            FunctionProgram(
                _writer_body(reg, [tid * 10, tid * 10 + 1]), name=f"w{tid}"
            )
        )
    return sim


def _racy_increment_body(counter):
    def body(ctx, counter=counter):
        seen = yield counter.read_count_op()
        yield counter.increment_op()
        return seen

    return body


def racy_factory(scheduler, record_log=True):
    """Two threads doing read-then-fetch&add on one shared counter."""
    memory = SharedMemory(record_log=record_log)
    sim = Simulator(memory, scheduler, seed=0)
    counter = AtomicCounter.allocate(memory)
    for tid in range(2):
        sim.spawn(FunctionProgram(_racy_increment_body(counter), name=f"r{tid}"))
    return sim


def contending_factory(scheduler):
    """Two threads, one fetch&add each, same counter — two distinct traces."""
    memory = SharedMemory(record_log=True)
    sim = Simulator(memory, scheduler, seed=0)
    counter = AtomicCounter.allocate(memory)

    def one_increment(ctx, counter=counter):
        return (yield counter.increment_op())

    for tid in range(2):
        sim.spawn(FunctionProgram(one_increment, name=f"c{tid}"))
    return sim


class TestEnumerator:
    def test_independent_ops_collapse_to_one_schedule(self):
        por = enumerate_schedules(independent_factory, max_steps=8)
        full = enumerate_schedules(independent_factory, max_steps=8, por=False)
        # 4 steps, 2 per thread: C(4,2) = 6 interleavings, 1 trace.
        assert full.stats.schedules == 6
        assert por.stats.schedules == 1
        assert por.stats.sleep_skips > 0
        assert por.exhaustive and full.exhaustive

    def test_conflicting_ops_keep_both_orders(self):
        por = enumerate_schedules(contending_factory, max_steps=8, collect=True)
        full = enumerate_schedules(
            contending_factory, max_steps=8, por=False, collect=True
        )
        # One conflicting step each: both orders are distinct traces.
        assert full.stats.schedules == 2
        assert por.stats.schedules == 2
        assert por.schedules == full.schedules == ((0, 1), (1, 0))

    def test_por_covers_every_terminal_state(self):
        """The reduction keeps >= 1 representative per trace, so the set
        of reachable terminal states is exactly the full tree's."""

        def digests(por):
            seen = set()
            enumerate_schedules(
                racy_factory,
                max_steps=8,
                por=por,
                on_schedule=lambda sim, s: seen.add(sim.state_digest()),
            )
            return seen

        por, full = digests(True), digests(False)
        assert por == full
        reduced = enumerate_schedules(racy_factory, max_steps=8)
        unreduced = enumerate_schedules(racy_factory, max_steps=8, por=False)
        assert reduced.stats.schedules < unreduced.stats.schedules

    def test_collect_matches_schedule_count_and_replays(self):
        result = enumerate_schedules(racy_factory, max_steps=8, collect=True)
        assert result.schedules is not None
        assert len(result.schedules) == result.stats.schedules
        # Every collected schedule is a complete run of 4 steps.
        assert all(len(s) == 4 for s in result.schedules)
        assert result.stats.replays == result.stats.nodes

    def test_budget_hits_void_exhaustiveness(self):
        truncated = []
        result = enumerate_schedules(
            racy_factory,
            max_steps=2,
            on_budget=lambda sim, prefix: truncated.append(prefix),
        )
        assert result.stats.budget_hits > 0
        assert not result.exhaustive
        assert truncated and all(len(p) == 2 for p in truncated)

    def test_max_nodes_cap_raises(self):
        with pytest.raises(ConfigurationError):
            enumerate_schedules(racy_factory, max_steps=8, max_nodes=3)

    def test_bad_scope_arguments_raise(self):
        with pytest.raises(ConfigurationError):
            enumerate_schedules(racy_factory, max_steps=0)
        with pytest.raises(ConfigurationError):
            enumerate_schedules(racy_factory, max_steps=4, max_nodes=0)

    def test_memoization_preserves_terminal_digests(self):
        plain, memo = set(), set()
        base = enumerate_schedules(
            racy_factory,
            max_steps=8,
            por=False,
            on_schedule=lambda sim, s: plain.add(sim.state_digest()),
        )
        memod = enumerate_schedules(
            racy_factory,
            max_steps=8,
            por=False,
            memoize=True,
            on_schedule=lambda sim, s: memo.add(sim.state_digest()),
        )
        assert memod.stats.memo_skips > 0
        assert memod.stats.schedules <= base.stats.schedules
        assert memo <= plain

    def test_frontier_digest_requires_operation_log(self):
        def silent_factory(scheduler):
            return racy_factory(scheduler, record_log=False)

        with pytest.raises(ConfigurationError):
            enumerate_schedules(silent_factory, max_steps=8, memoize=True)

    def test_frontier_digest_separates_histories(self):
        from repro.sched.sequential import SequentialScheduler

        a = racy_factory(SequentialScheduler())
        b = racy_factory(SequentialScheduler())
        a.step()
        b.step()
        assert frontier_digest(a) == frontier_digest(b)
        b.step()
        assert frontier_digest(a) != frontier_digest(b)


SMALL_SCOPE = VerifyScope(threads=2, iterations=1)


class TestVerifyEngine:
    def test_clean_variant_certifies_universally(self):
        config = VerifyConfig(variants=("epoch-sgd",), scope=SMALL_SCOPE)
        outcome = _verify_worker(config, "epoch-sgd", 1)
        assert outcome.expectation == "clean"
        assert outcome.counterexample_count == 0
        assert outcome.budget_hits == 0
        assert outcome.schedules > 0
        # The acceptance floor: POR prunes at least 2x of the full tree.
        assert outcome.reduction_factor >= 2.0
        assert all(
            status in ("holds", "n/a") for _lemma, status in outcome.certificates
        )
        assert cell_passed(outcome)

    def test_torn_counter_mutant_yields_replayable_counterexample(self):
        config = VerifyConfig(
            variants=("mutant-torn-counter",), scope=SMALL_SCOPE
        )
        outcome = _verify_worker(config, "mutant-torn-counter", 1)
        assert outcome.expectation == "mutant"
        assert outcome.counterexample_count >= 1
        assert outcome.counterexamples
        # Deterministic replay through PrefixReplayScheduler reproduced
        # identical findings and final state digest on every kept one.
        assert all(cx.replay_ok for cx in outcome.counterexamples)
        # Oracle agreement: the sanitizer flags the enumerated schedule.
        assert outcome.sanitizer_agreement
        # The torn claim duplicates iteration indices: Lemma 6.1 breaks.
        statuses = dict(outcome.certificates)
        assert statuses["6.1"].startswith("violated:")
        assert cell_passed(outcome)

    def test_lost_update_mutant_is_flagged_by_sanitizer(self):
        config = VerifyConfig(
            variants=("mutant-lost-update",),
            scope=SMALL_SCOPE,
            measure_full_tree=False,
        )
        outcome = _verify_worker(config, "mutant-lost-update", 1)
        # The spec forces two iterations so the race can exist.
        assert outcome.iterations == 2
        assert outcome.counterexample_count >= 1
        assert any(
            "lost update" in line
            for cx in outcome.counterexamples
            for line in cx.findings
        )
        assert cell_passed(outcome)

    def test_reports_are_byte_identical_across_jobs(self):
        def config(jobs):
            return VerifyConfig(
                variants=("epoch-sgd", "mutant-torn-counter"),
                scope=SMALL_SCOPE,
                measure_full_tree=False,
                jobs=jobs,
            )

        serial = run_verify(config(1)).to_json()
        parallel = run_verify(config(2)).to_json()
        assert serial == parallel

    def test_journal_resume_is_byte_identical(self, tmp_path):
        config = VerifyConfig(
            variants=("epoch-sgd",), scope=SMALL_SCOPE, measure_full_tree=False
        )
        path = tmp_path / "verify.journal"
        fingerprint = verify_fingerprint(config)
        journal = RunJournal.open(path, fingerprint)
        first = run_verify(config, journal=journal).to_json()
        journal.close()
        resumed = RunJournal.open(path, fingerprint, resume=True)
        second = run_verify(config, journal=resumed).to_json()
        resumed.close()
        assert first == second == run_verify(config).to_json()

    def test_partial_report_covers_only_journaled_cells(self, tmp_path):
        small = VerifyConfig(
            variants=("epoch-sgd",), scope=SMALL_SCOPE, measure_full_tree=False
        )
        path = tmp_path / "verify.journal"
        journal = RunJournal.open(path, verify_fingerprint(small))
        run_verify(small, journal=journal)
        wider = VerifyConfig(
            variants=("epoch-sgd", "mutant-torn-counter"),
            scope=SMALL_SCOPE,
            measure_full_tree=False,
        )
        partial = partial_verify_report(wider, journal)
        journal.close()
        assert [o.variant for o in partial.outcomes] == ["epoch-sgd"]

    def test_outcome_payload_round_trips_through_json(self):
        config = VerifyConfig(
            variants=("mutant-torn-counter",),
            scope=SMALL_SCOPE,
            measure_full_tree=False,
        )
        outcome = _verify_worker(config, "mutant-torn-counter", 1)
        payload = json.loads(json.dumps(outcome_to_payload(outcome)))
        assert outcome_from_payload(payload) == outcome

    def test_fingerprint_ignores_jobs_but_not_scope(self):
        base = VerifyConfig(variants=("epoch-sgd",))
        assert verify_fingerprint(base) == verify_fingerprint(
            VerifyConfig(variants=("epoch-sgd",), jobs=4)
        )
        assert verify_fingerprint(base) != verify_fingerprint(
            VerifyConfig(variants=("epoch-sgd",), scope=VerifyScope(threads=3))
        )

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            VerifyConfig(variants=())
        with pytest.raises(ConfigurationError):
            VerifyConfig(variants=("no-such-variant",))
        with pytest.raises(ConfigurationError):
            VerifyConfig(seeds=())
        with pytest.raises(ConfigurationError):
            VerifyConfig(max_counterexamples=0)
        with pytest.raises(ConfigurationError):
            VerifyScope(threads=0)
        with pytest.raises(ConfigurationError):
            VerifyScope(iterations=0)
        with pytest.raises(ConfigurationError):
            VerifyScope(step_size=0.0)
        with pytest.raises(ConfigurationError):
            VerifyScope(max_steps=0)

    def test_variant_names_union_mutants_and_algorithms(self):
        names = verify_variant_names()
        assert "epoch-sgd" in names
        assert "mutant-torn-counter" in names
        assert "mutant-lost-update" in names
        assert names == tuple(sorted(names))


class TestSmt:
    def test_lemma_6_4_proved_across_default_grid(self):
        for n, tau in itertools.product(range(1, 4), range(1, 5)):
            result = check_lemma_6_4(n, tau, horizon=8, engine="finite")
            assert result.proved, str(result)

    def test_lemma_6_4_refuted_outside_envelope_regime(self):
        # tau_max > 4n: the envelope bound S <= tau_max exceeds
        # 2*sqrt(tau_max*n), and the extremal sequence realizes it.
        result = check_lemma_6_4(1, 8, horizon=16, engine="finite")
        assert result.status == "refuted"
        assert "extremal" in result.detail

    def test_extremal_sequence_dominates_brute_force(self):
        """The finite engine's one-shot decision: the componentwise-max
        delay sequence attains the max window sum over ALL feasible
        sequences (monotonicity), checked here by brute force."""
        tau_max, horizon = 2, 5
        envelopes = [range(1, min(t, tau_max) + 1) for t in range(1, horizon + 1)]
        brute = max(
            max(_window_sums(list(delays), tau_max), default=0)
            for delays in itertools.product(*envelopes)
        )
        extremal = [min(t, tau_max) for t in range(1, horizon + 1)]
        assert max(_window_sums(extremal, tau_max), default=0) == brute

    def test_theorem_5_1_progress_floor(self):
        for alpha in ("1/10", "1/5", "1/3"):
            result = check_theorem_5_1(alpha, engine="finite")
            assert result.proved, str(result)

    def test_z3_engine_skips_gracefully_when_missing(self):
        result = check_lemma_6_4(2, 2, horizon=8, engine="z3")
        if solver_available():
            assert result.proved
        else:
            assert result.status == "skipped"
            assert "z3" in result.detail

    def test_default_query_grid_all_decided(self):
        results = run_smt_queries(SmtConfig())
        # 3 x 4 Lemma 6.4 points + 2 Theorem 5.1 alphas.
        assert len(results) == 14
        assert all(r.status == "proved" for r in results)
        engines = {r.engine for r in results}
        assert engines <= {"z3", "finite"}

    def test_bad_parameters_raise(self):
        with pytest.raises(ConfigurationError):
            check_lemma_6_4(0, 1, 8)
        with pytest.raises(ConfigurationError):
            check_theorem_5_1("3/2")
        with pytest.raises(ConfigurationError):
            SmtConfig(engine="prolog")
        with pytest.raises(ConfigurationError):
            SmtConfig(alphas=("2",))
        with pytest.raises(ConfigurationError):
            SmtConfig(max_n=0)


def _outcome(**overrides):
    base = dict(
        variant="epoch-sgd",
        seed=1,
        expectation="clean",
        threads=2,
        iterations=1,
        max_steps=48,
        schedules=4,
        interleavings=12,
        nodes=9,
        sleep_skips=2,
        memo_skips=0,
        budget_hits=0,
        reduction_factor=3.0,
        counterexample_count=0,
        counterexamples=(),
        sanitizer_agreement=True,
        certificates=(("6.1", "holds"), ("6.2", "n/a"), ("6.4", "holds")),
    )
    base.update(overrides)
    return VerifyCellOutcome(**base)


class TestReportModel:
    def test_clean_cell_passes_and_violation_fails(self):
        assert cell_passed(_outcome())
        assert not cell_passed(
            _outcome(
                counterexample_count=2,
                certificates=(("6.1", "violated:2"),),
            )
        )

    def test_budget_hit_always_fails(self):
        assert not cell_passed(_outcome(budget_hits=1))

    def test_mutant_needs_replayable_flagged_counterexample(self):
        cx = Counterexample(
            schedule=(0, 1, 0), findings=("[race-staleness @ t=1] RS001",),
            replay_ok=True,
        )
        good = _outcome(
            variant="mutant-torn-counter",
            expectation="mutant",
            counterexample_count=1,
            counterexamples=(cx,),
        )
        assert cell_passed(good)
        assert not cell_passed(
            _outcome(expectation="mutant", counterexample_count=0)
        )
        diverged = Counterexample(
            schedule=(0, 1, 0), findings=cx.findings, replay_ok=False
        )
        assert not cell_passed(
            _outcome(
                expectation="mutant",
                counterexample_count=1,
                counterexamples=(diverged,),
            )
        )
        assert not cell_passed(
            _outcome(
                expectation="mutant",
                counterexample_count=1,
                counterexamples=(cx,),
                sanitizer_agreement=False,
            )
        )

    def test_report_json_is_deterministic_and_newline_terminated(self):
        from repro.verify.report import VerifyReport

        report = VerifyReport(outcomes=[_outcome()], smt_results=[])
        first, second = report.to_json(), report.to_json()
        assert first == second
        assert first.endswith("\n")
        payload = json.loads(first)
        assert payload["passed"] is True
        assert "verdict: PASS" in report.render()

    def test_report_write_rejects_unknown_format(self, tmp_path):
        from repro.verify.report import VerifyReport

        report = VerifyReport(outcomes=[], smt_results=[])
        with pytest.raises(ConfigurationError):
            report.write(str(tmp_path / "r.xml"), fmt="xml")


class TestE15AndCli:
    def test_e15_quick_grid_passes(self):
        from repro.experiments import e15_verify

        result = e15_verify.run(
            e15_verify.E15Config(
                variants=["epoch-sgd", "mutant-torn-counter"]
            )
        )
        assert result.experiment_id == "E15"
        assert result.passed
        assert "por_schedules" in result.series
        assert len(result.series["full_interleavings"]) == 2

    def test_cli_verify_writes_artifacts(self, capsys, tmp_path):
        from repro.cli import main

        code = main(
            [
                "verify",
                "--variants",
                "epoch-sgd,mutant-torn-counter",
                "--no-full-tree",
                "--out",
                str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict: PASS" in out
        assert (tmp_path / "verify_report.json").exists()
        assert (tmp_path / "verify_report.txt").exists()

    def test_cli_verify_rejects_unknown_variant(self):
        from repro.cli import main

        assert main(["verify", "--variants", "nope"]) == 2
