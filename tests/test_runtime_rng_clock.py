"""Unit tests for RngStream and Clock."""

import numpy as np

from repro.runtime.clock import Clock
from repro.runtime.rng import RngStream, spawn_streams


class TestRngStream:
    def test_same_seed_same_draws(self):
        a = RngStream.root(42)
        b = RngStream.root(42)
        assert a.normal() == b.normal()
        assert a.integers(0, 100) == b.integers(0, 100)

    def test_different_seeds_differ(self):
        draws_a = RngStream.root(1).normal(size=8)
        draws_b = RngStream.root(2).normal(size=8)
        assert not np.allclose(draws_a, draws_b)

    def test_spawn_children_are_independent_and_deterministic(self):
        first = [s.normal() for s in RngStream.root(7).spawn(3)]
        second = [s.normal() for s in RngStream.root(7).spawn(3)]
        assert first == second
        assert len(set(first)) == 3  # children differ from each other

    def test_spawn_one(self):
        child = RngStream.root(3).spawn_one()
        assert isinstance(child, RngStream)

    def test_spawn_streams_helper(self):
        streams = spawn_streams(5, 4)
        assert len(streams) == 4

    def test_choice_and_weights(self):
        stream = RngStream.root(0)
        options = ["a", "b", "c"]
        picks = {stream.choice(options) for _ in range(50)}
        assert picks <= set(options)
        assert len(picks) > 1

    def test_choice_with_p(self):
        stream = RngStream.root(0)
        picks = {stream.choice(["a", "b"], p=[1.0, 0.0]) for _ in range(10)}
        assert picks == {"a"}

    def test_uniform_bounds(self):
        stream = RngStream.root(1)
        draws = stream.uniform(2.0, 3.0, size=100)
        assert np.all(draws >= 2.0) and np.all(draws < 3.0)

    def test_shuffle_in_place(self):
        stream = RngStream.root(9)
        items = list(range(20))
        stream.shuffle(items)
        assert sorted(items) == list(range(20))


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0

    def test_tick_returns_pre_increment(self):
        clock = Clock()
        assert clock.tick() == 0
        assert clock.tick() == 1
        assert clock.now == 2

    def test_custom_start(self):
        clock = Clock(start=10)
        assert clock.tick() == 10
