"""Causal-tracing tests (DESIGN.md §18): deterministic ids, the
per-process spill recorder, the flight-recorder ring, the two-mode
stitcher, and the headline determinism guarantees — the logical stitch
of an ensemble is byte-identical across ``--jobs`` values and across a
kill + journal-resume of the same run."""

import itertools
import json

import pytest

from repro.durable.journal import RunJournal
from repro.experiments.ensemble import run_ensemble
from repro.obs.causal import (
    SPILL_SUFFIX,
    CausalRecorder,
    FlightRecorder,
    TraceContext,
    find_spills,
    flight_note,
    get_causal_recorder,
    install_causal_recorder,
    install_flight_recorder,
    mint_trace_id,
    read_spill,
    span_id,
    stitch_records,
    stitch_spills,
    write_stitched_trace,
)
from repro.obs.spans import trace_span


def _square(seed: int) -> int:
    """Module-level (hence picklable) ensemble worker."""
    return seed * seed


def _counter_clock():
    counter = itertools.count(1)
    return lambda: float(next(counter))


class TestIds:
    def test_span_id_pure_function(self):
        a = span_id("t1", "serve.request", "")
        assert a == span_id("t1", "serve.request", "")
        assert len(a) == 16
        assert a != span_id("t1", "serve.request", "k")
        assert a != span_id("t2", "serve.request", "")
        assert a != span_id("t1", "serve.admission", "")

    def test_mint_trace_id_from_fingerprint(self):
        tid = mint_trace_id("fp-abc")
        assert tid == mint_trace_id("fp-abc")
        assert tid != mint_trace_id("fp-abd")
        assert len(tid) == 16
        assert all(c in "0123456789abcdef" for c in tid)


class TestTraceContext:
    def test_payload_round_trip(self):
        ctx = TraceContext(
            "aa" * 8, role="worker", attempt=2,
            parent_id="bb" * 8, spill="/tmp/s.jsonl", flight="/tmp/f.json",
        )
        back = TraceContext.from_payload(ctx.to_payload())
        assert back.trace_id == ctx.trace_id
        assert back.role == "worker"
        assert back.attempt == 2
        assert back.parent_id == ctx.parent_id
        assert back.spill == ctx.spill
        assert back.flight == ctx.flight

    def test_from_payload_requires_trace(self):
        assert TraceContext.from_payload(None) is None
        assert TraceContext.from_payload({}) is None
        assert TraceContext.from_payload({"trace": ""}) is None

    def test_env_round_trip_and_garbage(self):
        ctx = TraceContext("cc" * 8, attempt=1)
        env = ctx.to_env({})
        back = TraceContext.from_env(env)
        assert back.trace_id == ctx.trace_id and back.attempt == 1
        assert TraceContext.from_env({}) is None
        assert TraceContext.from_env(
            {"REPRO_TRACE_CONTEXT": "not json"}
        ) is None


class TestCausalRecorder:
    def test_records_are_sorted_key_jsonl(self, tmp_path):
        path = tmp_path / f"a{SPILL_SUFFIX}"
        rec = CausalRecorder(path, role="server", trace_id="t1")
        sid = rec.record("serve.request", method="POST", job="job-1")
        rec.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert lines[0] == json.dumps(json.loads(lines[0]), sort_keys=True)
        record = json.loads(lines[0])
        assert record["span"] == sid == span_id("t1", "serve.request", "")
        assert record["args"] == {"job": "job-1", "method": "POST"}
        # No clock -> no wall-clock fields at all (deterministic spill).
        assert "t0" not in record and "t1" not in record

    def test_clock_adds_wall_fields(self, tmp_path):
        rec = CausalRecorder(
            tmp_path / f"a{SPILL_SUFFIX}", role="w",
            trace_id="t1", clock=_counter_clock(),
        )
        with rec.span("worker.run", key="attempt-1"):
            rec.event("ensemble.seed", key="ns|3", det=True, seed=3)
        rec.close()
        records = read_spill(rec.path)
        by_name = {r["name"]: r for r in records}
        seed = by_name["ensemble.seed"]
        run = by_name["worker.run"]
        assert seed["t0"] == seed["t1"] == 2.0
        assert run["t0"] == 1.0 and run["t1"] == 3.0
        # The event's parent is the enclosing span's deterministic id.
        assert seed["parent"] == span_id("t1", "worker.run", "attempt-1")
        assert seed["det"] is True and run["det"] is False

    def test_no_trace_id_is_a_noop(self, tmp_path):
        rec = CausalRecorder(tmp_path / f"a{SPILL_SUFFIX}", role="w")
        assert rec.record("serve.request") is None
        with rec.span("worker.run") as sid:
            assert sid is None
        assert rec.event("ensemble.seed") is None
        assert not rec.path.exists()

    def test_auto_keys_disambiguate_repeats(self, tmp_path):
        rec = CausalRecorder(
            tmp_path / f"a{SPILL_SUFFIX}", role="w",
            trace_id="t1", attempt=2,
        )
        with rec.span("campaign.spec"):
            pass
        with rec.span("campaign.spec"):
            pass
        rec.close()
        keys = [r["key"] for r in read_spill(rec.path)]
        assert keys == ["a2.0", "a2.1"]

    def test_read_spill_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / f"a{SPILL_SUFFIX}"
        rec = CausalRecorder(path, role="w", trace_id="t1")
        rec.record("serve.request")
        rec.record("serve.admission")
        rec.close()
        # Simulate the SIGKILL torn final line.
        with open(path, "a") as handle:
            handle.write('{"trace": "t1", "span": "dead')
        records = read_spill(path)
        assert [r["name"] for r in records] == [
            "serve.request", "serve.admission",
        ]
        assert read_spill(tmp_path / "absent.jsonl") == []

    def test_trace_span_bridge_feeds_causal(self, tmp_path):
        rec = CausalRecorder(
            tmp_path / f"a{SPILL_SUFFIX}", role="worker", trace_id="t1"
        )
        install_causal_recorder(rec)
        try:
            assert get_causal_recorder() is rec
            with trace_span("campaign.spec", spec="prob-crash"):
                pass
        finally:
            install_causal_recorder(None)
            rec.close()
        records = read_spill(rec.path)
        assert records[0]["name"] == "campaign.spec"
        assert records[0]["args"] == {"spec": "prob-crash"}


class TestFlightRecorder:
    def test_ring_is_bounded_and_counts_drops(self):
        flight = FlightRecorder(capacity=4)
        for index in range(10):
            flight.record("health", "serve.attempt", attempt=index)
        snap = flight.snapshot()
        assert snap["recorded_total"] == 10
        assert snap["dropped"] == 6
        assert [e["args"]["attempt"] for e in snap["events"]] == [6, 7, 8, 9]

    def test_dump_separates_events_from_weather(self, tmp_path):
        flight = FlightRecorder(capacity=8, context={"trace": "t1"})
        flight.record("health", "worker.start", attempt=1)
        flight.record("span", "worker.run", volatile=True, key="attempt-1")
        payload = flight.dump(tmp_path / "flight.json", reason="crash")
        assert payload["reason"] == "crash"
        assert [e["name"] for e in payload["events"]] == ["worker.start"]
        assert [e["name"] for e in payload["weather"]] == ["worker.run"]
        assert all("volatile" not in e for e in payload["weather"])
        on_disk = json.loads((tmp_path / "flight.json").read_text())
        assert on_disk == payload

    def test_flight_note_targets_installed_recorder(self):
        flight_note("health", "serve.retry")  # no-op without a recorder
        flight = FlightRecorder(capacity=2)
        install_flight_recorder(flight)
        try:
            flight_note("health", "serve.retry", attempt=1)
        finally:
            install_flight_recorder(None)
        assert flight.snapshot()["events"][0]["name"] == "serve.retry"


class TestStitcher:
    def _spills(self, tmp_path):
        tid = "t1"
        server = CausalRecorder(
            tmp_path / f"server{SPILL_SUFFIX}", role="server",
            trace_id=tid, clock=_counter_clock(),
        )
        request = server.record(
            "serve.request", t0=1.0, t1=2.0, method="POST"
        )
        server.record(
            "serve.attempt", key="attempt-1",
            flow=request, t0=2.0, t1=9.0,
        )
        server.close()
        worker = CausalRecorder(
            tmp_path / f"worker{SPILL_SUFFIX}", role="worker",
            trace_id=tid, attempt=1,
        )
        worker.record(
            "worker.run", key="attempt-1",
            flow=span_id(tid, "serve.attempt", "attempt-1"),
            t0=3.0, t1=8.0,
        )
        worker.record("ensemble.seed", key="ns|1", det=True, seed=1)
        worker.close()
        return tid

    def test_wall_mode_lanes_and_flows(self, tmp_path):
        tid = self._spills(tmp_path)
        spills = find_spills(tmp_path)
        assert [p.name.endswith(SPILL_SUFFIX) for p in spills] == [True, True]
        payload = stitch_spills(spills, mode="wall", trace_id=tid)
        events = payload["traceEvents"]
        lanes = [e["args"]["name"] for e in events if e["ph"] == "M"]
        assert lanes == ["server", "worker attempt 1"]
        # Cross-process flow: an s/f pair whose id is the dest span id
        # links serve.attempt (server lane) to worker.run (worker lane).
        run_id = span_id(tid, "worker.run", "attempt-1")
        sources = [e for e in events if e["ph"] == "s" and e["id"] == run_id]
        finishes = [e for e in events if e["ph"] == "f" and e["id"] == run_id]
        assert len(sources) == 1 and len(finishes) == 1
        assert sources[0]["pid"] != finishes[0]["pid"]
        assert finishes[0]["bp"] == "e"
        # Timestamps are microseconds relative to the earliest record.
        request = next(e for e in events if e["name"] == "serve.request")
        assert request["ts"] == 0.0 and request["dur"] == 1e6

    def test_wall_mode_filters_foreign_traces(self, tmp_path):
        tid = self._spills(tmp_path)
        other = CausalRecorder(
            tmp_path / f"other{SPILL_SUFFIX}", role="server", trace_id="t2"
        )
        other.record("serve.request")
        other.close()
        payload = stitch_spills(find_spills(tmp_path), trace_id=tid)
        names = {e["name"] for e in payload["traceEvents"]}
        assert "serve.request" in names
        spans = {
            e["args"]["span"]
            for e in payload["traceEvents"]
            if e["ph"] == "X"
        }
        assert span_id("t2", "serve.request", "") not in spans

    def test_logical_mode_keeps_only_det_and_dedupes(self, tmp_path):
        tid = self._spills(tmp_path)
        records = [r for p in find_spills(tmp_path) for r in read_spill(p)]
        # A resumed attempt re-emits the same seed record: must collapse.
        records = records + [r for r in records if r["name"] == "ensemble.seed"]
        payload = stitch_records(records, mode="logical", trace_id=tid)
        events = payload["traceEvents"]
        assert [e["name"] for e in events] == ["ensemble.seed"]
        assert events[0]["ts"] == 0 and events[0]["dur"] == 1
        assert events[0]["args"]["seed"] == 1

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            stitch_records([], mode="sideways")


def _logical_bytes(tmp_path, name, run):
    """Run ``run(recorder)`` with an installed recorder, stitch the
    spill logically, and return the written bytes."""
    spill = tmp_path / f"{name}{SPILL_SUFFIX}"
    rec = CausalRecorder(spill, role="worker", trace_id="t1")
    install_causal_recorder(rec)
    try:
        run()
    finally:
        install_causal_recorder(None)
        rec.close()
    out = tmp_path / f"{name}.trace.json"
    write_stitched_trace(out, stitch_spills([spill], mode="logical"))
    return out.read_bytes()


class TestLogicalDeterminism:
    """Satellite: the logical stitch is byte-identical across --jobs
    values and across a kill + journal-resume of the same ensemble."""

    def test_jobs_1_vs_4_byte_identical(self, tmp_path):
        seeds = list(range(30, 43))
        serial = _logical_bytes(
            tmp_path, "serial",
            lambda: run_ensemble(_square, seeds, jobs=1),
        )
        pooled = _logical_bytes(
            tmp_path, "pooled",
            lambda: run_ensemble(_square, seeds, jobs=4),
        )
        assert serial == pooled
        assert json.loads(serial)["traceEvents"]  # non-vacuous

    def test_kill_plus_resume_byte_identical(self, tmp_path):
        seeds = list(range(8))
        fingerprint = "fp-ensemble"
        uninterrupted = _logical_bytes(
            tmp_path, "clean",
            lambda: run_ensemble(_square, seeds, jobs=1),
        )
        # "First attempt": journal half the seeds, then die (close).
        journal_path = tmp_path / "run.journal"
        first = RunJournal.open(journal_path, fingerprint)
        partial = _logical_bytes(
            tmp_path, "partial",
            lambda: run_ensemble(
                _square, seeds[:4], jobs=1, journal=first, namespace="ns"
            ),
        )
        first.close()
        assert partial != uninterrupted
        # "Second attempt": resume — restored seeds re-emit their causal
        # records, so the stitched logical trace is whole again.
        resumed_journal = RunJournal.open(
            journal_path, fingerprint, resume=True
        )
        resumed = _logical_bytes(
            tmp_path, "resumed",
            lambda: run_ensemble(
                _square, seeds, jobs=1,
                journal=resumed_journal, namespace="ns",
            ),
        )
        resumed_journal.close()
        # Namespaced keys differ from the un-journaled run's empty
        # namespace, so compare against a namespaced clean run instead.
        clean_journal = RunJournal.open(tmp_path / "clean.journal", fingerprint)
        clean = _logical_bytes(
            tmp_path, "clean-ns",
            lambda: run_ensemble(
                _square, seeds, jobs=1,
                journal=clean_journal, namespace="ns",
            ),
        )
        clean_journal.close()
        assert resumed == clean
