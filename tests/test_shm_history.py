"""Unit tests for the history/consistency checkers."""

import pytest

from repro.errors import HistoryViolationError
from repro.shm.history import (
    check_fetch_add_totals,
    check_log_replay,
    check_read_coherence,
    thread_operation_counts,
)
from repro.shm.memory import LogRecord, SharedMemory
from repro.shm.ops import CompareAndSwap, FetchAdd, Read, Write


def _run_program(memory: SharedMemory):
    base = memory.allocate(2)
    memory.execute(FetchAdd(base, 3.0), thread_id=0)
    memory.execute(Read(base), thread_id=1)
    memory.execute(Write(base + 1, 5.0), thread_id=1)
    memory.execute(CompareAndSwap(base + 1, 5.0, 6.0), thread_id=0)
    memory.execute(FetchAdd(base, -1.0), thread_id=2)
    memory.execute(Read(base + 1), thread_id=2)
    return base


class TestReplay:
    def test_valid_log_replays_clean(self, memory):
        base = _run_program(memory)
        final = check_log_replay(memory.log, {}, memory.size)
        assert final[base] == 2.0
        assert final[base + 1] == 6.0

    def test_corrupted_read_result_detected(self, memory):
        _run_program(memory)
        bad = memory.log[1]
        memory.log[1] = LogRecord(
            seq=bad.seq, time=bad.time, thread_id=bad.thread_id, op=bad.op,
            result=999.0,
        )
        with pytest.raises(HistoryViolationError):
            check_log_replay(memory.log, {}, memory.size)

    def test_corrupted_faa_result_detected(self, memory):
        _run_program(memory)
        bad = memory.log[0]
        memory.log[0] = LogRecord(
            seq=bad.seq, time=bad.time, thread_id=bad.thread_id, op=bad.op,
            result=1.0,
        )
        with pytest.raises(HistoryViolationError):
            check_log_replay(memory.log, {}, memory.size)

    def test_corrupted_cas_result_detected(self, memory):
        _run_program(memory)
        index = next(
            i for i, r in enumerate(memory.log)
            if isinstance(r.op, CompareAndSwap)
        )
        bad = memory.log[index]
        memory.log[index] = LogRecord(
            seq=bad.seq, time=bad.time, thread_id=bad.thread_id, op=bad.op,
            result=not bad.result,
        )
        with pytest.raises(HistoryViolationError):
            check_log_replay(memory.log, {}, memory.size)

    def test_respects_nonzero_initial(self, memory):
        base = memory.allocate(1, initial=4.0)
        memory.execute(Read(base))
        check_log_replay(memory.log, {base: 4.0}, memory.size)
        with pytest.raises(HistoryViolationError):
            check_log_replay(memory.log, {base: 0.0}, memory.size)


class TestReadCoherence:
    def test_coherent_log_passes(self, memory):
        _run_program(memory)
        check_read_coherence(memory.log)

    def test_stale_read_detected(self, memory):
        base = memory.allocate(1)
        memory.execute(Write(base, 1.0))
        memory.execute(Read(base))
        bad = memory.log[1]
        memory.log[1] = LogRecord(
            seq=bad.seq, time=bad.time, thread_id=bad.thread_id, op=bad.op,
            result=0.0,
        )
        with pytest.raises(HistoryViolationError):
            check_read_coherence(memory.log)


class TestFetchAddTotals:
    def test_totals_match(self, memory):
        base = memory.allocate(1)
        for delta in [1.0, 2.5, -0.5, 10.0]:
            memory.execute(FetchAdd(base, delta))
        check_fetch_add_totals(
            memory.log, [base], 0.0, {base: memory.peek(base)}
        )

    def test_lost_update_detected(self, memory):
        base = memory.allocate(1)
        memory.execute(FetchAdd(base, 1.0))
        memory.execute(FetchAdd(base, 1.0))
        with pytest.raises(HistoryViolationError):
            check_fetch_add_totals(memory.log, [base], 0.0, {base: 1.0})

    def test_overwritten_address_skipped(self, memory):
        base = memory.allocate(1)
        memory.execute(FetchAdd(base, 1.0))
        memory.execute(Write(base, 100.0))
        # Write resets the accounting; the checker must not flag it.
        check_fetch_add_totals(memory.log, [base], 0.0, {base: 100.0})


class TestThreadCounts:
    def test_counts_by_thread(self, memory):
        _run_program(memory)
        counts = thread_operation_counts(memory.log)
        assert counts == {0: 2, 1: 2, 2: 2}
