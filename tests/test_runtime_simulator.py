"""Unit tests for SimThread, Program protocol and the Simulator loop."""

import pytest

from repro.errors import (
    NoRunnableThreadError,
    ProgramError,
    SchedulerError,
    SimulationError,
    ThreadCrashedError,
)
from repro.runtime.events import SpawnEvent
from repro.runtime.program import FunctionProgram
from repro.runtime.simulator import Simulator
from repro.runtime.thread import ThreadState
from repro.sched.round_robin import RoundRobinScheduler
from repro.sched.sequential import SequentialScheduler
from repro.shm.counter import AtomicCounter
from repro.shm.memory import SharedMemory
from repro.shm.register import AtomicRegister


def make_sim(scheduler=None, seed=0):
    memory = SharedMemory()
    return memory, Simulator(memory, scheduler or RoundRobinScheduler(), seed=seed)


def incrementer(counter, rounds):
    def body(ctx):
        total = 0.0
        for _ in range(rounds):
            total += yield counter.increment_op()
        return total

    return FunctionProgram(body, name="incrementer")


class TestSpawnAndRun:
    def test_counter_sums_across_threads(self):
        memory, sim = make_sim()
        counter = AtomicCounter.allocate(memory)
        for _ in range(3):
            sim.spawn(incrementer(counter, 5))
        sim.run()
        assert counter.count == 15
        assert sim.now == 15
        assert sim.is_done

    def test_results_collects_return_values(self):
        memory, sim = make_sim(SequentialScheduler())
        counter = AtomicCounter.allocate(memory)
        sim.spawn(incrementer(counter, 3))
        sim.spawn(incrementer(counter, 2))
        sim.run()
        results = sim.results()
        # Sequential: thread 0 sees 0,1,2; thread 1 sees 3,4.
        assert results[0] == 3.0
        assert results[1] == 7.0

    def test_spawn_emits_event(self):
        _, sim = make_sim()
        memory = sim.memory
        counter = AtomicCounter.allocate(memory)
        sim.spawn(incrementer(counter, 1), name="worker")
        spawns = [e for e in sim.trace if isinstance(e, SpawnEvent)]
        assert len(spawns) == 1
        assert spawns[0].name == "worker"

    def test_program_finishing_without_yield(self):
        _, sim = make_sim()

        def body(ctx):
            return 42
            yield  # pragma: no cover - makes it a generator

        thread = sim.spawn(FunctionProgram(body))
        assert thread.state is ThreadState.FINISHED
        assert thread.result == 42
        assert sim.is_done

    def test_run_max_steps(self):
        memory, sim = make_sim()
        counter = AtomicCounter.allocate(memory)
        sim.spawn(incrementer(counter, 100))
        executed = sim.run(max_steps=10)
        assert executed == 10
        assert not sim.is_done

    def test_run_stop_predicate(self):
        memory, sim = make_sim()
        counter = AtomicCounter.allocate(memory)
        sim.spawn(incrementer(counter, 100))
        sim.run(stop=lambda s: s.now >= 7)
        assert sim.now == 7

    def test_step_on_finished_simulation_raises(self):
        _, sim = make_sim()
        with pytest.raises(NoRunnableThreadError):
            sim.step()

    def test_yielding_non_operation_raises(self):
        _, sim = make_sim()

        def body(ctx):
            yield "not an op"

        with pytest.raises(ProgramError):
            sim.spawn(FunctionProgram(body))


class TestCrash:
    def test_crashed_thread_takes_no_steps(self):
        memory, sim = make_sim()
        counter = AtomicCounter.allocate(memory)
        sim.spawn(incrementer(counter, 10))
        sim.spawn(incrementer(counter, 10))
        sim.crash(1)
        sim.run()
        assert counter.count == 10
        assert sim.threads[1].state is ThreadState.CRASHED

    def test_crash_budget_is_n_minus_1(self):
        memory, sim = make_sim()
        counter = AtomicCounter.allocate(memory)
        sim.spawn(incrementer(counter, 1))
        sim.spawn(incrementer(counter, 1))
        sim.crash(0)
        with pytest.raises(SimulationError):
            sim.crash(1)

    def test_crash_twice_rejected(self):
        memory, sim = make_sim()
        counter = AtomicCounter.allocate(memory)
        for _ in range(3):
            sim.spawn(incrementer(counter, 1))
        sim.crash(0)
        with pytest.raises(ThreadCrashedError):
            sim.crash(0)


class TestSchedulerContract:
    def test_bad_scheduler_choice_detected(self):
        class BadScheduler:
            def select(self, sim):
                return 99

        memory = SharedMemory()
        sim = Simulator(memory, BadScheduler())
        counter = AtomicCounter.allocate(memory)
        sim.spawn(incrementer(counter, 1))
        with pytest.raises(SchedulerError):
            sim.step()

    def test_scheduler_picking_finished_thread_detected(self):
        class StubbornScheduler:
            def select(self, sim):
                return 0

        memory = SharedMemory()
        sim = Simulator(memory, StubbornScheduler())
        counter = AtomicCounter.allocate(memory)
        sim.spawn(incrementer(counter, 1))
        sim.spawn(incrementer(counter, 1))
        sim.step()  # thread 0 finishes (single op program)
        with pytest.raises(SchedulerError):
            sim.step()


class TestAnnotations:
    def test_annotations_visible_to_simulator(self):
        _, sim = make_sim()
        memory = sim.memory
        reg = AtomicRegister(memory, memory.allocate(1))

        def body(ctx):
            ctx.annotate("stage", "before")
            yield reg.read_op()
            ctx.annotate("stage", "after")

        sim.spawn(FunctionProgram(body))
        assert sim.annotations(0)["stage"] == "before"
        sim.step()
        assert sim.annotations(0)["stage"] == "after"

    def test_record_steps(self):
        memory = SharedMemory()
        sim = Simulator(memory, RoundRobinScheduler(), record_steps=True)
        counter = AtomicCounter.allocate(memory)
        sim.spawn(incrementer(counter, 3))
        sim.run()
        assert len(sim.steps) == 3
        assert [s.time for s in sim.steps] == [0, 1, 2]

    def test_thread_rngs_differ(self):
        _, sim = make_sim()
        memory = sim.memory
        reg = AtomicRegister(memory, memory.allocate(1))
        draws = {}

        def body(ctx):
            draws[ctx.thread_id] = ctx.rng.normal()
            yield reg.read_op()

        sim.spawn(FunctionProgram(body))
        sim.spawn(FunctionProgram(body))
        sim.run()
        assert draws[0] != draws[1]
