"""Unit tests for SimThread, Program protocol and the Simulator loop."""

import pytest

from repro.errors import (
    NoRunnableThreadError,
    ProgramError,
    SchedulerError,
    SimulationError,
    ThreadCrashedError,
    ThreadFinishedError,
)
from repro.runtime.events import SpawnEvent
from repro.runtime.program import FunctionProgram
from repro.runtime.simulator import Simulator
from repro.runtime.thread import ThreadState
from repro.sched.round_robin import RoundRobinScheduler
from repro.sched.sequential import SequentialScheduler
from repro.shm.counter import AtomicCounter
from repro.shm.memory import SharedMemory
from repro.shm.register import AtomicRegister


def make_sim(scheduler=None, seed=0):
    memory = SharedMemory()
    return memory, Simulator(memory, scheduler or RoundRobinScheduler(), seed=seed)


def incrementer(counter, rounds):
    def body(ctx):
        total = 0.0
        for _ in range(rounds):
            total += yield counter.increment_op()
        return total

    return FunctionProgram(body, name="incrementer")


class TestSpawnAndRun:
    def test_counter_sums_across_threads(self):
        memory, sim = make_sim()
        counter = AtomicCounter.allocate(memory)
        for _ in range(3):
            sim.spawn(incrementer(counter, 5))
        sim.run()
        assert counter.count == 15
        assert sim.now == 15
        assert sim.is_done

    def test_results_collects_return_values(self):
        memory, sim = make_sim(SequentialScheduler())
        counter = AtomicCounter.allocate(memory)
        sim.spawn(incrementer(counter, 3))
        sim.spawn(incrementer(counter, 2))
        sim.run()
        results = sim.results()
        # Sequential: thread 0 sees 0,1,2; thread 1 sees 3,4.
        assert results[0] == 3.0
        assert results[1] == 7.0

    def test_spawn_emits_event(self):
        _, sim = make_sim()
        memory = sim.memory
        counter = AtomicCounter.allocate(memory)
        sim.spawn(incrementer(counter, 1), name="worker")
        spawns = [e for e in sim.trace if isinstance(e, SpawnEvent)]
        assert len(spawns) == 1
        assert spawns[0].name == "worker"

    def test_program_finishing_without_yield(self):
        _, sim = make_sim()

        def body(ctx):
            return 42
            yield  # pragma: no cover - makes it a generator

        thread = sim.spawn(FunctionProgram(body))
        assert thread.state is ThreadState.FINISHED
        assert thread.result == 42
        assert sim.is_done

    def test_run_max_steps(self):
        memory, sim = make_sim()
        counter = AtomicCounter.allocate(memory)
        sim.spawn(incrementer(counter, 100))
        executed = sim.run(max_steps=10)
        assert executed == 10
        assert not sim.is_done

    def test_run_stop_predicate(self):
        memory, sim = make_sim()
        counter = AtomicCounter.allocate(memory)
        sim.spawn(incrementer(counter, 100))
        sim.run(stop=lambda s: s.now >= 7)
        assert sim.now == 7

    def test_step_on_finished_simulation_raises(self):
        _, sim = make_sim()
        with pytest.raises(NoRunnableThreadError):
            sim.step()

    def test_yielding_non_operation_raises(self):
        _, sim = make_sim()

        def body(ctx):
            yield "not an op"

        with pytest.raises(ProgramError):
            sim.spawn(FunctionProgram(body))


class TestCrash:
    def test_crashed_thread_takes_no_steps(self):
        memory, sim = make_sim()
        counter = AtomicCounter.allocate(memory)
        sim.spawn(incrementer(counter, 10))
        sim.spawn(incrementer(counter, 10))
        sim.crash(1)
        sim.run()
        assert counter.count == 10
        assert sim.threads[1].state is ThreadState.CRASHED

    def test_crash_budget_is_n_minus_1(self):
        memory, sim = make_sim()
        counter = AtomicCounter.allocate(memory)
        sim.spawn(incrementer(counter, 1))
        sim.spawn(incrementer(counter, 1))
        sim.crash(0)
        with pytest.raises(SimulationError):
            sim.crash(1)

    def test_crash_twice_rejected(self):
        memory, sim = make_sim()
        counter = AtomicCounter.allocate(memory)
        for _ in range(3):
            sim.spawn(incrementer(counter, 1))
        sim.crash(0)
        with pytest.raises(ThreadCrashedError):
            sim.crash(0)

    def test_crash_finished_thread_raises_thread_finished(self):
        memory, sim = make_sim(SequentialScheduler())
        counter = AtomicCounter.allocate(memory)
        sim.spawn(incrementer(counter, 1))
        sim.spawn(incrementer(counter, 5))
        sim.step()  # thread 0 (single increment) finishes here
        assert sim.threads[0].state is ThreadState.FINISHED
        with pytest.raises(ThreadFinishedError):
            sim.crash(0)
        # The distinction matters: FINISHED is not CRASHED.
        assert sim.threads[0].state is ThreadState.FINISHED


class TestSchedulerContract:
    def test_bad_scheduler_choice_detected(self):
        class BadScheduler:
            def select(self, sim):
                return 99

        memory = SharedMemory()
        sim = Simulator(memory, BadScheduler())
        counter = AtomicCounter.allocate(memory)
        sim.spawn(incrementer(counter, 1))
        with pytest.raises(SchedulerError):
            sim.step()

    def test_scheduler_picking_finished_thread_detected(self):
        class StubbornScheduler:
            def select(self, sim):
                return 0

        memory = SharedMemory()
        sim = Simulator(memory, StubbornScheduler())
        counter = AtomicCounter.allocate(memory)
        sim.spawn(incrementer(counter, 1))
        sim.spawn(incrementer(counter, 1))
        sim.step()  # thread 0 finishes (single op program)
        with pytest.raises(SchedulerError):
            sim.step()


class TestRunFast:
    def _build(self, record_log=False, record_steps=False):
        memory = SharedMemory(record_log=record_log)
        sim = Simulator(
            memory, RoundRobinScheduler(), seed=3, record_steps=record_steps
        )
        counter = AtomicCounter.allocate(memory)
        for _ in range(3):
            sim.spawn(incrementer(counter, 5))
        return memory, counter, sim

    def test_run_fast_equivalent_to_run(self):
        _, slow_counter, slow = self._build()
        slow.run()
        _, fast_counter, fast = self._build()
        executed = fast.run_fast()
        assert executed == 15
        assert fast.now == slow.now
        assert fast_counter.count == slow_counter.count
        assert fast.results() == slow.results()
        assert [t.steps_taken for t in fast.threads] == [
            t.steps_taken for t in slow.threads
        ]

    def test_run_fast_with_memory_log_matches_run(self):
        slow_mem, _, slow = self._build(record_log=True)
        slow.run()
        fast_mem, _, fast = self._build(record_log=True)
        fast.run_fast()
        assert len(fast_mem.log) == len(slow_mem.log)
        assert [(r.seq, r.time, r.thread_id) for r in fast_mem.log] == [
            (r.seq, r.time, r.thread_id) for r in slow_mem.log
        ]

    def test_run_fast_falls_back_when_step_records_needed(self):
        _, _, sim = self._build(record_steps=True)
        sim.run_fast()
        assert len(sim.steps) == 15

    def test_run_fast_max_steps(self):
        _, _, sim = self._build()
        assert sim.run_fast(max_steps=4) == 4
        assert sim.now == 4
        assert not sim.is_done
        # Finishing the run afterwards still works and lands at the same
        # total as an uninterrupted run.
        sim.run_fast()
        assert sim.now == 15

    def test_run_fast_restores_memory_sequence_counter(self):
        memory, _, sim = self._build()
        sim.run_fast()
        assert memory._seq == 15

    def test_run_fast_detects_bad_scheduler_choice(self):
        class BadScheduler:
            def select(self, sim):
                return 99

        memory = SharedMemory(record_log=False)
        sim = Simulator(memory, BadScheduler())
        counter = AtomicCounter.allocate(memory)
        sim.spawn(incrementer(counter, 1))
        with pytest.raises(SchedulerError):
            sim.run_fast()

    def test_run_fast_detects_non_operation_yield(self):
        memory = SharedMemory(record_log=False)
        sim = Simulator(memory, RoundRobinScheduler())
        counter = AtomicCounter.allocate(memory)

        def ok_then_garbage(ctx):
            yield counter.increment_op()
            yield "garbage"

        sim.spawn(FunctionProgram(ok_then_garbage))
        with pytest.raises(ProgramError):
            sim.run_fast()


class TestAnnotations:
    def test_annotations_visible_to_simulator(self):
        _, sim = make_sim()
        memory = sim.memory
        reg = AtomicRegister(memory, memory.allocate(1))

        def body(ctx):
            ctx.annotate("stage", "before")
            yield reg.read_op()
            ctx.annotate("stage", "after")

        sim.spawn(FunctionProgram(body))
        assert sim.annotations(0)["stage"] == "before"
        sim.step()
        assert sim.annotations(0)["stage"] == "after"

    def test_record_steps(self):
        memory = SharedMemory()
        sim = Simulator(memory, RoundRobinScheduler(), record_steps=True)
        counter = AtomicCounter.allocate(memory)
        sim.spawn(incrementer(counter, 3))
        sim.run()
        assert len(sim.steps) == 3
        assert [s.time for s in sim.steps] == [0, 1, 2]

    def test_thread_rngs_differ(self):
        _, sim = make_sim()
        memory = sim.memory
        reg = AtomicRegister(memory, memory.allocate(1))
        draws = {}

        def body(ctx):
            draws[ctx.thread_id] = ctx.rng.normal()
            yield reg.read_op()

        sim.spawn(FunctionProgram(body))
        sim.spawn(FunctionProgram(body))
        sim.run()
        assert draws[0] != draws[1]
