"""Structural checks over every experiment's config presets.

The benches choose quick()/full() presets by environment variable; these
tests pin that both presets construct, that full is at least as large as
quick on its headline knob, and that the registry's drivers all follow
the run(config) -> ExperimentResult protocol (signature level — the
drivers' behaviour is covered by test_exp_drivers.py)."""

import dataclasses
import inspect

import pytest

from repro.cli import REGISTRY


@pytest.mark.parametrize("key", sorted(REGISTRY))
def test_presets_construct(key):
    _module, config_cls = REGISTRY[key]
    quick = config_cls.quick()
    full = config_cls.full()
    assert dataclasses.is_dataclass(quick)
    assert type(quick) is type(full) is config_cls


@pytest.mark.parametrize("key", sorted(REGISTRY))
def test_full_not_smaller_than_quick(key):
    """For every numeric/list field shared by both presets, full must be
    >= quick in magnitude (full presets exist to tighten statistics)."""
    _module, config_cls = REGISTRY[key]
    quick = config_cls.quick()
    full = config_cls.full()
    widened = 0
    for field in dataclasses.fields(config_cls):
        q = getattr(quick, field.name)
        f = getattr(full, field.name)
        if isinstance(q, (int, float)) and not isinstance(q, bool):
            if f > q:
                widened += 1
        elif isinstance(q, list):
            if len(f) >= len(q):
                widened += 1
    assert widened >= 1  # full() genuinely scales something up


@pytest.mark.parametrize("key", sorted(REGISTRY))
def test_driver_protocol(key):
    module, config_cls = REGISTRY[key]
    assert hasattr(module, "run")
    signature = inspect.signature(module.run)
    assert len(signature.parameters) == 1
    # The module documents itself (the CLI list command shows this line).
    assert (module.__doc__ or "").strip()
