"""Tests for the self-healing layer: online health detectors (HEAL001–
HEAL004), the rollback retry ladder, and the headline acceptance
property — a fixed-seed NaN-poisoned run converges to the same iterate
as the fault-free run via rollback + retry."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.e14_resilience import heal_plan_specs
from repro.heal import (
    CheckpointDigestDetector,
    DetectorSuite,
    GradientNormDetector,
    HealPolicy,
    LossDivergenceDetector,
    NanGuardDetector,
    default_detectors,
    run_with_healing,
)
from repro.objectives.noise import GaussianNoise
from repro.objectives.quadratic import IsotropicQuadratic

OBJECTIVE = IsotropicQuadratic(dim=2, noise=GaussianNoise(0.2))


def _heal(plan, algorithm="epoch-sgd", seed=8000, policy=None, **kwargs):
    defaults = dict(
        num_threads=4,
        step_size=0.05,
        iterations=200,
        x0=np.full(2, 2.0),
        seed=seed,
        policy=policy,
    )
    defaults.update(kwargs)
    return run_with_healing(
        algorithm, OBJECTIVE, heal_plan_specs()[plan], **defaults
    )


class _FakeMemory:
    """Peek-only shared-memory stand-in for detector unit tests."""

    def __init__(self, values):
        self._vals = list(values)

    def segment(self, name):
        class _Seg:
            base = 0
            length = len(self._vals)

        return _Seg()

    def peek_range(self, base, length):
        return list(self._vals[base : base + length])


class _FakeSim:
    def __init__(self, values, now=0):
        self.memory = _FakeMemory(values)
        self.now = now


class TestDetectors:
    def test_nan_guard_fires_on_non_finite(self):
        detector = NanGuardDetector()
        assert detector.check(_FakeSim([1.0, 2.0])) is None
        finding = detector.check(_FakeSim([1.0, float("nan")]))
        assert finding is not None and finding.rule == "HEAL001"
        finding = detector.check(_FakeSim([float("inf"), 0.0]))
        assert finding is not None and "index" in finding.message

    def test_gradient_norm_detector_baselines_at_attach(self):
        detector = GradientNormDetector(OBJECTIVE, threshold=10.0)
        detector.on_attach(_FakeSim([2.0, 2.0]))
        assert detector.check(_FakeSim([2.0, 2.0])) is None
        finding = detector.check(_FakeSim([1e6, 1e6]))
        assert finding is not None and finding.rule == "HEAL002"

    def test_loss_divergence_needs_patience_and_floor(self):
        detector = LossDivergenceDetector(
            OBJECTIVE, factor=4.0, patience=2, floor=0.5
        )
        detector.on_attach(_FakeSim([1.0, 1.0]))
        big = _FakeSim([10.0, 10.0])
        assert detector.check(big) is None  # streak 1 < patience
        finding = detector.check(big)
        assert finding is not None and finding.rule == "HEAL003"
        # Below the absolute floor the trend test is mute even when the
        # relative factor is exceeded (converged noise-ball wobble).
        calm = LossDivergenceDetector(
            OBJECTIVE, factor=4.0, patience=1, floor=0.5
        )
        calm.on_attach(_FakeSim([0.01, 0.01]))
        assert calm.check(_FakeSim([0.05, 0.05])) is None

    def test_loss_divergence_streak_resets_on_rollback(self):
        detector = LossDivergenceDetector(OBJECTIVE, patience=2, floor=0.1)
        detector.on_attach(_FakeSim([1.0, 1.0]))
        assert detector.check(_FakeSim([10.0, 10.0])) is None
        detector.on_rollback(_FakeSim([1.0, 1.0]))
        assert detector.check(_FakeSim([10.0, 10.0])) is None  # streak anew

    def test_checkpoint_digest_detector_guards_retained_cut(self):
        class _FakeCheckpoint:
            def __init__(self):
                self.time = 64
                self._digest = "aaa"

            def digest(self):
                return self._digest

        detector = CheckpointDigestDetector()
        assert detector.check(_FakeSim([0.0])) is None  # nothing retained
        checkpoint = _FakeCheckpoint()
        detector.observe_checkpoint(checkpoint)
        assert detector.check(_FakeSim([0.0])) is None
        checkpoint._digest = "bbb"  # in-memory damage
        finding = detector.check(_FakeSim([0.0]))
        assert finding is not None and finding.rule == "HEAL004"
        assert "damaged" in finding.message

    def test_suite_tallies_firings_per_rule(self):
        suite = DetectorSuite([NanGuardDetector()])
        suite.check(_FakeSim([float("nan")]))
        suite.check(_FakeSim([float("nan")]))
        suite.check(_FakeSim([1.0]))
        assert suite.firings == {"HEAL001": 2}

    def test_default_panel_composition(self):
        rules = [d.rule for d in default_detectors(OBJECTIVE)]
        assert rules == ["HEAL001", "HEAL002", "HEAL003", "HEAL004"]


class TestHealPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(check_interval=0),
            dict(retry_budget=-1),
            dict(disarm_chunks=0),
            dict(step_shrink=0.0),
            dict(step_shrink=1.0),
            dict(max_step_shrinks=-1),
            dict(max_total_steps=0),
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            HealPolicy(**kwargs)


class TestRollbackLadder:
    def test_fault_free_run_never_rolls_back(self):
        result = _heal("none")
        assert result.report.health == "healthy"
        assert result.report.rollbacks == 0
        assert result.report.detections == {}
        assert result.corruptions == 0

    def test_nan_poison_converges_to_fault_free_iterate(self):
        """THE acceptance property: with rollback + suppressed retry the
        poisoned run lands on the *same* iterate as the fault-free run
        — every corruption was detected, rolled back and excised."""
        poisoned = _heal("nan-poison")
        clean = _heal("none")
        assert poisoned.report.rollbacks >= 1
        assert poisoned.report.health == "healthy"
        assert poisoned.corruptions >= 1
        assert np.allclose(poisoned.x_final, clean.x_final)
        assert float(
            OBJECTIVE.distance_to_opt(poisoned.x_final)
        ) <= 0.5

    def test_healed_run_is_deterministic(self):
        first = _heal("nan-poison")
        second = _heal("nan-poison")
        assert first.x_final.tolist() == second.x_final.tolist()
        assert first.report.summary() == second.report.summary()
        assert first.steps == second.steps

    def test_detections_and_latencies_recorded(self):
        result = _heal("nan-poison")
        assert result.report.detections.get("HEAL001", 0) >= 1
        assert len(result.report.recovery_latencies) >= 1
        assert all(lat >= 0 for lat in result.report.recovery_latencies)

    def test_zero_budget_descends_the_ladder(self):
        policy = HealPolicy(retry_budget=0, max_step_shrinks=1)
        result = _heal("nan-poison", policy=policy)
        degradations = result.report.degradations
        assert degradations, "no rung taken despite zero budget"
        assert degradations[0].startswith("shrink-step(")
        assert result.report.health in ("degraded", "abandoned")

    def test_ladder_reaches_fallback_then_abandons(self):
        # No retries, no shrinks, fallback == the failing algorithm:
        # the only rungs left are fallback (a no-op here) and abandon.
        policy = HealPolicy(
            retry_budget=0,
            max_step_shrinks=0,
            fallback_algorithm="epoch-sgd",
        )
        result = _heal("nan-poison", policy=policy)
        assert result.report.health == "abandoned"
        # With a *distinct* fallback the run switches algorithms first.
        policy = HealPolicy(
            retry_budget=0, max_step_shrinks=0, fallback_algorithm="locked"
        )
        result = _heal("nan-poison", policy=policy)
        assert any(
            d == "fallback(locked)" for d in result.report.degradations
        )
        assert result.report.final_algorithm == "locked"

    def test_step_limit_backstop_abandons(self):
        policy = HealPolicy(max_total_steps=100)
        result = _heal("none", policy=policy, iterations=10_000)
        assert result.report.health == "abandoned"
        assert "step-limit" in result.report.degradations

    def test_metrics_registry_sees_heal_counters(self):
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        result = _heal("nan-poison", metrics=registry)
        exposition = registry.render_prometheus()
        assert "repro_heal_rollbacks_total" in exposition
        assert "repro_heal_recovery_latency_steps" in exposition
        assert result.report.rollbacks >= 1

    def test_works_across_algorithms(self):
        for algorithm in ("hogwild", "locked"):
            result = _heal("nan-poison", algorithm=algorithm)
            assert result.report.health == "healthy"
            assert result.report.rollbacks >= 1
