"""Unit tests for the shared-memory substrate (SharedMemory + ops)."""

import pytest

from repro.errors import InvalidOperationError, UnknownAddressError
from repro.shm.memory import SharedMemory
from repro.shm.ops import (
    CompareAndSwap,
    DoubleCompareSingleSwap,
    FetchAdd,
    GuardedFetchAdd,
    Noop,
    Read,
    Write,
)


class TestAllocation:
    def test_allocate_returns_consecutive_bases(self):
        mem = SharedMemory()
        assert mem.allocate(3) == 0
        assert mem.allocate(2) == 3
        assert mem.size == 5

    def test_allocate_initial_value(self):
        mem = SharedMemory()
        base = mem.allocate(2, initial=7.5)
        assert mem.peek(base) == 7.5
        assert mem.peek(base + 1) == 7.5

    def test_named_segment_lookup(self):
        mem = SharedMemory()
        mem.allocate(4, name="model")
        segment = mem.segment("model")
        assert segment.base == 0
        assert segment.length == 4

    def test_duplicate_name_rejected(self):
        mem = SharedMemory()
        mem.allocate(1, name="x")
        with pytest.raises(InvalidOperationError):
            mem.allocate(1, name="x")

    def test_zero_length_rejected(self):
        mem = SharedMemory()
        with pytest.raises(InvalidOperationError):
            mem.allocate(0)

    def test_unknown_segment(self):
        mem = SharedMemory()
        with pytest.raises(UnknownAddressError):
            mem.segment("nope")


class TestInspectionBounds:
    def test_peek_out_of_range(self):
        mem = SharedMemory()
        mem.allocate(2)
        with pytest.raises(UnknownAddressError):
            mem.peek(2)
        with pytest.raises(UnknownAddressError):
            mem.peek(-1)

    def test_peek_range_out_of_range(self):
        mem = SharedMemory()
        base = mem.allocate(3)
        with pytest.raises(UnknownAddressError):
            mem.peek_range(base, 4)
        with pytest.raises(UnknownAddressError):
            mem.peek_range(base + 5, 1)
        with pytest.raises(UnknownAddressError):
            mem.peek_range(-1, 2)

    def test_poke_out_of_range(self):
        mem = SharedMemory()
        mem.allocate(1)
        with pytest.raises(UnknownAddressError):
            mem.poke(1, 3.0)
        with pytest.raises(UnknownAddressError):
            mem.poke(-2, 3.0)

    def test_poke_on_empty_memory(self):
        mem = SharedMemory()
        with pytest.raises(UnknownAddressError):
            mem.poke(0, 1.0)


class TestPrimitives:
    def test_read_initial_zero(self, memory):
        base = memory.allocate(1)
        assert memory.execute(Read(base)) == 0.0

    def test_write_then_read(self, memory):
        base = memory.allocate(1)
        memory.execute(Write(base, 3.25))
        assert memory.execute(Read(base)) == 3.25

    def test_fetch_add_returns_previous(self, memory):
        base = memory.allocate(1, initial=10.0)
        assert memory.execute(FetchAdd(base, 5.0)) == 10.0
        assert memory.execute(FetchAdd(base, -2.5)) == 15.0
        assert memory.peek(base) == 12.5

    def test_cas_success(self, memory):
        base = memory.allocate(1, initial=1.0)
        assert memory.execute(CompareAndSwap(base, 1.0, 9.0)) is True
        assert memory.peek(base) == 9.0

    def test_cas_failure_leaves_value(self, memory):
        base = memory.allocate(1, initial=1.0)
        assert memory.execute(CompareAndSwap(base, 2.0, 9.0)) is False
        assert memory.peek(base) == 1.0

    def test_guarded_fetch_add_guard_matches(self, memory):
        guard = memory.allocate(1, initial=3.0)
        target = memory.allocate(1, initial=1.0)
        ok, previous = memory.execute(
            GuardedFetchAdd(address=target, delta=2.0, guard_address=guard,
                            guard_expected=3.0)
        )
        assert ok is True
        assert previous == 1.0
        assert memory.peek(target) == 3.0

    def test_guarded_fetch_add_guard_mismatch(self, memory):
        guard = memory.allocate(1, initial=3.0)
        target = memory.allocate(1, initial=1.0)
        ok, current = memory.execute(
            GuardedFetchAdd(address=target, delta=2.0, guard_address=guard,
                            guard_expected=4.0)
        )
        assert ok is False
        assert current == 1.0
        assert memory.peek(target) == 1.0

    def test_dcss_both_match(self, memory):
        guard = memory.allocate(1, initial=1.0)
        target = memory.allocate(1, initial=5.0)
        op = DoubleCompareSingleSwap(
            address=target, expected=5.0, new=7.0,
            guard_address=guard, guard_expected=1.0,
        )
        assert memory.execute(op) is True
        assert memory.peek(target) == 7.0
        assert memory.peek(guard) == 1.0  # guard untouched (single swap)

    def test_dcss_guard_mismatch(self, memory):
        guard = memory.allocate(1, initial=1.0)
        target = memory.allocate(1, initial=5.0)
        op = DoubleCompareSingleSwap(
            address=target, expected=5.0, new=7.0,
            guard_address=guard, guard_expected=0.0,
        )
        assert memory.execute(op) is False
        assert memory.peek(target) == 5.0

    def test_dcss_target_mismatch(self, memory):
        guard = memory.allocate(1, initial=1.0)
        target = memory.allocate(1, initial=5.0)
        op = DoubleCompareSingleSwap(
            address=target, expected=4.0, new=7.0,
            guard_address=guard, guard_expected=1.0,
        )
        assert memory.execute(op) is False

    def test_noop_changes_nothing(self, memory):
        base = memory.allocate(1, initial=2.0)
        assert memory.execute(Noop(base)) is None
        assert memory.peek(base) == 2.0

    def test_out_of_range_address(self, memory):
        with pytest.raises(UnknownAddressError):
            memory.execute(Read(99))

    def test_negative_address(self, memory):
        memory.allocate(1)
        with pytest.raises(UnknownAddressError):
            memory.execute(Read(-1))


class TestLogging:
    def test_log_records_sequence(self, memory):
        base = memory.allocate(1)
        memory.execute(FetchAdd(base, 1.0), time=0, thread_id=2)
        memory.execute(Read(base), time=1, thread_id=3)
        assert len(memory.log) == 2
        assert memory.log[0].seq == 0
        assert memory.log[0].thread_id == 2
        assert memory.log[1].result == 1.0

    def test_log_disabled(self):
        mem = SharedMemory(record_log=False)
        base = mem.allocate(1)
        mem.execute(FetchAdd(base, 1.0))
        assert mem.log == []
        assert mem.peek(base) == 1.0

    def test_peek_and_poke_not_logged(self, memory):
        base = memory.allocate(1)
        memory.poke(base, 4.0)
        assert memory.peek(base) == 4.0
        assert memory.log == []

    def test_peek_range(self, memory):
        base = memory.allocate(3, initial=1.0)
        memory.poke(base + 1, 2.0)
        assert memory.peek_range(base, 3) == [1.0, 2.0, 1.0]
