"""Smoke + acceptance tests for the experiment drivers (tiny configs).

Each driver runs a miniature version of its experiment; the structural
assertions (result shape, series present, table rows) always apply, and
the cheap experiments also assert their acceptance criterion.  The
benchmark harness runs the quick()/full() presets; these tests exist so
`pytest tests/` exercises every driver in seconds.
"""

import pytest

from repro.experiments import (
    a1_ablations,
    a2_consistency,
    e1_sequential,
    e2_lower_bound,
    e3_good_bad,
    e4_indicator_sum,
    e5_upper_bound,
    e6_bound_comparison,
    e7_full_sgd,
    e8_tradeoff,
    e9_staleness_aware,
    e10_momentum,
    e11_dense_gradients,
    e12_sparsity,
    f1_figure,
)
from repro.experiments.runner import ExperimentResult, seed_range, sweep


class TestRunnerHelpers:
    def test_seed_range(self):
        assert seed_range(10, 3) == [10, 11, 12]
        with pytest.raises(Exception):
            seed_range(0, 0)

    def test_sweep_preserves_order(self):
        assert sweep([1, 2, 3], lambda v: v * 2) == [2, 4, 6]

    def test_render_includes_verdict(self):
        from repro.metrics.report import Table

        table = Table(["a"])
        table.add_row([1])
        result = ExperimentResult("EX", "demo", table, passed=True)
        text = result.render(plot=False)
        assert "PASS" in text
        assert "demo" in text


def _check_shape(result: ExperimentResult, experiment_id: str):
    assert result.experiment_id == experiment_id
    assert result.table.rows
    assert isinstance(result.passed, bool)
    assert result.render(plot=False)


class TestDrivers:
    def test_e1(self):
        config = e1_sequential.E1Config(num_runs=20, horizons=[50, 200])
        result = e1_sequential.run(config)
        _check_shape(result, "E1")
        assert result.passed

    def test_e2(self):
        config = e2_lower_bound.E2Config(delays=[40, 80, 120], iterations=1800)
        result = e2_lower_bound.run(config)
        _check_shape(result, "E2")
        assert result.passed
        measured = result.series["measured slowdown"]
        assert measured == sorted(measured)  # monotone in tau

    def test_e3(self):
        config = e3_good_bad.E3Config(
            thread_counts=[2, 3], iterations=120, window_multipliers=[1, 2]
        )
        result = e3_good_bad.run(config)
        _check_shape(result, "E3")
        assert result.passed  # combinatorial: must hold even when tiny

    def test_e4(self):
        config = e4_indicator_sum.E4Config(thread_counts=[2, 3], iterations=120)
        result = e4_indicator_sum.run(config)
        _check_shape(result, "E4")
        assert result.passed

    def test_e5_structure(self):
        config = e5_upper_bound.E5Config(
            horizons=[200, 600],
            num_runs=6,
            slowdown_delay_bounds=[2, 96],
            slowdown_runs=2,
            slowdown_iterations=4000,
            pilot_runs=1,
        )
        result = e5_upper_bound.run(config)
        _check_shape(result, "E5")
        # Bound part must hold even in miniature (bounds are valid for
        # any T); the slowdown shape needs larger runs, so only check
        # presence here.
        assert "E5a" in result.notes and "E5b" in result.notes

    def test_e6(self):
        config = e6_bound_comparison.E6Config(
            spot_check_runs=2, spot_check_iterations=3000
        )
        result = e6_bound_comparison.run(config)
        _check_shape(result, "E6")
        assert result.passed
        old = result.series["Thm 6.3 bound (old)"]
        new = result.series["Cor 6.7 bound (new)"]
        assert new[-1] < old[-1]  # new bound wins at large tau

    def test_e7(self):
        config = e7_full_sgd.E7Config(
            epsilons=[0.2], num_runs=3, iterations_per_epoch=200
        )
        result = e7_full_sgd.run(config)
        _check_shape(result, "E7")
        assert result.passed

    def test_e8(self):
        config = e8_tradeoff.E8Config(
            trace_thread_counts=[2], trace_iterations=100
        )
        result = e8_tradeoff.run(config)
        _check_shape(result, "E8")
        assert result.passed  # complementarity is analytic

    def test_e9(self):
        config = e9_staleness_aware.E9Config(
            delays=[40, 80, 120], iterations=1800
        )
        result = e9_staleness_aware.run(config)
        _check_shape(result, "E9")
        assert result.passed
        weak = result.series["aware vs weak adversary"]
        adaptive = result.series["aware vs adaptive adversary"]
        assert max(weak) < max(adaptive)

    def test_e10(self):
        config = e10_momentum.E10Config(thread_counts=[1, 4, 16])
        result = e10_momentum.run(config)
        _check_shape(result, "E10")
        assert result.passed
        fitted = result.series["fitted implicit beta"]
        assert fitted[0] < fitted[-1]

    def test_e11(self):
        config = e11_dense_gradients.E11Config(
            dim=2, num_points=20, num_runs=4
        )
        result = e11_dense_gradients.run(config)
        _check_shape(result, "E11")
        assert result.passed
        # Exactly one dense and one sparse row.
        labels = [row[0] for row in result.table.rows]
        assert any("dense" in label for label in labels)
        assert any("sparse" in label for label in labels)

    def test_e12(self):
        config = e12_sparsity.E12Config(
            nonzeros=[2, 8], num_runs=2, iterations=250
        )
        result = e12_sparsity.run(config)
        _check_shape(result, "E12")
        assert result.passed
        errors = result.series["mean view error"]
        assert errors[-1] > errors[0]

    def test_f1(self):
        result = f1_figure.run(f1_figure.F1Config())
        _check_shape(result, "F1")
        assert result.passed
        assert "#" in result.notes and "o" in result.notes

    def test_a1(self):
        config = a1_ablations.A1Config(num_runs=2, iterations=400)
        result = a1_ablations.run(config)
        _check_shape(result, "A1")
        assert result.passed

    def test_a2(self):
        config = a2_consistency.A2Config(thread_counts=[1, 6], iterations=150)
        result = a2_consistency.run(config)
        _check_shape(result, "A2")
        assert result.passed
        lf = result.series["lock-free steps/iter"]
        sn = result.series["snapshot steps/iter"]
        assert all(s > l for l, s in zip(lf, sn))
