"""Property-based correctness of the double-collect consistent scan.

The claim: whenever a scan reports ``consistent=True``, the values it
returned coexisted in memory at some instant — i.e. they equal the
initial state plus a *time-prefix* of the per-entry update events.
Random writer workloads under random interleavings must never produce a
counterexample.
"""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.runtime.program import FunctionProgram
from repro.runtime.simulator import Simulator
from repro.sched.random_sched import RandomScheduler
from repro.shm.memory import SharedMemory
from repro.shm.versioned import VersionedArray

DIM = 3


@st.composite
def writer_workloads(draw):
    num_writers = draw(st.integers(min_value=1, max_value=4))
    writers = []
    for _ in range(num_writers):
        updates = draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=DIM - 1),
                    st.floats(min_value=-10, max_value=10, allow_nan=False),
                ),
                min_size=1,
                max_size=8,
            )
        )
        writers.append(updates)
    return dict(
        writers=writers,
        seed=draw(st.integers(min_value=0, max_value=10**6)),
        num_scans=draw(st.integers(min_value=1, max_value=3)),
    )


@given(case=writer_workloads())
@settings(max_examples=80, deadline=None)
def test_consistent_scans_return_real_memory_states(case):
    memory = SharedMemory(record_log=False)
    array = VersionedArray(memory, DIM)
    initial = np.array([1.0, 2.0, 3.0])
    array.load(initial)
    sim = Simulator(memory, RandomScheduler(seed=case["seed"]),
                    seed=case["seed"])

    applied_events = []  # (time of value FAA, index, delta)

    def make_writer(updates):
        def body(ctx):
            for index, delta in updates:
                # The seqlock update protocol, inlined so the time of the
                # value's landing can be recorded.
                yield array.versions.fetch_add_op(index, 1.0)
                yield array.values.fetch_add_op(index, delta)
                applied_events.append((ctx.now - 1, index, delta))
                yield array.versions.fetch_add_op(index, 1.0)

        return FunctionProgram(body, name="writer")

    scans = []

    def scanner(ctx):
        for _ in range(case["num_scans"]):
            values, consistent, _retries = yield from array.scan_ops(
                max_retries=20
            )
            scans.append((np.array(values), consistent))

    for updates in case["writers"]:
        sim.spawn(make_writer(updates))
    sim.spawn(FunctionProgram(scanner, name="scanner"))
    sim.run()

    # Build every memory state the execution passed through.
    applied_events.sort()
    states = [initial.copy()]
    current = initial.copy()
    for _time, index, delta in applied_events:
        current = current.copy()
        current[index] += delta
        states.append(current)
    states = np.array(states)

    for values, consistent in scans:
        if not consistent:
            continue
        assert np.any(
            np.all(np.isclose(states, values, atol=1e-9), axis=1)
        ), f"consistent scan returned {values}, not a real memory state"

    # Final sanity: the array's end state is the full prefix.
    np.testing.assert_allclose(array.snapshot(), states[-1])
