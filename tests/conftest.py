"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.objectives.noise import GaussianNoise, ZeroNoise
from repro.objectives.quadratic import IsotropicQuadratic
from repro.shm.memory import SharedMemory


@pytest.fixture
def memory() -> SharedMemory:
    """A fresh shared memory with logging enabled."""
    return SharedMemory(record_log=True)


@pytest.fixture
def quadratic_noisy() -> IsotropicQuadratic:
    """Small noisy quadratic used across algorithm tests."""
    return IsotropicQuadratic(dim=2, curvature=1.0, noise=GaussianNoise(0.3))


@pytest.fixture
def quadratic_clean() -> IsotropicQuadratic:
    """Noiseless quadratic (deterministic gradients)."""
    return IsotropicQuadratic(dim=2, curvature=1.0, noise=ZeroNoise())


@pytest.fixture
def x0_small() -> np.ndarray:
    """A standard small starting point for dim=2 objectives."""
    return np.array([2.0, -2.0])
