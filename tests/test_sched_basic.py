"""Unit tests for the benign schedulers (sequential, round-robin, random,
bounded-delay) and the crash wrapper."""

import numpy as np
import pytest

from repro.runtime.program import FunctionProgram
from repro.runtime.simulator import Simulator
from repro.runtime.thread import ThreadState
from repro.sched.bounded_delay import BoundedDelayScheduler
from repro.sched.crash import CrashBudgetWarning, CrashPlan, CrashScheduler
from repro.sched.random_sched import RandomScheduler
from repro.sched.round_robin import RoundRobinScheduler
from repro.sched.sequential import SequentialScheduler
from repro.shm.counter import AtomicCounter
from repro.shm.memory import SharedMemory


def run_trace(scheduler, num_threads=3, rounds=5, record=True):
    """Run `num_threads` counter loops; return (sim, list of thread ids
    in scheduled order)."""
    memory = SharedMemory()
    counter = AtomicCounter.allocate(memory)
    sim = Simulator(memory, scheduler, record_steps=record)

    def loop(ctx):
        for _ in range(rounds):
            yield counter.increment_op()

    for _ in range(num_threads):
        sim.spawn(FunctionProgram(loop))
    sim.run()
    return sim, [s.thread_id for s in sim.steps]


class TestSequential:
    def test_threads_run_in_order_to_completion(self):
        _, order = run_trace(SequentialScheduler())
        assert order == [0] * 5 + [1] * 5 + [2] * 5


class TestRoundRobin:
    def test_cycles_fairly(self):
        _, order = run_trace(RoundRobinScheduler())
        assert order[:6] == [0, 1, 2, 0, 1, 2]

    def test_skips_finished_threads(self):
        memory = SharedMemory()
        counter = AtomicCounter.allocate(memory)
        sim = Simulator(memory, RoundRobinScheduler(), record_steps=True)

        def loop(rounds):
            def body(ctx):
                for _ in range(rounds):
                    yield counter.increment_op()

            return FunctionProgram(body)

        sim.spawn(loop(1))
        sim.spawn(loop(3))
        sim.run()
        order = [s.thread_id for s in sim.steps]
        assert order == [0, 1, 1, 1]


class TestRandom:
    def test_deterministic_under_seed(self):
        _, order_a = run_trace(RandomScheduler(seed=5))
        _, order_b = run_trace(RandomScheduler(seed=5))
        assert order_a == order_b

    def test_different_seeds_give_different_orders(self):
        _, order_a = run_trace(RandomScheduler(seed=1), rounds=20)
        _, order_b = run_trace(RandomScheduler(seed=2), rounds=20)
        assert order_a != order_b

    def test_all_threads_complete(self):
        sim, _ = run_trace(RandomScheduler(seed=3))
        assert all(t.state is ThreadState.FINISHED for t in sim.threads)

    def test_weights_bias_schedule(self):
        _, order = run_trace(
            RandomScheduler(seed=4, weights={0: 100.0, 1: 1.0, 2: 1.0}),
            rounds=30,
        )
        counts = {tid: order.count(tid) for tid in (0, 1, 2)}
        # Thread 0 should dominate the early schedule.
        assert counts[0] >= counts[1]
        assert counts[0] >= counts[2]


class TestBoundedDelay:
    def test_staleness_never_exceeds_bound(self):
        bound = 5
        _, order = run_trace(
            BoundedDelayScheduler(bound, seed=1), num_threads=3, rounds=40
        )
        last_seen = {0: -1, 1: -1, 2: -1}
        finished_at = {}
        for step, tid in enumerate(order):
            for other in last_seen:
                if other in finished_at:
                    continue
                if other != tid and last_seen[other] >= 0:
                    assert step - last_seen[other] <= bound + 1
            last_seen[tid] = step
            if order.count(tid) and len([s for s in order[: step + 1] if s == tid]) == 40:
                finished_at[tid] = step

    def test_infeasible_bound_degrades_to_round_robin_like(self):
        # delay_bound < n-1 cannot be satisfied; most-overdue-first keeps
        # every thread within n-1 steps anyway.
        _, order = run_trace(
            BoundedDelayScheduler(1, seed=1), num_threads=4, rounds=10
        )
        gaps = {tid: [] for tid in range(4)}
        last = {tid: None for tid in range(4)}
        for step, tid in enumerate(order):
            if last[tid] is not None:
                gaps[tid].append(step - last[tid])
            last[tid] = step
        for tid, tid_gaps in gaps.items():
            assert max(tid_gaps, default=0) <= 4

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            BoundedDelayScheduler(0)

    def test_victim_starved_up_to_bound(self):
        bound = 12
        _, order = run_trace(
            BoundedDelayScheduler(bound, seed=2, victims=[0]),
            num_threads=3,
            rounds=30,
        )
        # Victim's average spacing should exceed the others'.
        def mean_gap(tid):
            positions = [i for i, t in enumerate(order) if t == tid]
            return np.diff(positions).mean() if len(positions) > 1 else 0

        assert mean_gap(0) > mean_gap(1)


class TestCrashScheduler:
    def test_crash_at_time(self):
        inner = RoundRobinScheduler()
        scheduler = CrashScheduler(inner, [CrashPlan(thread_id=1, at_time=4)])
        sim, order = run_trace(scheduler, num_threads=3, rounds=10)
        assert sim.threads[1].state is ThreadState.CRASHED
        assert all(tid != 1 for i, tid in enumerate(order) if i >= 6)

    def test_crash_after_steps(self):
        scheduler = CrashScheduler(
            RoundRobinScheduler(), [CrashPlan(thread_id=0, after_steps=3)]
        )
        sim, order = run_trace(scheduler, num_threads=2, rounds=10)
        assert sim.threads[0].state is ThreadState.CRASHED
        assert order.count(0) == 3

    def test_never_crashes_last_thread(self):
        scheduler = CrashScheduler(
            RoundRobinScheduler(),
            [CrashPlan(thread_id=0, at_time=0), CrashPlan(thread_id=1, at_time=0)],
        )
        sim, _ = run_trace(scheduler, num_threads=2, rounds=5)
        # One of the two must survive and finish.
        states = [t.state for t in sim.threads]
        assert states.count(ThreadState.FINISHED) >= 1

    def test_budget_skip_warns_and_reports_unfired_plan(self):
        plans = [
            CrashPlan(thread_id=0, at_time=0),
            CrashPlan(thread_id=1, at_time=0),
        ]
        scheduler = CrashScheduler(RoundRobinScheduler(), plans)
        with pytest.warns(CrashBudgetWarning):
            sim, _ = run_trace(scheduler, num_threads=2, rounds=5)
        assert sim.crashed_count == 1
        assert scheduler.pending_plans == []
        assert len(scheduler.unfired_plans) == 1
        (plan, reason), = scheduler.unfired
        assert plan in plans
        assert reason == "crash-budget"

    def test_dead_victim_plan_retired_not_repended(self):
        # The second plan targets a thread the first plan already killed:
        # it is retired with a reason, not re-examined forever.
        scheduler = CrashScheduler(
            RoundRobinScheduler(),
            [
                CrashPlan(thread_id=0, at_time=2),
                CrashPlan(thread_id=0, at_time=6),
            ],
        )
        sim, _ = run_trace(scheduler, num_threads=3, rounds=5)
        assert sim.threads[0].state is ThreadState.CRASHED
        assert sim.crashed_count == 1
        assert scheduler.pending_plans == []
        (plan, reason), = scheduler.unfired
        assert plan.at_time == 6
        assert reason == "victim-crashed"

    def test_finished_victim_plan_retired(self):
        # Thread 0 finishes its 5 steps long before time 1000.
        scheduler = CrashScheduler(
            RoundRobinScheduler(), [CrashPlan(thread_id=0, at_time=1000)]
        )
        sim, _ = run_trace(scheduler, num_threads=2, rounds=5)
        assert sim.threads[0].state is ThreadState.FINISHED
        assert scheduler.pending_plans == []
        (plan, reason), = scheduler.unfired
        assert plan.at_time == 1000
        assert reason == "victim-finished"

    def test_fired_plans_are_neither_pending_nor_unfired(self):
        plan = CrashPlan(thread_id=1, at_time=3)
        scheduler = CrashScheduler(RoundRobinScheduler(), [plan])
        sim, _ = run_trace(scheduler, num_threads=3, rounds=5)
        assert sim.threads[1].state is ThreadState.CRASHED
        assert scheduler.pending_plans == []
        assert scheduler.unfired_plans == []

    def test_survivors_make_progress(self):
        memory = SharedMemory()
        counter = AtomicCounter.allocate(memory)
        scheduler = CrashScheduler(
            RoundRobinScheduler(), [CrashPlan(thread_id=0, at_time=2)]
        )
        sim = Simulator(memory, scheduler)

        def loop(ctx):
            for _ in range(10):
                yield counter.increment_op()

        sim.spawn(FunctionProgram(loop))
        sim.spawn(FunctionProgram(loop))
        sim.run()
        # Survivor completed all its increments despite the crash.
        assert counter.count >= 10
